"""Tests for the per-process reclaim feature (Figure 4 methodology)."""

from repro.kernel.page import HeapKind, PageKind
from repro.kernel.page_table import PageTable
from repro.kernel.proc_reclaim import PerProcessReclaim

from tests.conftest import make_pages


def test_reclaims_all_resident_pages(mm):
    reclaim = PerProcessReclaim(mm)
    pages = make_pages(10)
    mm.make_resident_bulk(pages)
    result = reclaim.reclaim_pages(pages)
    assert result.reclaimed == 10
    assert all(not page.present for page in pages)
    assert all(page.was_evicted for page in pages)


def test_skips_non_resident_pages(mm):
    reclaim = PerProcessReclaim(mm)
    pages = make_pages(5)
    mm.make_resident_bulk(pages[:2])
    result = reclaim.reclaim_pages(pages)
    assert result.reclaimed == 2


def test_dirty_file_pages_written_back(mm):
    reclaim = PerProcessReclaim(mm)
    pages = make_pages(4, kind=PageKind.FILE, dirty=True)
    mm.make_resident_bulk(pages)
    reclaim.reclaim_pages(pages)
    assert mm.flash.stats.write_pages == 4
    assert mm.vmstat.fileback_writeout == 4


def test_counts_as_direct_reclaim(mm):
    reclaim = PerProcessReclaim(mm)
    pages = make_pages(3)
    mm.make_resident_bulk(pages)
    reclaim.reclaim_pages(pages)
    assert mm.vmstat.pgsteal_direct == 3


def test_zram_full_leaves_pages_resident(mm):
    reclaim = PerProcessReclaim(mm)
    pages = make_pages(mm.zram.capacity_pages + 10)
    mm.make_resident_bulk(pages)
    result = reclaim.reclaim_pages(pages)
    assert result.zram_full
    assert result.reclaimed == mm.zram.capacity_pages
    still_resident = [page for page in pages if page.present]
    assert len(still_resident) == 10


def test_reclaim_whole_page_table(mm):
    reclaim = PerProcessReclaim(mm)
    table = PageTable(owner=None)
    for _ in range(3):
        table.build_page(PageKind.ANON, HeapKind.JAVA)
        table.build_page(PageKind.FILE, HeapKind.NONE)
    mm.make_resident_bulk(list(table.all_pages()))
    result = reclaim.reclaim_process(table)
    assert result.reclaimed == 6
    assert table.resident_pages == 0
