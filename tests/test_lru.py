"""Tests for the active/inactive LRU lists."""

import pytest

from repro.kernel.lru import LruKind, LruLists
from repro.kernel.page import HeapKind, Page, PageKind


def anon():
    return Page(kind=PageKind.ANON, owner=None, heap=HeapKind.NATIVE)


def filep():
    return Page(kind=PageKind.FILE, owner=None)


def test_add_defaults_to_inactive():
    lru = LruLists()
    a, f = anon(), filep()
    lru.add(a)
    lru.add(f)
    assert a.lru is LruKind.INACTIVE_ANON
    assert f.lru is LruKind.INACTIVE_FILE


def test_add_active():
    lru = LruLists()
    a = anon()
    lru.add(a, active=True)
    assert a.lru is LruKind.ACTIVE_ANON


def test_double_add_rejected():
    lru = LruLists()
    a = anon()
    lru.add(a)
    with pytest.raises(ValueError):
        lru.add(a)


def test_remove_clears_membership():
    lru = LruLists()
    a = anon()
    lru.add(a)
    lru.remove(a)
    assert a.lru is None
    assert lru.total == 0


def test_remove_unlisted_rejected():
    with pytest.raises(ValueError):
        LruLists().remove(anon())


def test_discard_is_noop_for_unlisted():
    LruLists().discard(anon())  # must not raise


def test_activate_moves_to_active():
    lru = LruLists()
    a = anon()
    lru.add(a)
    lru.activate(a)
    assert a.lru is LruKind.ACTIVE_ANON
    assert lru.active_anon == 1
    assert lru.inactive_anon == 0


def test_deactivate_moves_to_inactive():
    lru = LruLists()
    a = anon()
    lru.add(a, active=True)
    lru.deactivate(a)
    assert a.lru is LruKind.INACTIVE_ANON


def test_coldest_is_fifo_order():
    lru = LruLists()
    first, second = anon(), anon()
    lru.add(first)
    lru.add(second)
    assert lru.coldest(LruKind.INACTIVE_ANON) is first


def test_rotate_moves_to_hot_end():
    lru = LruLists()
    first, second = anon(), anon()
    lru.add(first)
    lru.add(second)
    lru.rotate(first)
    assert lru.coldest(LruKind.INACTIVE_ANON) is second


def test_pop_coldest():
    lru = LruLists()
    first, second = anon(), anon()
    lru.add(first)
    lru.add(second)
    popped = lru.pop_coldest(LruKind.INACTIVE_ANON)
    assert popped is first
    assert popped.lru is None
    assert lru.inactive_anon == 1


def test_pop_coldest_empty_returns_none():
    assert LruLists().pop_coldest(LruKind.INACTIVE_FILE) is None


def test_scan_inactive_returns_unreferenced_victims():
    lru = LruLists()
    pages = [anon() for _ in range(4)]
    for page in pages:
        lru.add(page)
    victims, scanned = lru.scan_inactive(LruKind.INACTIVE_ANON, budget=4)
    assert victims == pages
    assert scanned == 4
    assert all(page.lru is None for page in victims)


def test_scan_inactive_gives_second_chance():
    lru = LruLists()
    hot, cold = anon(), anon()
    lru.add(hot)
    lru.add(cold)
    hot.referenced = True
    victims, scanned = lru.scan_inactive(LruKind.INACTIVE_ANON, budget=2)
    assert victims == [cold]
    assert scanned == 2
    assert hot.lru is LruKind.ACTIVE_ANON
    assert not hot.referenced  # young bit cleared


def test_scan_inactive_respects_protect_hook():
    lru = LruLists()
    protected, normal = anon(), anon()
    lru.add(protected)
    lru.add(normal)
    victims, scanned = lru.scan_inactive(
        LruKind.INACTIVE_ANON, budget=2, protect=lambda p: p is protected
    )
    assert victims == [normal]
    assert scanned == 2
    assert protected.lru is LruKind.INACTIVE_ANON


def test_scan_inactive_budget_limits_scanning():
    lru = LruLists()
    pages = [anon() for _ in range(10)]
    for page in pages:
        lru.add(page)
    victims, scanned = lru.scan_inactive(LruKind.INACTIVE_ANON, budget=3)
    assert victims == pages[:3]
    assert scanned == 3


def test_scan_inactive_on_active_list_rejected():
    with pytest.raises(ValueError):
        LruLists().scan_inactive(LruKind.ACTIVE_ANON, budget=1)


def test_age_active_demotes_unreferenced():
    lru = LruLists()
    referenced, idle = anon(), anon()
    lru.add(referenced, active=True)
    lru.add(idle, active=True)
    referenced.referenced = True
    demoted = lru.age_active(LruKind.ACTIVE_ANON, budget=2)
    assert demoted == 1
    assert idle.lru is LruKind.INACTIVE_ANON
    assert referenced.lru is LruKind.ACTIVE_ANON
    assert not referenced.referenced


def test_age_active_on_inactive_list_rejected():
    with pytest.raises(ValueError):
        LruLists().age_active(LruKind.INACTIVE_ANON, budget=1)


def test_needs_aging_anon_ratio():
    lru = LruLists()
    for _ in range(4):
        lru.add(anon(), active=True)
    assert lru.needs_aging(LruKind.INACTIVE_ANON)
    for _ in range(3):
        lru.add(anon())
    assert not lru.needs_aging(LruKind.INACTIVE_ANON)


def test_sizes_and_total():
    lru = LruLists()
    lru.add(anon())
    lru.add(anon(), active=True)
    lru.add(filep())
    assert lru.inactive_anon == 1
    assert lru.active_anon == 1
    assert lru.inactive_file == 1
    assert lru.active_file == 0
    assert lru.total == 3
