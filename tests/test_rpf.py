"""Tests for refault-driven process freezing (§4.2)."""

from repro.core.mapping_table import MappingTable
from repro.core.rpf import RefaultDrivenFreezer
from repro.core.whitelist import Whitelist
from repro.kernel.freezer import Freezer
from repro.kernel.page import HeapKind, Page, PageKind
from repro.kernel.workingset import RefaultEvent


def make_rpf():
    table = MappingTable()
    whitelist = Whitelist(table)
    freezer = Freezer()
    frozen_uids = []
    rpf = RefaultDrivenFreezer(
        table, whitelist, freezer, on_app_frozen=frozen_uids.append
    )
    return rpf, table, freezer, frozen_uids


def make_event(pid=101, uid=10001, foreground=False):
    page = Page(kind=PageKind.ANON, owner=None, heap=HeapKind.JAVA)
    return RefaultEvent(
        time_ms=1.0, page=page, pid=pid, uid=uid,
        foreground=foreground, refault_distance=3,
    )


def test_bg_refault_freezes_whole_application():
    rpf, table, freezer, frozen_uids = make_rpf()
    table.register_app(uid=10001, package="bg", pids=[101, 102, 103],
                       adj_score=900)
    action = rpf.handle_refault(make_event(pid=102))
    assert action is not None
    assert set(action.frozen_pids) == {101, 102, 103}  # application grain
    assert all(freezer.is_frozen(pid) for pid in (101, 102, 103))
    assert frozen_uids == [10001]
    assert rpf.stats.apps_frozen == 1
    assert rpf.stats.processes_frozen == 3


def test_foreground_refault_ignored():
    rpf, table, freezer, _ = make_rpf()
    table.register_app(uid=10001, package="fg", pids=[101], adj_score=0)
    action = rpf.handle_refault(make_event(pid=101, foreground=True))
    assert action is None
    assert rpf.stats.fg_skipped == 1
    assert not freezer.is_frozen(101)


def test_unknown_process_sifted():
    """Kernel threads and services are not in the mapping table."""
    rpf, _, freezer, _ = make_rpf()
    action = rpf.handle_refault(make_event(pid=1))  # kswapd-ish
    assert action is None
    assert rpf.stats.sifted_unknown == 1


def test_whitelisted_app_never_frozen():
    rpf, table, freezer, _ = make_rpf()
    table.register_app(uid=10001, package="music", pids=[101], adj_score=200)
    action = rpf.handle_refault(make_event(pid=101))
    assert action is None
    assert rpf.stats.whitelisted == 1
    assert not freezer.is_frozen(101)


def test_already_frozen_app_not_refrozen():
    rpf, table, freezer, frozen_uids = make_rpf()
    table.register_app(uid=10001, package="bg", pids=[101], adj_score=900)
    rpf.handle_refault(make_event(pid=101))
    action = rpf.handle_refault(make_event(pid=101))
    assert action is None
    assert rpf.stats.already_frozen == 1
    assert frozen_uids == [10001]  # registered with MDT only once


def test_partial_freeze_completes_application():
    rpf, table, freezer, _ = make_rpf()
    table.register_app(uid=10001, package="bg", pids=[101, 102], adj_score=900)
    freezer.freeze(101)
    action = rpf.handle_refault(make_event(pid=102))
    assert action.frozen_pids == (102,)
    assert freezer.is_frozen(102)


def test_disabled_rpf_is_inert():
    rpf, table, freezer, _ = make_rpf()
    table.register_app(uid=10001, package="bg", pids=[101], adj_score=900)
    rpf.enabled = False
    assert rpf.handle_refault(make_event(pid=101)) is None
    assert rpf.stats.events_seen == 0


def test_mapping_table_frozen_state_updated():
    rpf, table, freezer, _ = make_rpf()
    table.register_app(uid=10001, package="bg", pids=[101], adj_score=900)
    rpf.handle_refault(make_event(pid=101))
    assert table._apps[10001].processes[101].frozen


def test_actions_are_recorded():
    rpf, table, _, _ = make_rpf()
    table.register_app(uid=10001, package="bg", pids=[101], adj_score=900)
    rpf.handle_refault(make_event(pid=101))
    assert len(rpf.actions) == 1
    assert rpf.actions[0].trigger_pid == 101
    assert rpf.actions[0].uid == 10001
