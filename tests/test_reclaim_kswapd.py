"""Tests for the kswapd background reclaimer."""

from repro.kernel.reclaim import Kswapd

from tests.conftest import make_pages


def fill(mm, count):
    pages = make_pages(count)
    mm.make_resident_bulk(pages)
    return pages


def test_wake_is_idempotent(mm):
    kswapd = Kswapd(mm)
    kswapd.wake()
    kswapd.wake()
    assert kswapd.wakeups == 1
    assert mm.vmstat.kswapd_wakeups == 1


def test_wake_callback_fires(mm):
    kswapd = Kswapd(mm)
    woken = []
    kswapd.on_wake = lambda: woken.append(1)
    kswapd.wake()
    assert woken == [1]


def test_run_quantum_inactive_is_noop(mm):
    kswapd = Kswapd(mm)
    result = kswapd.run_quantum(4.0)
    assert result.reclaimed == 0


def test_reclaims_toward_high_watermark(mm, small_spec):
    fill(mm, small_spec.managed_pages - small_spec.min_watermark_pages)
    kswapd = Kswapd(mm)
    kswapd.wake()
    for _ in range(500):
        kswapd.run_quantum(4.0)
        if not kswapd.active:
            break
    assert not mm.below_high
    assert not kswapd.active
    assert kswapd.total_reclaimed > 0


def test_sleeps_when_watermark_restored(mm, small_spec):
    kswapd = Kswapd(mm)
    slept = []
    kswapd.on_sleep = lambda: slept.append(1)
    fill(mm, small_spec.managed_pages - small_spec.high_watermark_pages + 20)
    kswapd.wake()
    for _ in range(200):
        kswapd.run_quantum(4.0)
        if not kswapd.active:
            break
    assert slept


def test_cpu_budget_bounds_per_quantum_work(mm, small_spec):
    fill(mm, small_spec.managed_pages - small_spec.min_watermark_pages)
    kswapd = Kswapd(mm)
    kswapd.wake()
    result = kswapd.run_quantum(2.0)
    # Work should roughly respect the budget (one batch may overshoot).
    assert result.cpu_ms < 60.0
    assert result.reclaimed < mm.managed_pages


def test_gives_up_after_dry_rounds(mm, small_spec):
    fill(mm, small_spec.managed_pages - small_spec.high_watermark_pages + 10)
    mm.reclaim_protect = lambda page: True  # nothing is reclaimable
    kswapd = Kswapd(mm)
    kswapd.wake()
    result = kswapd.run_quantum(50.0)
    assert result.reclaimed == 0
    assert not kswapd.active  # went back to sleep instead of spinning


def test_should_run_reflects_state(mm, small_spec):
    kswapd = Kswapd(mm)
    assert not kswapd.should_run
    fill(mm, small_spec.managed_pages - small_spec.high_watermark_pages + 10)
    kswapd.wake()
    assert kswapd.should_run
