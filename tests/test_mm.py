"""Tests for the memory manager: allocation, watermarks, reclaim."""

import pytest

from repro.kernel.lru import LruKind
from repro.kernel.mm import DIRECT_RECLAIM_BATCH, OutOfMemoryError
from repro.kernel.page import HeapKind, PageKind

from tests.conftest import make_pages


def fill_memory(mm, count, kind=PageKind.ANON, owner=None, dirty=False):
    pages = make_pages(count, kind=kind, owner=owner, dirty=dirty)
    mm.make_resident_bulk(pages)
    return pages


def test_initial_accounting(mm, small_spec):
    assert mm.managed_pages == small_spec.managed_pages
    assert mm.free_pages == small_spec.managed_pages
    assert mm.resident_pages == 0


def test_make_resident_updates_accounting(mm):
    pages = make_pages(10)
    outcome = mm.make_resident_bulk(pages)
    assert outcome.pages == 10
    assert mm.resident_pages == 10
    assert mm.free_pages == mm.managed_pages - 10
    assert all(page.present for page in pages)
    assert mm.vmstat.pgalloc == 10


def test_make_resident_idempotent_for_present_pages(mm):
    page = make_pages(1)[0]
    mm.make_resident(page)
    outcome = mm.make_resident(page)
    assert outcome.pages == 0
    assert mm.resident_pages == 1


def test_new_pages_enter_inactive_unreferenced(mm):
    page = make_pages(1)[0]
    mm.make_resident(page)
    assert page.lru is LruKind.INACTIVE_ANON
    assert not page.referenced


def test_release_frees_page(mm):
    page = make_pages(1)[0]
    mm.make_resident(page)
    mm.release(page)
    assert not page.present
    assert mm.resident_pages == 0
    assert mm.vmstat.pgfree == 1


def test_kswapd_woken_below_low_watermark(mm, small_spec):
    wakes = []
    mm.kswapd_waker = lambda: wakes.append(1)
    headroom = small_spec.managed_pages - small_spec.low_watermark_pages
    fill_memory(mm, headroom + 1)
    assert wakes


def test_shrink_evicts_anon_to_zram(mm):
    pages = fill_memory(mm, 50)
    result = mm.shrink(10)
    assert result.reclaimed == 10
    assert mm.zram.stored_pages == 10
    assert mm.vmstat.pswpout == 10
    assert mm.vmstat.pgsteal_anon == 10
    evicted = [page for page in pages if not page.present]
    assert len(evicted) == 10
    assert all(page.was_evicted for page in evicted)


def test_shrink_drops_clean_file_pages_without_io(mm):
    fill_memory(mm, 20, kind=PageKind.FILE)
    before_writes = mm.flash.stats.write_pages
    result = mm.shrink(5)
    assert result.reclaimed == 5
    assert mm.vmstat.pgsteal_file == 5
    assert mm.flash.stats.write_pages == before_writes


def test_shrink_writes_back_dirty_file_pages(mm):
    fill_memory(mm, 20, kind=PageKind.FILE, dirty=True)
    result = mm.shrink(5)
    assert result.reclaimed == 5
    assert mm.vmstat.fileback_writeout == 5
    assert mm.flash.stats.write_pages == 5


def test_shrink_balances_anon_and_file(mm):
    fill_memory(mm, 40, kind=PageKind.ANON)
    fill_memory(mm, 40, kind=PageKind.FILE)
    mm.shrink(20)
    assert mm.vmstat.pgsteal_anon > 0
    assert mm.vmstat.pgsteal_file > 0


def test_shrink_respects_policy_protection(mm):
    protected = fill_memory(mm, 10)
    mm.reclaim_protect = lambda page: True
    result = mm.shrink(5)
    assert result.reclaimed == 0
    assert all(page.present for page in protected)


def test_shrink_skips_anon_when_zram_full(mm):
    fill_memory(mm, mm.zram.capacity_pages + 50)
    mm.shrink(mm.zram.capacity_pages)  # fills zram (may stop early)
    stored = mm.zram.stored_pages
    fill_memory(mm, 5, kind=PageKind.FILE)
    result = mm.shrink(10)
    # Only file pages can go now.
    assert mm.zram.stored_pages == stored
    assert result.reclaimed <= 10


def test_eviction_installs_shadow_entries(mm):
    pages = fill_memory(mm, 10)
    mm.shrink(10)
    assert all(page.shadow_eviction_clock is not None for page in pages)


def test_direct_reclaim_triggers_below_min(mm, small_spec):
    # Fill right up to the min watermark, then allocate more.
    fill_memory(mm, small_spec.managed_pages - small_spec.min_watermark_pages)
    outcome = mm.make_resident_bulk(make_pages(5))
    assert outcome.direct_reclaims > 0
    assert outcome.stall_ms > 0
    assert mm.vmstat.pgsteal_direct > 0


def test_contention_charged_inside_watermark_band(mm, small_spec):
    fill_memory(
        mm, small_spec.managed_pages - small_spec.high_watermark_pages + 10
    )
    outcome = mm.make_resident_bulk(make_pages(3))
    assert outcome.stall_ms > 0
    assert mm.vmstat.alloc_stall_ms > 0


def test_no_contention_above_high_watermark(mm):
    outcome = mm.make_resident_bulk(make_pages(3))
    assert outcome.stall_ms == 0.0


def test_oom_raised_when_nothing_reclaimable(mm, small_spec):
    # Fill with protected pages so reclaim cannot make progress.
    mm.reclaim_protect = lambda page: True
    with pytest.raises(OutOfMemoryError):
        fill_memory(mm, small_spec.managed_pages + 1)
    assert mm.vmstat.oom_kills >= 1


def test_discard_page_releases_resident(mm):
    page = make_pages(1)[0]
    mm.make_resident(page)
    mm.discard_page(page)
    assert not page.present
    assert mm.resident_pages == 0


def test_discard_page_clears_zram_slot(mm):
    pages = fill_memory(mm, 10)
    mm.shrink(10)
    evicted = next(page for page in pages if not page.present)
    stored_before = mm.zram.stored_pages
    mm.discard_page(evicted)
    assert mm.zram.stored_pages == stored_before - 1
    assert not evicted.was_evicted


def test_release_process_pages_mixed_state(mm):
    pages = fill_memory(mm, 20)
    mm.shrink(5)
    resident_before = mm.resident_pages
    freed = mm.release_process_pages(pages)
    assert freed == resident_before
    assert mm.resident_pages == 0
    assert mm.zram.stored_pages == 0


def test_zram_pool_charges_free_memory(mm):
    fill_memory(mm, 100)
    free_before = mm.free_pages
    mm.shrink(28)  # evict 28 anon pages -> pool = 28/2.8 = 10 pages
    assert mm.free_pages == free_before + 28 - 10


def test_available_pages_includes_inactive_file(mm):
    fill_memory(mm, 10, kind=PageKind.FILE)
    assert mm.available_pages == mm.free_pages + 10


def test_memory_pressure_rises_with_consumption(mm, small_spec):
    low_pressure = mm.memory_pressure()
    fill_memory(mm, small_spec.managed_pages - small_spec.high_watermark_pages)
    assert mm.memory_pressure() > low_pressure
