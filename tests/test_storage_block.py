"""Tests for the block layer queue."""

import pytest

from repro.storage.block import BlockQueue, IoDirection


def make_queue():
    return BlockQueue("dev", read_ms_per_page=1.0, write_ms_per_page=2.0)


def test_invalid_latencies_rejected():
    with pytest.raises(ValueError):
        BlockQueue("bad", read_ms_per_page=0.0, write_ms_per_page=1.0)


def test_empty_bio_rejected():
    with pytest.raises(ValueError):
        make_queue().submit(0.0, IoDirection.READ, 0)


def test_single_read_latency():
    queue = make_queue()
    bio = queue.submit(10.0, IoDirection.READ, 4)
    assert bio.complete_time == 10.0 + 4.0
    assert bio.latency == 4.0


def test_writes_cost_more():
    queue = make_queue()
    bio = queue.submit(0.0, IoDirection.WRITE, 3)
    assert bio.complete_time == 6.0


def test_fifo_congestion_delays_later_requests():
    queue = make_queue()
    queue.submit(0.0, IoDirection.READ, 10)  # busy until 10
    second = queue.submit(0.0, IoDirection.READ, 1)
    assert second.complete_time == 11.0


def test_idle_gap_resets_queue():
    queue = make_queue()
    queue.submit(0.0, IoDirection.READ, 5)
    late = queue.submit(100.0, IoDirection.READ, 1)
    assert late.complete_time == 101.0


def test_queue_delay_reflects_read_backlog():
    queue = make_queue()
    queue.submit(0.0, IoDirection.READ, 10)  # read lane busy until 10
    assert queue.queue_delay(4.0) == 6.0
    assert queue.queue_delay(25.0) == 0.0


def test_write_backlog_delays_reads_only_up_to_cap():
    queue = make_queue()
    queue.submit(0.0, IoDirection.WRITE, 100)  # write lane busy until 200
    assert queue.queue_delay(0.0) == queue.WRITE_INTERFERENCE_CAP_MS
    bio = queue.submit(0.0, IoDirection.READ, 1)
    assert bio.complete_time == queue.WRITE_INTERFERENCE_CAP_MS + 1.0


def test_reads_do_not_delay_writes():
    queue = make_queue()
    queue.submit(0.0, IoDirection.READ, 50)  # read lane busy until 50
    bio = queue.submit(0.0, IoDirection.WRITE, 2)
    assert bio.complete_time == 4.0


def test_stats_accumulate_by_direction():
    queue = make_queue()
    queue.submit(0.0, IoDirection.READ, 3)
    queue.submit(0.0, IoDirection.WRITE, 2)
    stats = queue.stats
    assert stats.read_requests == 1
    assert stats.read_pages == 3
    assert stats.write_requests == 1
    assert stats.write_pages == 2
    assert stats.total_pages == 5
    assert stats.total_requests == 2


def test_stats_wait_time_recorded():
    queue = make_queue()
    queue.submit(0.0, IoDirection.READ, 10)
    queue.submit(0.0, IoDirection.READ, 1)
    assert queue.stats.total_wait_ms == 10.0  # second read waited 10 ms


def test_reset_stats():
    queue = make_queue()
    queue.submit(0.0, IoDirection.READ, 1)
    queue.reset_stats()
    assert queue.stats.total_requests == 0
