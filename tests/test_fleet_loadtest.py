"""Loadtest internals: mix determinism, percentiles, knee, M/M/k model."""

import pytest

from repro.fleet.loadtest import (
    LoadtestConfig,
    _latency_doc,
    _percentile,
    _priority_class,
    find_knee,
    generate_mix,
    mmk_model,
)


# ----------------------------------------------------------------------
# Mix generation
# ----------------------------------------------------------------------
def test_mix_is_deterministic_per_seed():
    config = LoadtestConfig(requests=50, seed=7)
    assert generate_mix(config) == generate_mix(config)
    assert generate_mix(config) != generate_mix(
        LoadtestConfig(requests=50, seed=8)
    )


def test_mix_salt_uniquifies_sweep_levels():
    config = LoadtestConfig(requests=30, seed=7)
    plain = generate_mix(config)
    salted = generate_mix(config, salt="sweep-4")
    seeds = {p["seed"] for p in plain}
    salted_seeds = {p["seed"] for p in salted}
    assert seeds.isdisjoint(salted_seeds)


def test_mix_contains_duplicates_and_valid_fields():
    config = LoadtestConfig(
        requests=200, seed=3, duplicate_fraction=0.5,
        tenants=("a", "b"),
    )
    mix = generate_mix(config)
    assert len(mix) == 200
    # Duplicate fraction 0.5 must produce real duplicate content
    # addresses (tenant/priority are options, not content).
    cores = [
        (p["scenario"], p["bg_case"], p["seconds"], p["seed"]) for p in mix
    ]
    assert len(set(cores)) < len(cores)
    for payload in mix:
        assert payload["tenant"] in ("a", "b")
        assert payload["priority"] in (5, 10, 20)


# ----------------------------------------------------------------------
# Statistics helpers
# ----------------------------------------------------------------------
def test_percentiles_nearest_rank():
    samples = sorted(float(i) for i in range(1, 101))
    assert _percentile(samples, 0.50) == 50.0
    assert _percentile(samples, 0.95) == 95.0
    assert _percentile(samples, 0.99) == 99.0
    assert _percentile([4.2], 0.99) == 4.2
    assert _percentile([], 0.5) == 0.0


def test_latency_doc_shape():
    doc = _latency_doc([0.3, 0.1, 0.2])
    assert doc["count"] == 3
    assert doc["p50_s"] == 0.2
    assert doc["mean_s"] == pytest.approx(0.2)


def test_priority_class_mapping():
    assert _priority_class(5) == "high"
    assert _priority_class(10) == "normal"
    assert _priority_class(20) == "low"
    assert _priority_class("nonsense") == "normal"


# ----------------------------------------------------------------------
# Knee detection
# ----------------------------------------------------------------------
def test_find_knee_picks_last_scaling_level():
    sweep = [
        {"concurrency": 1, "throughput_rps": 2.0},
        {"concurrency": 2, "throughput_rps": 3.9},   # +95%
        {"concurrency": 4, "throughput_rps": 7.0},   # +79%
        {"concurrency": 8, "throughput_rps": 7.3},   # +4% — past the knee
        {"concurrency": 16, "throughput_rps": 7.1},
    ]
    assert find_knee(sweep) == 4


def test_find_knee_degenerate_inputs():
    assert find_knee([]) is None
    assert find_knee([{"concurrency": 2, "throughput_rps": 5.0}]) == 2


# ----------------------------------------------------------------------
# M/M/k model
# ----------------------------------------------------------------------
def test_mmk_model_unloaded_system_approaches_service_time():
    # At 1% utilization nobody queues: E[T] ~= 1/mu.
    model = mmk_model(k=4, lambda_rps=0.04, mean_service_s=1.0)
    assert model["rho"] == pytest.approx(0.01)
    assert model["p_wait"] < 1e-4
    assert model["expected_e2e_s"] == pytest.approx(1.0, rel=1e-3)


def test_mmk_model_single_server_matches_mm1():
    # For k=1, Erlang-C reduces to M/M/1: P_wait = rho and
    # E[T] = 1/(mu - lambda).
    model = mmk_model(k=1, lambda_rps=0.5, mean_service_s=1.0)
    assert model["p_wait"] == pytest.approx(0.5)
    assert model["expected_e2e_s"] == pytest.approx(2.0)


def test_mmk_model_queueing_grows_with_load():
    light = mmk_model(k=2, lambda_rps=0.5, mean_service_s=1.0)
    heavy = mmk_model(k=2, lambda_rps=1.8, mean_service_s=1.0)
    assert heavy["p_wait"] > light["p_wait"]
    assert heavy["expected_e2e_s"] > light["expected_e2e_s"]
    assert 0.0 <= light["p_wait"] <= 1.0


def test_mmk_model_saturation_and_degenerate_inputs():
    saturated = mmk_model(k=2, lambda_rps=3.0, mean_service_s=1.0)
    assert saturated["saturated"] is True
    assert "expected_e2e_s" not in saturated
    assert mmk_model(k=0, lambda_rps=1.0, mean_service_s=1.0) is None
    assert mmk_model(k=2, lambda_rps=0.0, mean_service_s=1.0) is None
    assert mmk_model(k=2, lambda_rps=1.0, mean_service_s=None) is None
