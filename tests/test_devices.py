"""Tests for device specs and scaling."""

import pytest

from repro.devices.specs import (
    DEVICES,
    GIB,
    MIB,
    get_device,
    huawei_p20,
    pixel3,
)


def test_table2_devices_present():
    assert set(DEVICES) == {"Pixel3", "P20", "P40", "Pixel4"}


def test_get_device_unknown_rejected():
    with pytest.raises(KeyError):
        get_device("iPhone")


def test_paper_hardware_facts():
    p3 = pixel3()
    assert p3.ram_bytes == 4 * GIB
    assert p3.storage.kind == "eMMC"
    p20 = huawei_p20()
    assert p20.ram_bytes == 6 * GIB
    assert p20.storage.kind == "UFS"
    assert p20.zram_bytes == 2 * p3.zram_bytes  # 1024MB vs 512MB (Table 4)


def test_memory_scaling():
    p20 = huawei_p20()
    assert p20.total_pages == 6 * GIB // 16 // 4096
    assert p20.managed_pages < p20.total_pages
    assert p20.scale_pages(16 * MIB) == 256


def test_watermark_ordering_follows_footnote():
    for spec in DEVICES.values():
        assert spec.min_watermark_pages < spec.low_watermark_pages
        assert spec.low_watermark_pages < spec.high_watermark_pages
        # low = 5/6 high, min = 2/3 high
        assert spec.low_watermark_pages == spec.high_watermark_pages * 5 // 6
        assert spec.min_watermark_pages == spec.high_watermark_pages * 2 // 3


def test_zram_pages_scaled():
    p20 = huawei_p20()
    assert p20.zram_pages == 1024 * MIB // 16 // 4096


def test_specs_are_frozen():
    spec = pixel3()
    with pytest.raises(Exception):
        spec.cores = 2


def test_scale_pages_minimum_one():
    assert pixel3().scale_pages(1) == 1
