"""Tests for shadow entries and refault events."""

from repro.kernel.page import HeapKind, Page, PageKind
from repro.kernel.workingset import WorkingSet


def anon():
    return Page(kind=PageKind.ANON, owner=None, heap=HeapKind.JAVA)


def test_eviction_installs_shadow_entry():
    ws = WorkingSet()
    page = anon()
    ws.record_eviction(page)
    assert page.was_evicted
    assert page.evictions == 1


def test_first_touch_is_not_refault():
    ws = WorkingSet()
    page = anon()
    event = ws.check_refault(0.0, page, pid=1, uid=2, foreground=False)
    assert event is None


def test_refault_detected_and_shadow_cleared():
    ws = WorkingSet()
    page = anon()
    ws.record_eviction(page)
    event = ws.check_refault(5.0, page, pid=1, uid=2, foreground=False)
    assert event is not None
    assert event.pid == 1
    assert event.uid == 2
    assert event.background
    assert not page.was_evicted
    assert page.refaults == 1


def test_refault_distance_counts_interleaved_evictions():
    ws = WorkingSet()
    target = anon()
    ws.record_eviction(target)
    for _ in range(5):
        ws.record_eviction(anon())
    event = ws.check_refault(0.0, target, pid=1, uid=1, foreground=True)
    assert event.refault_distance == 5


def test_immediate_refault_distance_zero():
    ws = WorkingSet()
    page = anon()
    ws.record_eviction(page)
    event = ws.check_refault(0.0, page, pid=1, uid=1, foreground=True)
    assert event.refault_distance == 0


def test_observers_receive_events():
    ws = WorkingSet()
    seen = []
    ws.subscribe(seen.append)
    page = anon()
    ws.record_eviction(page)
    ws.check_refault(1.0, page, pid=9, uid=9, foreground=False)
    assert len(seen) == 1
    assert seen[0].pid == 9


def test_unsubscribe_stops_delivery():
    ws = WorkingSet()
    seen = []
    ws.subscribe(seen.append)
    ws.unsubscribe(seen.append)
    page = anon()
    ws.record_eviction(page)
    ws.check_refault(1.0, page, pid=9, uid=9, foreground=False)
    assert seen == []


def test_drop_shadow_forgets_eviction():
    ws = WorkingSet()
    page = anon()
    ws.record_eviction(page)
    ws.drop_shadow(page)
    assert ws.check_refault(0.0, page, pid=1, uid=1, foreground=True) is None


def test_foreground_flag_propagates():
    ws = WorkingSet()
    page = anon()
    ws.record_eviction(page)
    event = ws.check_refault(0.0, page, pid=1, uid=1, foreground=True)
    assert event.foreground and not event.background
