"""Tests for ActivityManager details beyond the integration suite."""

import pytest

from repro.android.app import AppState
from repro.apps.catalog import get_profile
from repro.system import MobileSystem

from tests.conftest import make_small_spec

GIB = 1024 * 1024 * 1024


@pytest.fixture
def system():
    return MobileSystem(spec=make_small_spec(ram_bytes=3 * GIB), seed=13)


def launch(system, package, frames=False):
    if package not in system.apps:
        system.install_app(get_profile(package))
    record = system.launch(package, drive_frames=frames)
    assert system.run_until_complete(record, timeout_s=180)
    return record


def test_launch_records_accumulate(system):
    launch(system, "WhatsApp")
    launch(system, "Skype")
    records = system.activity_manager.launch_records
    assert [r.package for r in records] == ["WhatsApp", "Skype"]
    assert all(r.completed for r in records)


def test_relaunching_foreground_app_is_cheap(system):
    launch(system, "WhatsApp")
    record = system.launch("WhatsApp", drive_frames=False)
    system.run_until_complete(record, timeout_s=60)
    assert record.style == "hot"


def test_recency_ranks_follow_lru_order(system):
    for package in ("WhatsApp", "Skype", "PayPal", "Yelp"):
        launch(system, package)
    # Yelp is FG; cache order most-recent-first: PayPal, Skype, WhatsApp.
    assert system.get_app("PayPal").recency_rank == 0
    assert system.get_app("Skype").recency_rank == 1
    assert system.get_app("WhatsApp").recency_rank == 2


def test_cold_launch_spawns_expected_processes(system):
    launch(system, "WhatsApp")
    app = system.get_app("WhatsApp")
    mains = [p for p in app.processes if p.main]
    assert len(mains) == 1
    # Only the main process carries the java heap.
    assert mains[0].page_table.pages_of("java_heap")
    for aux in app.processes:
        if not aux.main:
            assert not aux.page_table.pages_of("java_heap")


def test_cold_launch_reads_code_from_flash(system):
    before = system.flash.stats.read_pages
    launch(system, "WhatsApp")
    assert system.flash.stats.read_pages > before


def test_cold_launch_partial_residency(system):
    launch(system, "WhatsApp")
    app = system.get_app("WhatsApp")
    frac = app.resident_pages() / app.total_pages()
    assert 0.4 < frac < 0.75  # COLD_RESIDENT_FRAC = 0.55 plus noise


def test_hot_launch_faults_back_evicted_nucleus(system):
    launch(system, "WhatsApp")
    launch(system, "Skype")
    app = system.get_app("WhatsApp")
    # Reclaim everything so the resume must fault pages back.
    for process in app.processes:
        system.proc_reclaim.reclaim_process(process.page_table)
    before = system.vmstat.pgmajfault
    record = system.launch("WhatsApp", drive_frames=False)
    system.run_until_complete(record, timeout_s=120)
    assert system.vmstat.pgmajfault > before
    assert record.style == "hot"


def test_on_ready_callback_invoked(system):
    system.install_app(get_profile("WhatsApp"))
    seen = []
    record = system.launch("WhatsApp", drive_frames=False,
                           on_ready=seen.append)
    system.run_until_complete(record, timeout_s=120)
    assert seen == [record]


def test_frame_engine_only_for_frame_launches(system):
    launch(system, "WhatsApp", frames=False)
    assert system.frame_engine.app is None
    launch(system, "Skype", frames=True)
    assert system.frame_engine.app is system.get_app("Skype")
