"""Tests for the framework load generator."""

import pytest

from repro.android.services import FrameworkLoad, SERVICE_NAMES
from repro.apps.catalog import get_profile
from repro.system import MobileSystem

from tests.conftest import make_small_spec

GIB = 1024 * 1024 * 1024


def test_invalid_base_utilization_rejected():
    system = MobileSystem(spec=make_small_spec(ram_bytes=1 * GIB), seed=1)
    with pytest.raises(ValueError):
        FrameworkLoad(system, base_utilization=1.0)


def test_service_tasks_registered_and_unfreezable():
    system = MobileSystem(spec=make_small_spec(ram_bytes=1 * GIB), seed=1)
    names = {task.name for task in system.sched.tasks.values()}
    for service in SERVICE_NAMES:
        assert service in names
    for task in system.framework.tasks:
        assert not task.freezable


def test_baseline_utilization_near_target():
    system = MobileSystem(spec=make_small_spec(ram_bytes=1 * GIB), seed=1,
                          framework_base_utilization=0.4)
    system.run(seconds=10.0)
    util = system.sched.stats.average_utilization
    assert 0.25 < util < 0.55


def test_per_app_increment_raises_target():
    system = MobileSystem(spec=make_small_spec(ram_bytes=3 * GIB), seed=1)
    base_target = system.framework.current_target()
    for package in ("WhatsApp", "Skype"):
        system.install_app(get_profile(package))
        record = system.launch(package, drive_frames=False)
        system.run_until_complete(record, timeout_s=180)
    # One app is FG; one is cached -> target rises by one increment.
    assert system.framework.current_target() == pytest.approx(
        base_target + system.framework.per_app_utilization
    )


def test_start_is_idempotent():
    system = MobileSystem(spec=make_small_spec(ram_bytes=1 * GIB), seed=1)
    count = len(system.framework.tasks)
    system.framework.start()
    assert len(system.framework.tasks) == count
