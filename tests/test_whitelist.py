"""Tests for the safety whitelist (§4.4)."""

from repro.core.mapping_table import MappingTable
from repro.core.whitelist import Whitelist


def make_whitelist():
    table = MappingTable()
    return table, Whitelist(table, adj_threshold=200)


def test_foreground_app_whitelisted():
    table, wl = make_whitelist()
    table.register_app(uid=1, package="fg", pids=[1], adj_score=0)
    assert wl.is_whitelisted(1)


def test_perceptible_app_whitelisted():
    table, wl = make_whitelist()
    table.register_app(uid=1, package="music", pids=[1], adj_score=200)
    assert wl.is_whitelisted(1)


def test_cached_app_not_whitelisted():
    table, wl = make_whitelist()
    table.register_app(uid=1, package="bg", pids=[1], adj_score=900)
    assert not wl.is_whitelisted(1)


def test_unknown_uid_whitelisted_for_safety():
    _, wl = make_whitelist()
    assert wl.is_whitelisted(31337)  # kernel/service process: never freeze


def test_vendor_pin_overrides_adj():
    table, wl = make_whitelist()
    table.register_app(uid=1, package="antivirus", pids=[1], adj_score=950)
    wl.pin_uid(1)
    assert wl.is_whitelisted(1)
    wl.unpin_uid(1)
    assert not wl.is_whitelisted(1)


def test_score_change_updates_decision():
    table, wl = make_whitelist()
    table.register_app(uid=1, package="app", pids=[1], adj_score=900)
    assert not wl.is_whitelisted(1)
    table.set_adj_score(1, 0)  # switched to FG
    assert wl.is_whitelisted(1)


def test_check_and_hit_counters():
    table, wl = make_whitelist()
    table.register_app(uid=1, package="a", pids=[1], adj_score=0)
    table.register_app(uid=2, package="b", pids=[2], adj_score=900)
    wl.is_whitelisted(1)
    wl.is_whitelisted(2)
    assert wl.checks == 2
    assert wl.hits == 1


def test_vendor_uids_snapshot():
    _, wl = make_whitelist()
    wl.pin_uid(5)
    uids = wl.vendor_uids
    uids.add(6)
    assert 6 not in wl.vendor_uids
