"""Integration tests: the fully-wired MobileSystem."""

import pytest

from repro.android.app import AppState
from repro.apps.catalog import catalog_apps, get_profile
from repro.core.ice import IcePolicy
from repro.policies.registry import make_policy
from repro.system import MobileSystem

from tests.conftest import make_small_spec


def small_system(policy=None, seed=7, **spec_overrides):
    system = MobileSystem(
        spec=make_small_spec(**spec_overrides), policy=policy, seed=seed
    )
    return system


@pytest.fixture
def p20ish_system():
    """A mid-size system that can hold a few catalog apps at once."""
    system = MobileSystem(spec=make_small_spec(ram_bytes=3 * 1024 * 1024 * 1024),
                          seed=7)
    return system


def install_small_app(system, package="WhatsApp"):
    return system.install_app(get_profile(package))


def test_cold_launch_brings_app_foreground(p20ish_system):
    system = p20ish_system
    install_small_app(system)
    record = system.launch("WhatsApp", drive_frames=False)
    assert record.style == "cold"
    assert system.run_until_complete(record, timeout_s=120)
    app = system.get_app("WhatsApp")
    assert app.state is AppState.FOREGROUND
    assert app.alive
    assert len(app.processes) == app.profile.process_count
    assert record.latency_ms > 0
    assert app.resident_pages() > 0


def test_second_launch_is_hot(p20ish_system):
    system = p20ish_system
    install_small_app(system, "WhatsApp")
    install_small_app(system, "Skype")
    r1 = system.launch("WhatsApp", drive_frames=False)
    system.run_until_complete(r1, timeout_s=120)
    r2 = system.launch("Skype", drive_frames=False)
    system.run_until_complete(r2, timeout_s=120)
    r3 = system.launch("WhatsApp", drive_frames=False)
    system.run_until_complete(r3, timeout_s=120)
    assert r3.style == "hot"
    assert r3.latency_ms < r1.latency_ms


def test_foreground_switch_demotes_previous(p20ish_system):
    system = p20ish_system
    install_small_app(system, "WhatsApp")
    install_small_app(system, "Skype")
    r1 = system.launch("WhatsApp", drive_frames=False)
    system.run_until_complete(r1, timeout_s=120)
    r2 = system.launch("Skype", drive_frames=False)
    system.run_until_complete(r2, timeout_s=120)
    whatsapp = system.get_app("WhatsApp")
    skype = system.get_app("Skype")
    assert skype.state is AppState.FOREGROUND
    assert whatsapp.state is AppState.CACHED
    assert whatsapp.recency_rank == 0
    assert system.mm.foreground_uid == skype.uid


def test_frame_engine_produces_frames(p20ish_system):
    system = p20ish_system
    install_small_app(system)
    record = system.launch("WhatsApp")  # drive_frames defaults to True
    system.run_until_complete(record, timeout_s=120)
    system.run(seconds=3.0)
    stats = system.frame_engine.stats
    assert stats.completed > 50
    assert stats.average_fps > 20


def test_kill_app_releases_everything(p20ish_system):
    system = p20ish_system
    install_small_app(system)
    record = system.launch("WhatsApp", drive_frames=False)
    system.run_until_complete(record, timeout_s=120)
    app = system.get_app("WhatsApp")
    resident = system.mm.resident_pages
    freed = system.kill_app(app)
    assert freed > 0
    assert app.state is AppState.STOPPED
    assert not app.alive
    assert system.mm.resident_pages == resident - freed
    assert system.foreground_app is None


def test_memory_accounting_invariant_under_load(p20ish_system):
    system = p20ish_system
    for package in ("WhatsApp", "Skype", "PayPal"):
        install_small_app(system, package)
        record = system.launch(package, drive_frames=False)
        system.run_until_complete(record, timeout_s=120)
        system.run(seconds=2.0)
    mm = system.mm
    # resident + free + zram pool must equal managed pages.
    assert mm.resident_pages + mm.free_pages + int(mm.zram.pool_pages()) == (
        mm.managed_pages
    )
    # LRU holds exactly the resident pages.
    assert mm.lru.total == mm.resident_pages


def test_ice_policy_attaches_and_freezes_refaulters():
    system = MobileSystem(
        spec=make_small_spec(ram_bytes=512 * 1024 * 1024),
        policy=IcePolicy(),
        seed=7,
    )
    for package in ("WhatsApp", "Skype", "eBay"):
        system.install_app(get_profile(package))
        record = system.launch(package, drive_frames=False)
        system.run_until_complete(record, timeout_s=120)
        system.run(seconds=1.0)
    system.run(seconds=40.0)
    policy = system.policy
    # Under this much pressure the cached apps must have refaulted and
    # been frozen at least once.
    assert policy.rpf.stats.events_seen > 0
    assert policy.rpf.stats.apps_frozen > 0


def test_kswapd_keeps_free_above_min_watermark_mostly():
    system = MobileSystem(spec=make_small_spec(ram_bytes=512 * 1024 * 1024),
                          seed=7)
    for package in ("WhatsApp", "Skype"):
        system.install_app(get_profile(package))
        record = system.launch(package, drive_frames=False)
        system.run_until_complete(record, timeout_s=120)
    samples = []
    system.sim.every(200.0, lambda: samples.append(system.mm.free_pages))
    system.run(seconds=20.0)
    below = sum(1 for f in samples if f < system.spec.min_watermark_pages)
    assert below / len(samples) < 0.5


def test_policy_registry_builds_working_systems():
    for name in ("LRU+CFS", "UCSG", "Acclaim", "Ice", "PowerManager"):
        system = MobileSystem(
            spec=make_small_spec(ram_bytes=1024 * 1024 * 1024),
            policy=make_policy(name),
            seed=3,
        )
        system.install_app(get_profile("WhatsApp"))
        record = system.launch("WhatsApp", drive_frames=False)
        assert system.run_until_complete(record, timeout_s=120), name


def test_reset_measurements_zeroes_counters(p20ish_system):
    system = p20ish_system
    install_small_app(system)
    record = system.launch("WhatsApp", drive_frames=False)
    system.run_until_complete(record, timeout_s=120)
    system.reset_measurements()
    assert system.vmstat.pgalloc == 0
    assert system.flash.stats.total_requests == 0
    assert system.sched.stats.samples == []


def test_deterministic_given_seed():
    def run():
        system = MobileSystem(
            spec=make_small_spec(ram_bytes=512 * 1024 * 1024), seed=11
        )
        system.install_apps([get_profile("WhatsApp"), get_profile("Skype")])
        for package in ("WhatsApp", "Skype"):
            record = system.launch(package, drive_frames=False)
            system.run_until_complete(record, timeout_s=120)
        system.run(seconds=10.0)
        vm = system.vmstat
        return (vm.pgalloc, vm.pgsteal, vm.refault_total, system.mm.free_pages)

    assert run() == run()
