"""Tests for the frame pipeline and its metrics."""

import pytest

from repro.android.render import ALERT_THRESHOLD_MS, FrameStats, VSYNC_MS
from repro.apps.catalog import get_profile
from repro.system import MobileSystem

from tests.conftest import make_small_spec

GIB = 1024 * 1024 * 1024


# ----------------------------------------------------------------------
# FrameStats
# ----------------------------------------------------------------------
def test_frame_stats_alert_threshold():
    stats = FrameStats()
    stats.record_frame(10.0, latency_ms=10.0)
    stats.record_frame(20.0, latency_ms=20.0)
    assert stats.completed == 2
    assert stats.alerts == 1
    assert stats.ria == 0.5


def test_frame_stats_drops_count_as_alerts():
    stats = FrameStats()
    stats.record_frame(10.0, latency_ms=5.0)
    stats.record_drop(20.0)
    assert stats.dropped == 1
    assert stats.ria == 0.5


def test_fps_timeline_buckets_per_second():
    stats = FrameStats()
    for index in range(30):
        stats.record_frame(index * 33.3, latency_ms=5.0)
    stats.record_frame(1500.0, latency_ms=5.0)
    # The first full second held 30 frames.
    assert stats.fps_timeline[0] == 30


def test_average_latency():
    stats = FrameStats()
    stats.record_frame(0.0, 10.0)
    stats.record_frame(0.0, 20.0)
    assert stats.average_latency_ms == 15.0


def test_empty_stats_safe():
    stats = FrameStats()
    assert stats.ria == 0.0
    assert stats.average_fps == 0.0
    assert stats.average_latency_ms == 0.0


# ----------------------------------------------------------------------
# FrameEngine (integration-level)
# ----------------------------------------------------------------------
@pytest.fixture
def fg_system():
    system = MobileSystem(spec=make_small_spec(ram_bytes=3 * GIB), seed=9)
    system.install_app(get_profile("WhatsApp"))
    record = system.launch("WhatsApp")
    assert system.run_until_complete(record, timeout_s=180)
    return system


def test_fps_respects_content_cap(fg_system):
    fg_system.run(seconds=5.0)
    stats = fg_system.frame_engine.stats
    cap = get_profile("WhatsApp").content_fps
    assert stats.average_fps <= cap + 1
    assert stats.average_fps > cap * 0.8  # unloaded device ~= content rate


def test_uncontended_frames_meet_deadline(fg_system):
    fg_system.run(seconds=5.0)
    stats = fg_system.frame_engine.stats
    assert stats.ria < 0.05


def test_stop_tears_down_transients(fg_system):
    fg_system.run(seconds=3.0)
    engine = fg_system.frame_engine
    assert engine._transient  # churn built a pool
    resident_before = fg_system.mm.resident_pages
    pool = len(engine._transient)
    engine.stop()
    assert not engine._transient
    assert fg_system.mm.resident_pages <= resident_before - pool + 5


def test_working_set_is_bounded(fg_system):
    engine = fg_system.frame_engine
    sampler = fg_system.activity_manager.behaviors[
        fg_system.get_app("WhatsApp").main_process.pid
    ].sampler
    assert len(engine._working_set) <= len(sampler.all_pages)
    assert len(engine._working_set) >= len(sampler.hot_pages)


def test_render_task_registered_while_foreground(fg_system):
    assert fg_system.frame_engine.task is not None
    assert fg_system.frame_engine.task.tid in fg_system.sched.tasks
