"""Tests for namespaced RNG streams."""

import pytest

from repro.sim.rng import RngRegistry, RngStream, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "foo") == derive_seed(42, "foo")


def test_derive_seed_differs_by_namespace():
    assert derive_seed(42, "foo") != derive_seed(42, "bar")


def test_derive_seed_differs_by_base():
    assert derive_seed(1, "foo") != derive_seed(2, "foo")


def test_streams_reproducible_across_instances():
    a = RngStream(7, "component")
    b = RngStream(7, "component")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_independent_across_namespaces():
    registry = RngRegistry(7)
    a = registry.stream("alpha")
    # Drawing from beta must not perturb alpha's future draws.
    expected = RngStream(7, "alpha")
    expected.random()
    a.random()
    registry.stream("beta").random()
    assert a.random() == expected.random()


def test_registry_returns_same_stream_instance():
    registry = RngRegistry(1)
    assert registry.stream("x") is registry.stream("x")


def test_registry_namespaces_listing():
    registry = RngRegistry(1)
    registry.stream("b")
    registry.stream("a")
    assert registry.namespaces() == ["a", "b"]


def test_uniform_within_bounds():
    stream = RngStream(3, "u")
    for _ in range(100):
        value = stream.uniform(2.0, 5.0)
        assert 2.0 <= value <= 5.0


def test_randint_within_bounds():
    stream = RngStream(3, "i")
    for _ in range(100):
        assert 1 <= stream.randint(1, 6) <= 6


def test_zipf_index_within_bounds():
    stream = RngStream(3, "z")
    for _ in range(500):
        assert 0 <= stream.zipf_index(10) < 10


def test_zipf_index_biased_toward_zero():
    stream = RngStream(3, "zb")
    draws = [stream.zipf_index(100, skew=1.0) for _ in range(2000)]
    low = sum(1 for d in draws if d < 20)
    assert low > len(draws) * 0.4  # far above the uniform expectation


def test_zipf_index_empty_population_rejected():
    with pytest.raises(ValueError):
        RngStream(3, "e").zipf_index(0)


def test_sample_and_choice():
    stream = RngStream(3, "s")
    population = list(range(20))
    picked = stream.sample(population, 5)
    assert len(picked) == 5
    assert len(set(picked)) == 5
    assert stream.choice(population) in population


def test_shuffle_is_permutation():
    stream = RngStream(3, "sh")
    items = list(range(30))
    shuffled = list(items)
    stream.shuffle(shuffled)
    assert sorted(shuffled) == items
