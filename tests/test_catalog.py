"""Tests for the application catalog and profiles."""

import pytest

from repro.apps.catalog import (
    APP_CATALOG,
    SCENARIO_APPS,
    catalog_apps,
    extended_catalog,
    get_profile,
)
from repro.apps.profiles import AppCategory
from repro.apps.synthetic import cputester_profile, memtester_profile
from repro.devices.specs import huawei_p20


def test_twenty_apps_as_in_table3():
    assert len(catalog_apps()) == 20


def test_table3_categories_have_expected_sizes():
    by_category = {}
    for profile in catalog_apps():
        by_category.setdefault(profile.category, []).append(profile)
    assert len(by_category[AppCategory.SOCIAL]) == 5
    assert len(by_category[AppCategory.MULTIMEDIA]) == 3
    assert len(by_category[AppCategory.GAME]) == 3
    assert len(by_category[AppCategory.ECOMMERCE]) == 5
    assert len(by_category[AppCategory.UTILITY]) == 4


def test_table3_key_apps_present():
    for package in ("Facebook", "WhatsApp", "TikTok", "PUBGMobile",
                    "Chrome", "Amazon", "Youtube"):
        assert package in APP_CATALOG


def test_scenario_mapping_matches_paper():
    assert SCENARIO_APPS["S-A"] == "WhatsApp"  # video call
    assert SCENARIO_APPS["S-B"] == "TikTok"  # short-form video
    assert SCENARIO_APPS["S-C"] == "Facebook"  # screen scrolling
    assert SCENARIO_APPS["S-D"] == "PUBGMobile"  # mobile game


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        get_profile("MySpace")


def test_extended_catalog_is_forty_apps():
    extended = extended_catalog()
    assert len(extended) == 40
    names = [profile.package for profile in extended]
    assert len(set(names)) == 40
    assert "WhatsApp-Lite" in names


def test_lite_variants_are_smaller():
    base = get_profile("WhatsApp")
    lite = next(
        p for p in extended_catalog() if p.package == "WhatsApp-Lite"
    )
    assert lite.total_mb < base.total_mb


def test_footprint_scaling():
    spec = huawei_p20()
    profile = get_profile("PUBGMobile")
    pages = profile.footprint_pages(spec)
    segments = profile.segment_pages(spec)
    assert pages == pytest.approx(sum(segments.values()), abs=3)


def test_games_are_quiet_in_background():
    for name in ("AngryBird", "ArenaOfValor", "PUBGMobile"):
        assert not get_profile(name).bg_active


def test_facebook_has_stay_awake_bug():
    assert get_profile("Facebook").buggy_stay_awake


def test_memtester_profile_shape():
    profile = memtester_profile(total_mb=1000)
    assert profile.total_mb == pytest.approx(1000, abs=4)
    assert profile.gc_idle_period_s >= 1e8  # no GC
    assert profile.hot_frac < 0.1  # touches almost nothing again
    assert profile.cold_resident_frac > 0.9


def test_cputester_profile_utilization_math():
    profile = cputester_profile(utilization_frac=0.2, cores=8)
    tasks = profile.process_count
    per_second_cpu = tasks * profile.bg_burst_cpu_ms / profile.bg_burst_period_s
    assert per_second_cpu / 1000.0 == pytest.approx(0.2 * 8, rel=0.05)
    assert profile.total_mb < 50  # negligible memory


def test_cputester_invalid_fraction_rejected():
    with pytest.raises(ValueError):
        cputester_profile(utilization_frac=0.0)
