"""Tests for experiment helper functions and formatters (pure, fast)."""

import pytest

from repro.devices.specs import huawei_p20, pixel3
from repro.experiments.cpu_utilization import CpuUtilizationRow, format_table1
from repro.experiments.frame_rate import (
    Figure8Cell,
    Figure9Point,
    format_figure8,
    format_figure9,
)
from repro.experiments.launch_study import LaunchSample, LaunchStudyResult
from repro.experiments.reclaim_study import (
    ReclaimCell,
    format_matrix,
    reduction_summary,
)
from repro.experiments.refault_analysis import DecileRow, format_figure2b
from repro.experiments.scenarios import (
    DEFAULT_BG_COUNT,
    BgCase,
    _memtester_mb,
    background_packages,
)
from repro.sim.rng import RngStream


# ----------------------------------------------------------------------
# scenarios helpers
# ----------------------------------------------------------------------
def test_background_packages_excludes_foreground():
    rng = RngStream(1, "t")
    packages = background_packages("WhatsApp", 8, rng)
    assert len(packages) == 8
    assert "WhatsApp" not in packages
    assert len(set(packages)) == 8


def test_background_packages_deterministic_per_stream():
    assert background_packages("WhatsApp", 5, RngStream(1, "t")) == (
        background_packages("WhatsApp", 5, RngStream(1, "t"))
    )


def test_default_bg_counts_follow_paper():
    assert DEFAULT_BG_COUNT["P20"] == 8
    assert DEFAULT_BG_COUNT["Pixel3"] == 6


def test_memtester_sized_to_exhaust_memory():
    spec = huawei_p20()
    mb = _memtester_mb(spec, "WhatsApp")
    pages = spec.scale_pages(mb * 1024 * 1024)
    # Occupies most of managed memory but not more than all of it.
    assert spec.managed_pages * 0.7 < pages <= spec.managed_pages
    # The smaller device gets a smaller memtester.
    assert _memtester_mb(pixel3(), "WhatsApp") < mb


def test_bg_case_listing():
    assert BgCase.ALL == (
        BgCase.NULL, BgCase.APPS, BgCase.CPUTESTER, BgCase.MEMTESTER
    )


# ----------------------------------------------------------------------
# formatters
# ----------------------------------------------------------------------
def test_format_table1():
    rows = [CpuUtilizationRow(bg_apps=0, average=0.43, peak=0.52)]
    text = format_table1(rows)
    assert "43%" in text and "52%" in text


def test_format_figure8_layout():
    cells = [
        Figure8Cell("S-A", "P20", policy, fps=30.0 + i, ria=0.2, rounds=1)
        for i, policy in enumerate(("LRU+CFS", "UCSG", "Acclaim", "Ice"))
    ]
    text = format_figure8(cells)
    assert "P20" in text and "S-A" in text
    assert "33.0" in text  # Ice's fps


def test_format_figure9_layout():
    points = [
        Figure9Point("F", 0, "LRU+CFS", 46.0, 0.01),
        Figure9Point("F", 0, "Ice", 46.0, 0.01),
        Figure9Point("8B+F", 8, "LRU+CFS", 25.0, 0.5),
        Figure9Point("8B+F", 8, "Ice", 40.0, 0.2),
    ]
    text = format_figure9(points)
    assert "8B+F" in text
    lines = text.splitlines()
    assert lines[2].strip().startswith("F")  # config order preserved


def test_format_matrix_and_reduction():
    cells = [
        ReclaimCell("S-A", "LRU+CFS", refault=100, reclaim=1000),
        ReclaimCell("S-A", "Ice", refault=50, reclaim=700),
    ]
    text = format_matrix(cells, "T")
    assert "S-A" in text
    summary = reduction_summary(cells)
    assert "50%" in summary and "70%" in summary


def test_reduction_summary_skips_zero_baselines():
    cells = [
        ReclaimCell("S-A", "LRU+CFS", refault=0, reclaim=0),
        ReclaimCell("S-A", "Ice", refault=0, reclaim=0),
    ]
    assert "Ice" not in reduction_summary(cells)


def test_format_figure2b():
    rows = [DecileRow("[0th,10th]", fps=47.2, reclaims=100.0, bg_refaults=5.0)]
    text = format_figure2b(rows)
    assert "47.2" in text


# ----------------------------------------------------------------------
# launch study aggregates
# ----------------------------------------------------------------------
def make_study():
    result = LaunchStudyResult(policy="x")
    result.samples = [
        LaunchSample(0, "A", "cold", 4000.0, 0.0),
        LaunchSample(1, "A", "hot", 400.0, 0.0),
        LaunchSample(1, "B", "cold", 3000.0, 0.0),
        LaunchSample(2, "A", "hot", 500.0, 12.0),
    ]
    return result


def test_launch_study_latency_splits():
    study = make_study()
    assert study.cold_ms == 3500.0
    assert study.hot_ms == 450.0
    assert study.average_ms == pytest.approx((4000 + 400 + 3000 + 500) / 4)


def test_launch_study_hot_count_from_round():
    study = make_study()
    assert study.hot_launch_count(1) == 2
    assert study.hot_launch_count(2) == 1
