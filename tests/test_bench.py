"""Tier-2 tests for the self-profiling benchmark harness (repro.bench)."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    run_bench,
    write_bench_file,
)
from repro.bench import compare

# Machine-dependent cell fields; everything else must be deterministic.
_PERF_KEYS = {"wall_s", "events_per_sec", "sim_ms_per_wall_s"}

_CELL_KEYS = {
    "scenario", "policy", "device", "bg_case", "seed", "measured_seconds",
    "wall_s", "events_executed", "events_per_sec", "sim_ms_per_wall_s",
    "fps", "fps_p5", "fps_p95", "ria", "launch_ms",
    "refault", "refault_fg", "refault_bg", "reclaim",
    "lmk_kills", "frozen_apps",
    "psi_mem_some_total_us", "psi_mem_full_total_us",
    "psi_io_some_total_us", "psi_cpu_some_total_us",
}


def _tiny_config():
    return BenchConfig(
        scenarios=("S-A",), policies=("LRU+CFS",), seconds=2.0, seed=7
    )


def test_run_bench_produces_versioned_document(tmp_path):
    doc = run_bench(_tiny_config())
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert doc["seed"] == 7
    assert doc["jobs"] == 1
    assert doc["workers"] == []
    assert doc["totals"]["runs"] == 1
    assert doc["totals"]["wall_s"] > 0
    assert doc["totals"]["events_per_sec"] > 0
    cell = doc["runs"][0]
    assert set(cell) == _CELL_KEYS
    assert cell["events_executed"] > 0
    assert cell["wall_s"] > 0

    path = write_bench_file(doc, str(tmp_path / "BENCH_test.json"))
    assert json.loads(open(path).read()) == doc


def test_micro_benchmarks_report_rates():
    from repro.bench.micro import fault_loop_micro, lru_micro

    lru = lru_micro(pages=64, rounds=2)
    assert lru["ops"] > 0
    assert lru["ops_per_sec"] > 0

    # Enough iterations to wrap the 2,560-page footprint a few times,
    # so the loop actually reclaims and refaults.
    fault = fault_loop_micro(iterations=8_000)
    assert fault["iterations"] == 8_000
    assert fault["page_faults"] > 0
    assert fault["refaults"] > 0
    assert fault["reclaimed"] > 0
    assert fault["iters_per_sec"] > 0


def test_micro_section_attached_when_enabled():
    config = BenchConfig(
        scenarios=("S-A",),
        policies=("LRU+CFS",),
        seconds=1.0,
        seed=7,
        micro=True,
    )
    doc = run_bench(config)
    assert set(doc["micro"]) == {"lru", "fault_loop"}
    assert doc["micro"]["lru"]["ops_per_sec"] > 0
    assert doc["micro"]["fault_loop"]["iters_per_sec"] > 0


def test_smoke_config_is_short():
    config = BenchConfig.smoke_config()
    assert config.smoke
    assert config.seconds <= 5.0
    assert len(config.scenarios) == 1


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_bench(BenchConfig(scenarios=("S-Z",), policies=("LRU+CFS",)))


def test_progress_callback_sees_every_cell():
    seen = []
    run_bench(_tiny_config(), progress=seen.append)
    assert [c["scenario"] for c in seen] == ["S-A"]


def test_parallel_matches_serial_bit_for_bit():
    """--jobs N must not change any paper-facing number, only timing."""
    config = BenchConfig(
        scenarios=("S-A",), policies=("LRU+CFS", "Ice"), seconds=1.0, seed=7
    )
    serial = run_bench(config)
    parallel = run_bench(
        BenchConfig(
            scenarios=config.scenarios,
            policies=config.policies,
            seconds=config.seconds,
            seed=config.seed,
            jobs=2,
        )
    )
    assert parallel["jobs"] == 2
    # Pool workers are recorded with their share of the matrix.
    assert parallel["workers"]
    assert sum(w["cells"] for w in parallel["workers"]) == 2
    for worker in parallel["workers"]:
        assert worker["wall_s"] > 0
        assert worker["peak_rss_kb"] > 0
    assert len(serial["runs"]) == len(parallel["runs"]) == 2
    for s_cell, p_cell in zip(serial["runs"], parallel["runs"]):
        s_det = {k: v for k, v in s_cell.items() if k not in _PERF_KEYS}
        p_det = {k: v for k, v in p_cell.items() if k not in _PERF_KEYS}
        assert s_det == p_det


def test_profile_mode_embeds_top_table():
    config = BenchConfig(
        scenarios=("S-A",), policies=("LRU+CFS",), seconds=1.0, seed=7,
        profile=True, profile_top=4,
    )
    doc = run_bench(config)
    assert len(doc["profiles"]) == 1
    prof = doc["profiles"][0]
    assert prof["scenario"] == "S-A"
    assert prof["policy"] == "LRU+CFS"
    assert prof["top_n"] == 4
    rows = prof["by_cumulative"]
    assert 0 < len(rows) <= 4
    # Sorted by cumulative time, with the harness entry point on top.
    cums = [row["cumtime_s"] for row in rows]
    assert cums == sorted(cums, reverse=True)
    for row in rows:
        assert set(row) == {"function", "ncalls", "tottime_s", "cumtime_s"}


def _fake_artifact(**overrides):
    cell = {
        "scenario": "S-A", "policy": "Ice", "device": "P20",
        "bg_case": "bg-apps", "seed": 42, "measured_seconds": 2.0,
        "wall_s": 1.0, "events_executed": 1000, "events_per_sec": 1000.0,
        "sim_ms_per_wall_s": 2000.0, "fps": 30.0, "fps_p5": 10.0,
        "fps_p95": 55.0, "ria": 0.9, "launch_ms": 120.0,
        "refault": 5, "refault_fg": 1, "refault_bg": 4, "reclaim": 40,
        "lmk_kills": 0, "frozen_apps": 2,
        "psi_mem_some_total_us": 100, "psi_mem_full_total_us": 50,
        "psi_io_some_total_us": 10, "psi_cpu_some_total_us": 20,
    }
    cell.update(overrides)
    return {"schema_version": BENCH_SCHEMA_VERSION, "runs": [cell]}


def test_compare_identical_docs_is_clean():
    doc = _fake_artifact()
    report = compare.compare_docs(doc, copy.deepcopy(doc))
    assert report["regressions"] == []
    assert report["perf_notes"] == []


def test_compare_flags_paper_drift_exactly():
    old = _fake_artifact()
    new = _fake_artifact(refault=6)
    report = compare.compare_docs(old, new)
    assert [r["metric"] for r in report["regressions"]] == ["refault"]
    # A tolerance wide enough swallows it.
    report = compare.compare_docs(old, new, abs_tol=1.0)
    assert report["regressions"] == []


def test_compare_perf_drift_warns_unless_promoted():
    old = _fake_artifact()
    new = _fake_artifact(wall_s=2.0, events_per_sec=500.0)
    report = compare.compare_docs(old, new, perf_rel_tol=0.25)
    assert report["regressions"] == []
    assert {n["metric"] for n in report["perf_notes"]} == {
        "wall_s", "events_per_sec"
    }
    report = compare.compare_docs(
        old, new, perf_rel_tol=0.25, fail_on_perf=True
    )
    assert {r["metric"] for r in report["regressions"]} == {
        "wall_s", "events_per_sec"
    }
    # Faster is never a regression, even with --fail-on-perf.
    faster = _fake_artifact(wall_s=0.1, events_per_sec=10000.0)
    report = compare.compare_docs(old, faster, fail_on_perf=True)
    assert report["regressions"] == []


def test_compare_missing_cell_is_shape_regression():
    old = _fake_artifact()
    new = copy.deepcopy(old)
    new["runs"] = []
    report = compare.compare_docs(old, new)
    assert report["regressions"]
    assert all(r["kind"] == "shape" for r in report["regressions"])


def test_compare_cli_exit_codes(tmp_path, capsys):
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(json.dumps(_fake_artifact()))

    new_path.write_text(json.dumps(_fake_artifact()))
    assert compare.main([str(old_path), str(new_path)]) == 0

    new_path.write_text(json.dumps(_fake_artifact(lmk_kills=3)))
    assert compare.main([str(old_path), str(new_path)]) == 1

    assert compare.main([str(old_path), str(tmp_path / "absent.json")]) == 2
    new_path.write_text("{}")
    assert compare.main([str(old_path), str(new_path)]) == 2
    capsys.readouterr()  # swallow gate chatter


def test_committed_artifact_matches_current_schema():
    """The repo carries a BENCH_*.json; it must parse under this schema."""
    import glob
    import os

    repo_root = os.path.join(os.path.dirname(__file__), "..")
    artifacts = sorted(glob.glob(os.path.join(repo_root, "BENCH_*.json")))
    assert artifacts, "expected a committed BENCH_<date>.json artifact"
    doc = json.load(open(artifacts[-1]))
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert doc["totals"]["runs"] >= 3
    scenarios = {cell["scenario"] for cell in doc["runs"]}
    assert len(scenarios) >= 3  # paper-facing metrics across ≥3 scenarios
    for cell in doc["runs"]:
        assert set(cell) == _CELL_KEYS
