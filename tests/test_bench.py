"""Tier-2 tests for the self-profiling benchmark harness (repro.bench)."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    run_bench,
    write_bench_file,
)

_CELL_KEYS = {
    "scenario", "policy", "device", "bg_case", "seed", "measured_seconds",
    "wall_s", "events_executed", "events_per_sec", "sim_ms_per_wall_s",
    "fps", "fps_p5", "fps_p95", "ria", "launch_ms",
    "refault", "refault_fg", "refault_bg", "reclaim",
    "lmk_kills", "frozen_apps",
    "psi_mem_some_total_us", "psi_mem_full_total_us",
    "psi_io_some_total_us", "psi_cpu_some_total_us",
}


def _tiny_config():
    return BenchConfig(
        scenarios=("S-A",), policies=("LRU+CFS",), seconds=2.0, seed=7
    )


def test_run_bench_produces_versioned_document(tmp_path):
    doc = run_bench(_tiny_config())
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert doc["seed"] == 7
    assert doc["totals"]["runs"] == 1
    assert doc["totals"]["wall_s"] > 0
    assert doc["totals"]["events_per_sec"] > 0
    cell = doc["runs"][0]
    assert set(cell) == _CELL_KEYS
    assert cell["events_executed"] > 0
    assert cell["wall_s"] > 0

    path = write_bench_file(doc, str(tmp_path / "BENCH_test.json"))
    assert json.loads(open(path).read()) == doc


def test_smoke_config_is_short():
    config = BenchConfig.smoke_config()
    assert config.smoke
    assert config.seconds <= 5.0
    assert len(config.scenarios) == 1


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_bench(BenchConfig(scenarios=("S-Z",), policies=("LRU+CFS",)))


def test_progress_callback_sees_every_cell():
    seen = []
    run_bench(_tiny_config(), progress=seen.append)
    assert [c["scenario"] for c in seen] == ["S-A"]


def test_committed_artifact_matches_current_schema():
    """The repo carries a BENCH_*.json; it must parse under this schema."""
    import glob
    import os

    repo_root = os.path.join(os.path.dirname(__file__), "..")
    artifacts = sorted(glob.glob(os.path.join(repo_root, "BENCH_*.json")))
    assert artifacts, "expected a committed BENCH_<date>.json artifact"
    doc = json.load(open(artifacts[-1]))
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert doc["totals"]["runs"] >= 3
    scenarios = {cell["scenario"] for cell in doc["runs"]}
    assert len(scenarios) >= 3  # paper-facing metrics across ≥3 scenarios
    for cell in doc["runs"]:
        assert set(cell) == _CELL_KEYS
