"""Consistent-hash ring: determinism, balance, join/leave stability."""

import pytest

from repro.fleet.routing import DEFAULT_VNODES, HashRing, stable_hash


def _keys(n):
    return [f"cachekey-{i:05d}" for i in range(n)]


# ----------------------------------------------------------------------
# Hash + basic ring mechanics
# ----------------------------------------------------------------------
def test_stable_hash_is_process_independent():
    # sha256-derived, so these values hold on every interpreter run —
    # the property PYTHONHASHSEED denies Python's builtin hash().
    assert stable_hash("n1#0") == stable_hash("n1#0")
    assert stable_hash("a") != stable_hash("b")
    assert 0 <= stable_hash("anything") < 2 ** 64


def test_empty_ring_routes_nowhere():
    ring = HashRing()
    assert ring.route("key") is None
    assert len(ring) == 0
    assert "n1" not in ring


def test_add_remove_membership():
    ring = HashRing()
    ring.add("n1")
    ring.add("n1")  # idempotent
    assert len(ring) == 1
    assert ring.stats()["points"] == DEFAULT_VNODES
    assert ring.route("anything") == "n1"
    assert ring.remove("n1") is True
    assert ring.remove("n1") is False
    assert ring.route("anything") is None


def test_rejects_bad_inputs():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        HashRing().add("")


# ----------------------------------------------------------------------
# Routing properties
# ----------------------------------------------------------------------
def test_routing_is_deterministic_across_ring_instances():
    # A restarted node must rebuild the exact ring every other fleet
    # member computed: same members, same owners, regardless of the
    # order they joined in.
    a = HashRing()
    b = HashRing()
    for node in ("n1", "n2", "n3"):
        a.add(node)
    for node in ("n3", "n1", "n2"):
        b.add(node)
    for key in _keys(500):
        assert a.route(key) == b.route(key)


def test_spread_is_roughly_balanced():
    ring = HashRing()
    for node in ("n1", "n2", "n3", "n4"):
        ring.add(node)
    counts = ring.spread(_keys(4000))
    assert sum(counts.values()) == 4000
    # 64 vnodes/node keeps the imbalance modest; each node should own
    # somewhere near 1000 keys (generous 2x bounds, not a coin flip).
    for node, count in counts.items():
        assert 400 <= count <= 2000, (node, count)


def test_join_only_remaps_a_slice():
    ring = HashRing()
    for node in ("n1", "n2", "n3"):
        ring.add(node)
    keys = _keys(3000)
    before = {key: ring.route(key) for key in keys}
    ring.add("n4")
    moved = sum(1 for key in keys if ring.route(key) != before[key])
    # Ideal consistent hashing moves 1/4 of keys to the new node; far
    # less than the ~3/4 a mod-N reshuffle would move.  Allow slack for
    # vnode placement variance.
    assert 0 < moved <= len(keys) * 0.45, moved
    # ...and every moved key moved TO the new node, never between
    # survivors.
    for key in keys:
        owner = ring.route(key)
        if owner != before[key]:
            assert owner == "n4"


def test_leave_only_remaps_the_dead_nodes_keys():
    ring = HashRing()
    for node in ("n1", "n2", "n3", "n4"):
        ring.add(node)
    keys = _keys(3000)
    before = {key: ring.route(key) for key in keys}
    ring.remove("n2")
    for key in keys:
        owner = ring.route(key)
        if before[key] == "n2":
            assert owner != "n2"  # reassigned somewhere live
        else:
            # Keys owned by survivors never move on an unrelated leave:
            # this is exactly the cache affinity the fleet routes for.
            assert owner == before[key]


def test_leave_then_rejoin_restores_ownership():
    ring = HashRing()
    for node in ("n1", "n2", "n3"):
        ring.add(node)
    keys = _keys(1000)
    before = {key: ring.route(key) for key in keys}
    ring.remove("n2")
    ring.add("n2")
    for key in keys:
        assert ring.route(key) == before[key]
