"""Short in-process soak: the CI-sized version of `repro bench --soak`.

A real server takes a few hundred sustained submissions while the
harness samples RSS, retention budgets, and stats/metrics consistency.
The full 10k+ soak runs in CI's soak-smoke job; this keeps the same
invariants under pytest at a size that fits the tier-1 budget.
"""

from repro.bench.soak import (
    SOAK_SCHEMA_VERSION,
    SoakConfig,
    check_consistency,
    run_soak,
    write_soak_file,
)


def test_short_soak_holds_every_invariant(tmp_path):
    config = SoakConfig(
        duration_s=2.0,
        min_submissions=400,
        workers=1,
        warm_pool=3,
        job_budget_bytes=64 * 1024,
        sample_every=100,
        probe_ids=3,
    )
    doc = run_soak(config)
    summary = doc["summary"]

    assert doc["schema_version"] == SOAK_SCHEMA_VERSION
    assert summary["submissions"] >= 400
    # The invariants the CI gate enforces at 10k submissions:
    assert summary["consistency_failures"] == []
    assert summary["tombstone_404s"] == 0
    assert summary["budget_over_bytes_max"] == 0
    # Retention actually cycled (evictions happened) under the budget.
    assert summary["evicted_total"] > 0
    assert summary["baseline_rss_bytes"] > 0

    # Samples carry the charted series.
    assert len(doc["samples"]) >= 3
    for sample in doc["samples"]:
        assert sample["rss_bytes"] > 0
        assert sample["retention"]["terminal_bytes"] <= 64 * 1024
        assert sample["consistency_failures"] == []

    # The artifact is valid JSON on disk.
    out = write_soak_file(doc, str(tmp_path / "SOAK_test.json"))
    import json

    with open(out) as handle:
        assert json.load(handle)["summary"]["submissions"] >= 400


def test_check_consistency_flags_divergence():
    stats = {
        "jobs": {"submitted_total": 5, "cache_hits": 2,
                 "events_dropped_total": 0},
        "queue": {"enqueued_total": 3, "expired_total": 1,
                  "cancelled_total": 0},
        "cache": {"hits": 2, "misses": 3, "evictions": 0},
        "workers": {"started_total": 3, "completed_total": 3,
                    "failed_total": 0},
        "retention": {"evicted_total": 0},
    }
    metrics = "\n".join([
        "repro_serve_jobs_submitted_total 5",
        "repro_serve_cache_hit_jobs_total 2",
        "repro_serve_job_events_dropped_total 0",
        'repro_serve_queue_enqueued_total{priority_class="normal"} 2',
        'repro_serve_queue_enqueued_total{priority_class="high"} 1',
        "repro_serve_queue_expired_total 0",  # diverges: stats says 1
        "repro_serve_queue_cancelled_total 0",
        'repro_serve_cache_hits_total{tier="memory"} 2',
        "repro_serve_cache_misses_total 3",
        "repro_serve_cache_evictions_total 0",
        "repro_serve_worker_started_total 3",
        "repro_serve_worker_completed_total 3",
        "repro_serve_worker_failed_total 0",
        "repro_serve_jobs_evicted_total 0",
    ])
    failures = check_consistency(stats, metrics)
    assert len(failures) == 1
    assert "expired_total" in failures[0]

    metrics = metrics.replace(
        "repro_serve_queue_expired_total 0",
        "repro_serve_queue_expired_total 1",
    )
    assert check_consistency(stats, metrics) == []
