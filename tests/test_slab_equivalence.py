"""Property-based equivalence: slab-backed kernel state vs a reference.

The slab refactor's contract is that the array-backed LRU lists and
workingset produce *bit-identical* behaviour to the old object-backed
implementation.  This module keeps an executable spec of that old
implementation — ``OrderedDict`` LRU lists (cold end = front) and a
dict of shadow entries — and drives both through identical random
operation sequences derived from a seed.  After every sequence the two
must agree on:

* the cold-to-hot ordering of all four LRU lists,
* every victim list returned by an inactive scan,
* every refault distance, in order,
* the workingset counters (eviction clock, live shadow entries, shed
  totals) and the refault vmstat counters.

Any divergence — a list linked in the wrong order, a scan that rotates
instead of promoting, a shadow entry cleared at the wrong time — fails
with the first differing step, which is exactly the regression the
bench determinism gate would otherwise only catch downstream.
"""

import random
from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.lru import LruKind, LruLists
from repro.kernel.page import HeapKind, Page, PageKind, reset_page_ids
from repro.kernel.slab import PAGE_SLAB
from repro.kernel.workingset import SHADOW_ENTRY_BYTES, WorkingSet


# ----------------------------------------------------------------------
# Reference implementation (the pre-slab object-backed semantics)
# ----------------------------------------------------------------------
class RefState:
    """Executable spec: OrderedDict lists + dict shadow entries.

    Operates on logical page indices; the caller keeps the index ->
    slab-id mapping.  ``referenced`` mirrors the young bit, which the
    slab implementation stores in the flags column.
    """

    ACTIVE_ANON, INACTIVE_ANON, ACTIVE_FILE, INACTIVE_FILE = 1, 2, 3, 4

    def __init__(self, is_file, shadow_budget_entries=None):
        self.is_file = list(is_file)
        # code -> OrderedDict of indices; front = cold end.
        self.lists = {code: OrderedDict() for code in (1, 2, 3, 4)}
        self.referenced = [False] * len(self.is_file)
        self.shadow = {}  # index -> eviction clock
        self.clock = 0
        self.shed_total = 0
        self.budget_entries = shadow_budget_entries
        self.refault_total = 0
        self.refault_anon = 0
        self.refault_file = 0

    def _code_of(self, index):
        for code, entries in self.lists.items():
            if index in entries:
                return code
        return None

    def add(self, index, active):
        assert self._code_of(index) is None
        code = (1 if active else 2) + (2 if self.is_file[index] else 0)
        self.lists[code][index] = True

    def activate(self, index):
        code = self._code_of(index)
        del self.lists[code][index]
        self.lists[1 + (2 if self.is_file[index] else 0)][index] = True

    def deactivate(self, index):
        code = self._code_of(index)
        del self.lists[code][index]
        self.lists[2 + (2 if self.is_file[index] else 0)][index] = True

    def rotate(self, index):
        code = self._code_of(index)
        del self.lists[code][index]
        self.lists[code][index] = True

    def remove(self, index):
        code = self._code_of(index)
        del self.lists[code][index]

    def scan_inactive(self, code, budget, protected):
        """Pop-front scan with second chance; returns victim indices."""
        entries = self.lists[code]
        active_code = code - 1
        victims = []
        scanned = 0
        while scanned < budget and entries:
            index, _ = entries.popitem(last=False)
            scanned += 1
            if self.referenced[index]:
                self.referenced[index] = False
                self.lists[active_code][index] = True
            elif index in protected:
                entries[index] = True
            else:
                victims.append(index)
        return victims, scanned

    def age_active(self, code, budget):
        entries = self.lists[code]
        inactive_code = code + 1
        demoted = 0
        scanned = 0
        while scanned < budget and entries:
            index, _ = entries.popitem(last=False)
            scanned += 1
            if self.referenced[index]:
                self.referenced[index] = False
                entries[index] = True
            else:
                self.lists[inactive_code][index] = True
                demoted += 1
        return demoted

    def record_eviction(self, index):
        self.clock += 1
        self.shadow[index] = self.clock
        if (
            self.budget_entries is not None
            and len(self.shadow) > self.budget_entries
        ):
            self._shed_oldest()

    def _shed_oldest(self):
        target = self.budget_entries * 7 // 8
        excess = len(self.shadow) - target
        if excess <= 0:
            return
        # Oldest clocks first; ties cannot happen (clocks are unique).
        oldest = sorted(self.shadow.items(), key=lambda kv: kv[1])[:excess]
        for index, _ in oldest:
            del self.shadow[index]
        self.shed_total += len(oldest)

    def refault(self, index):
        """Returns the refault distance, or -1 for first touch."""
        clock = self.shadow.pop(index, None)
        if clock is None:
            return -1
        self.refault_total += 1
        if self.is_file[index]:
            self.refault_file += 1
        else:
            self.refault_anon += 1
        return self.clock - clock

    def order(self, code):
        return list(self.lists[code])


CODE_TO_KIND = {
    1: LruKind.ACTIVE_ANON,
    2: LruKind.INACTIVE_ANON,
    3: LruKind.ACTIVE_FILE,
    4: LruKind.INACTIVE_FILE,
}


def _make_pages(is_file):
    return [
        Page(
            kind=PageKind.FILE if kf else PageKind.ANON,
            owner=None,
            heap=HeapKind.NONE if kf else HeapKind.NATIVE,
        )
        for kf in is_file
    ]


def _assert_orderings_match(lru, ref, ids):
    for code, kind in CODE_TO_KIND.items():
        slab_order = [page.page_id for page in lru.iter_pages(kind)]
        ref_order = [ids[index] for index in ref.order(code)]
        assert slab_order == ref_order, f"list {kind} diverged"
        assert lru.size(kind) == len(ref.order(code))


def _drive(seed, steps, page_count, shadow_budget_entries=None):
    """Run one random op sequence through both implementations."""
    rng = random.Random(seed)
    is_file = [rng.random() < 0.5 for _ in range(page_count)]
    pages = _make_pages(is_file)
    ids = [page.page_id for page in pages]
    lru = LruLists()
    ws = WorkingSet(
        shadow_budget_bytes=(
            None
            if shadow_budget_entries is None
            else shadow_budget_entries * SHADOW_ENTRY_BYTES
        )
    )
    ref = RefState(is_file, shadow_budget_entries=shadow_budget_entries)
    protected = set()
    distances_slab = []
    distances_ref = []

    for _ in range(steps):
        op = rng.randrange(10)
        index = rng.randrange(page_count)
        page = pages[index]
        on_list = ref._code_of(index) is not None
        if op == 0 and not on_list:
            active = rng.random() < 0.5
            lru.add(page, active)
            ref.add(index, active)
        elif op == 1 and on_list:
            lru.activate(page)
            ref.activate(index)
        elif op == 2 and on_list:
            lru.deactivate(page)
            ref.deactivate(index)
        elif op == 3 and on_list:
            lru.rotate(page)
            ref.rotate(index)
        elif op == 4 and on_list:
            lru.remove(page)
            ref.remove(index)
        elif op == 5:
            # Touch: set the young bit in both worlds.
            page.referenced = True
            ref.referenced[index] = True
        elif op == 6:
            # Flip protection (the reclaim_protect policy hook).
            if index in protected:
                protected.discard(index)
            else:
                protected.add(index)
        elif op == 7:
            # Inactive scan + evict: victims leave the list and gain
            # shadow entries, exactly like MemoryManager._evict_from.
            code = rng.choice((2, 4))
            budget = rng.randrange(1, 2 * page_count)
            protected_ids = {ids[j] for j in protected}
            victims, scanned = lru.scan_inactive(
                CODE_TO_KIND[code],
                budget=budget,
                protect=lambda p: p.page_id in protected_ids,
            )
            ref_victims, ref_scanned = ref.scan_inactive(
                code, budget, protected
            )
            assert [v.page_id for v in victims] == [
                ids[j] for j in ref_victims
            ]
            assert scanned == ref_scanned
            for victim in victims:
                ws.record_eviction(victim)
            for j in ref_victims:
                ref.record_eviction(j)
        elif op == 8:
            code = rng.choice((1, 3))
            budget = rng.randrange(1, 2 * page_count)
            demoted = lru.age_active(CODE_TO_KIND[code], budget=budget)
            assert demoted == ref.age_active(code, budget)
        elif op == 9:
            # Refault probe (first touch when no shadow entry exists).
            distances_slab.append(
                ws.check_refault_id(0.0, ids[index], pid=1, uid=1,
                                    foreground=False)
            )
            distances_ref.append(ref.refault(index))

    _assert_orderings_match(lru, ref, ids)
    assert distances_slab == distances_ref
    assert ws.eviction_clock == ref.clock
    assert ws.shadow_shed_total == ref.shed_total
    # Live shadow entries must agree; map ref indices to slab ids.
    slab_shadows = {
        i for i in ids if PAGE_SLAB.shadow[i]
    }
    assert slab_shadows == {ids[j] for j in ref.shadow}
    assert ws.shadow_entries == len(ref.shadow)
    # Refault vmstat counters (mirrored on ref by kind).
    return ref, distances_ref


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_slab_matches_reference_implementation(seed):
    """Random op sequences: slab and reference stay in lockstep."""
    _drive(seed, steps=250, page_count=32)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_slab_matches_reference_under_shadow_shedding(seed):
    """Same lockstep with a tiny shadow budget so shedding fires.

    ``WorkingSet._shed_oldest`` scans the whole global shadow column, so
    the slab is reset first to keep entries from other tests out of the
    oldest-clock selection.
    """
    reset_page_ids()
    _drive(seed, steps=250, page_count=32, shadow_budget_entries=8)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_refault_distances_match_reference(seed):
    """Evict-then-refault heavy mix: distances agree step for step."""
    rng = random.Random(seed)
    is_file = [rng.random() < 0.5 for _ in range(16)]
    pages = _make_pages(is_file)
    ids = [page.page_id for page in pages]
    lru = LruLists()
    ws = WorkingSet()
    ref = RefState(is_file)
    for _ in range(400):
        index = rng.randrange(16)
        page = pages[index]
        if ref._code_of(index) is None:
            lru.add(page)
            ref.add(index, False)
            continue
        # Evict it (pull off the list, install a shadow entry) ...
        lru.remove(page)
        ref.remove(index)
        ws.record_eviction(page)
        ref.record_eviction(index)
        # ... and refault it with probability 1/2, possibly much later.
        if rng.random() < 0.5:
            distance = ws.check_refault_id(
                0.0, ids[index], pid=1, uid=1, foreground=False
            )
            assert distance == ref.refault(index)
    assert ws.eviction_clock == ref.clock
    assert ws.shadow_entries == len(ref.shadow)
