"""Tests for the kernel-space UID-PID mapping table (§4.2.2, §6.4.1)."""

import pytest

from repro.core.mapping_table import (
    MappingTable,
    MappingTableFullError,
    PID_ENTRY_BYTES,
    SCORE_ENTRY_BYTES,
    STATE_ENTRY_BYTES,
    UID_ENTRY_BYTES,
)


def test_register_and_lookup_both_directions():
    table = MappingTable()
    table.register_app(uid=10001, package="a", pids=[1, 2, 3])
    assert table.uid_of_pid(2) == 10001
    assert table.pids_of_uid(10001) == [1, 2, 3]


def test_unknown_pid_returns_none():
    assert MappingTable().uid_of_pid(999) is None


def test_unknown_uid_returns_empty():
    assert MappingTable().pids_of_uid(999) == []


def test_register_refresh_adds_new_pids():
    table = MappingTable()
    table.register_app(uid=10001, package="a", pids=[1])
    table.register_app(uid=10001, package="a", pids=[1, 2])
    assert table.pids_of_uid(10001) == [1, 2]
    assert table.app_count == 1


def test_remove_app_clears_both_indices():
    table = MappingTable()
    table.register_app(uid=10001, package="a", pids=[1, 2])
    table.remove_app(10001)
    assert table.uid_of_pid(1) is None
    assert table.pids_of_uid(10001) == []
    assert table.app_count == 0
    assert table.process_count == 0


def test_remove_unknown_app_is_noop():
    MappingTable().remove_app(424242)


def test_paper_size_accounting_20_apps_3_procs():
    """§6.4.1: 20x64B UID + 20x3x64B PID + 20x3x1B state + 20x3x64B score."""
    table = MappingTable()
    for index in range(20):
        table.register_app(
            uid=10000 + index,
            package=f"app{index}",
            pids=[100 + index * 3 + j for j in range(3)],
        )
    expected = 20 * UID_ENTRY_BYTES + 60 * (
        PID_ENTRY_BYTES + STATE_ENTRY_BYTES + SCORE_ENTRY_BYTES
    )
    assert table.memory_bytes == expected
    assert table.memory_bytes <= 32 * 1024  # within the safety bound


def test_capacity_bound_enforced():
    table = MappingTable(capacity_bytes=512)
    table.register_app(uid=1, package="a", pids=[1, 2])
    with pytest.raises(MappingTableFullError):
        table.register_app(uid=2, package="b", pids=list(range(10, 20)))


def test_failed_register_leaves_table_unchanged():
    table = MappingTable(capacity_bytes=512)
    table.register_app(uid=1, package="a", pids=[1])
    before = table.memory_bytes
    with pytest.raises(MappingTableFullError):
        table.register_app(uid=2, package="b", pids=list(range(10, 30)))
    assert table.memory_bytes == before
    assert not table.contains_uid(2)


def test_set_frozen_state():
    table = MappingTable()
    table.register_app(uid=1, package="a", pids=[5])
    table.set_frozen(5, True)
    entry = table._apps[1].processes[5]
    assert entry.frozen
    table.set_frozen(5, False)
    assert not entry.frozen


def test_set_frozen_unknown_pid_is_noop():
    MappingTable().set_frozen(999, True)


def test_adj_score_update_and_query():
    table = MappingTable()
    table.register_app(uid=1, package="a", pids=[5, 6], adj_score=900)
    assert table.adj_of_uid(1) == 900
    table.set_adj_score(1, 0)
    assert table.adj_of_uid(1) == 0


def test_adj_of_unknown_uid_is_none():
    assert MappingTable().adj_of_uid(7) is None


def test_lookup_counter_tracks_hot_path():
    table = MappingTable()
    table.register_app(uid=1, package="a", pids=[5])
    table.uid_of_pid(5)
    table.pids_of_uid(1)
    assert table.lookups == 2
