"""Tier-2 tests for the virtual /proc surface (repro.obs.procfs)."""

import re

import pytest

from repro.apps.catalog import catalog_apps
from repro.system import MobileSystem

PRESSURE_LINE = re.compile(
    r"^(some|full) avg10=\d+\.\d{2} avg60=\d+\.\d{2} avg300=\d+\.\d{2} total=\d+$"
)


def _loaded_system(launches=3):
    system = MobileSystem(seed=11)
    system.install_apps(catalog_apps())
    for package in list(system.apps)[:launches]:
        record = system.launch(package)
        system.run_until_complete(record, timeout_s=240.0)
    system.run(seconds=2.0)
    return system


def test_every_listed_path_is_readable():
    system = _loaded_system()
    paths = system.procfs.paths()
    assert "meminfo" in paths and "vmstat" in paths
    assert {"pressure/memory", "pressure/io", "pressure/cpu"} <= set(paths)
    for path in paths:
        text = system.procfs.read(path)
        assert isinstance(text, str) and text.endswith("\n")


def test_unknown_path_raises_keyerror():
    system = MobileSystem(seed=1)
    with pytest.raises(KeyError):
        system.procfs.read("pressure/disk")
    with pytest.raises(KeyError):
        system.procfs.read("memcg/NotInstalled/memory.stat")
    with pytest.raises(KeyError):
        system.procfs.read("cmdline")


def test_pressure_files_match_linux_format():
    system = _loaded_system()
    for resource in ("memory", "io", "cpu"):
        lines = system.procfs.read(f"pressure/{resource}").strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert PRESSURE_LINE.match(line), line


def test_meminfo_reflects_authoritative_mm_state():
    system = _loaded_system()
    data = system.procfs.snapshot()["meminfo"]
    scale_kb = system.spec.memory_scale * 4
    assert data["MemTotal_kB"] == system.mm.managed_pages * scale_kb
    assert data["MemFree_kB"] == system.mm.free_pages * scale_kb
    assert data["SwapTotal_kB"] == system.zram.capacity_pages * scale_kb
    assert 0 < data["MemFree_kB"] <= data["MemTotal_kB"]
    # LRU lists partition resident memory.
    lru_sum = (data["Active(anon)_kB"] + data["Inactive(anon)_kB"]
               + data["Active(file)_kB"] + data["Inactive(file)_kB"])
    assert lru_sum <= data["MemTotal_kB"]


def test_memcg_stat_tracks_per_app_residency():
    system = _loaded_system(launches=2)
    package = next(p for p in system.apps if system.apps[p].alive)
    app = system.apps[package]
    text = system.procfs.read(f"memcg/{package}/memory.stat")
    data = system.procfs.snapshot()["memcg"][package]["memory.stat"]
    assert data["uid"] == app.uid
    assert data["resident_pages"] == app.resident_pages()
    assert data["resident_pages"] <= data["total_pages"]
    assert f"uid {app.uid}" in text


def test_snapshot_structure_is_json_ready():
    import json

    system = _loaded_system()
    snap = system.procfs.snapshot()
    assert set(snap) == {"meminfo", "vmstat", "pressure", "memcg", "cgroup"}
    for resource in ("memory", "io", "cpu"):
        for kind in ("some", "full"):
            line = snap["pressure"][resource][kind]
            assert set(line) == {"avg10", "avg60", "avg300", "total_us"}
    json.dumps(snap)  # must be serialisable as-is


def test_dump_text_concatenates_selected_sections():
    system = _loaded_system()
    text = system.procfs.dump_text(["meminfo", "pressure/memory"])
    assert text.startswith("==> meminfo <==")
    assert "==> pressure/memory <==" in text
    assert "==> vmstat <==" not in text


def test_freezer_file_reports_frozen_processes():
    system = _loaded_system()
    data = system.procfs.snapshot()["cgroup"]["freezer"]
    assert data["frozen_processes"] == len(system.freezer.frozen_pids)
    assert set(data) == {"frozen_processes", "freeze_count", "thaw_count", "apps"}
