"""In-process end-to-end tests for the serve control plane.

A real :class:`SimulationServer` runs on an ephemeral port in a
background thread; a real :class:`ServeClient` talks to it over TCP.
The central claim under test is the ISSUE's acceptance bar: a served
result is bit-identical to the same request run directly through
``run_scenario``, and a duplicate submission is answered from the
content-addressed cache without touching a worker.
"""

import pytest

from repro.devices.specs import get_device
from repro.experiments.scenarios import BgCase, run_scenario
from repro.serve.client import QueueFullError, ServeClient, ServeError
from repro.serve.http import ServeConfig
from repro.serve.testing import ServerThread

# Short but non-trivial: ~75 ms of wall clock per simulation.
REQUEST = {
    "scenario": "S-A",
    "policy": "LRU+CFS",
    "bg_case": "bg-null",
    "seconds": 2.0,
    "seed": 7,
}


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServeConfig(port=0, workers=1)) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.base_url)


def _direct_result() -> dict:
    return run_scenario(
        REQUEST["scenario"],
        policy=REQUEST["policy"],
        spec=get_device("P20"),
        bg_case=BgCase.NULL,
        seconds=REQUEST["seconds"],
        seed=REQUEST["seed"],
    ).to_dict()


def test_duplicate_pair_is_bit_identical_and_cache_served(client):
    first = client.run(REQUEST, timeout_s=120.0)
    assert first["state"] == "done", first.get("error")
    assert first["cache_hit"] is False

    second = client.run(REQUEST, timeout_s=120.0)
    assert second["state"] == "done"
    assert second["cache_hit"] is True
    assert second["cache_key"] == first["cache_key"]

    # Bit-identical: served == served == direct CLI-style run.
    direct = _direct_result()
    assert first["result"] == direct
    assert second["result"] == direct

    # The counters prove the second answer skipped the workers: two
    # submissions, one cache hit, exactly one simulation executed.
    stats = client.stats()
    assert stats["jobs"]["submitted_total"] >= 2
    assert stats["jobs"]["cache_hits"] >= 1
    assert stats["cache"]["hits"] >= 1
    assert stats["workers"]["completed_total"] == 1
    assert stats["workers"]["pool_size"] == 1


def test_get_returns_terminal_snapshot(client):
    job = client.run(REQUEST, timeout_s=120.0)
    again = client.get(job["id"])
    assert again["state"] == "done"
    assert again["result"] == job["result"]


def test_events_stream_replays_to_terminal(client):
    job = client.run(REQUEST, timeout_s=120.0)  # cached by now
    kinds = [event for event, _ in client.events(job["id"], timeout_s=30.0)]
    assert kinds[-1] == "done"


def test_unknown_policy_rejected_with_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit({"scenario": "S-A", "policy": "SmartSwap",
                       "seconds": 2.0})
    assert excinfo.value.status == 400
    assert "SmartSwap" in str(excinfo.value)


def test_unknown_scenario_rejected_with_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit({"scenario": "no-such-scenario", "seconds": 2.0})
    assert excinfo.value.status == 400


def test_unknown_field_rejected_with_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit({"scenario": "S-A", "secnds": 2.0})
    assert excinfo.value.status == 400
    assert "unknown request field" in str(excinfo.value)


def test_unknown_job_id_is_404(client):
    with pytest.raises(ServeError) as excinfo:
        client.get("run-does-not-exist")
    assert excinfo.value.status == 404


def test_healthz_reports_ok(client):
    doc = client.healthz()
    assert doc["status"] == "ok"
    assert doc["uptime_s"] >= 0


def test_queue_backpressure_returns_429():
    # A dedicated tiny server: depth 1 plus one busy worker means the
    # third concurrent submission must be told to back off.
    config = ServeConfig(port=0, workers=1, queue_depth=1)
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        # Distinct seeds so nothing is answered from cache; long enough
        # that the first is still running when the burst lands.
        jobs, rejected = [], 0
        for seed in range(100, 112):
            try:
                jobs.append(client.submit({
                    "scenario": "S-A", "bg_case": "bg-null",
                    "seconds": 8.0, "seed": seed,
                }))
            except QueueFullError:
                rejected += 1
        assert rejected >= 1, "burst never hit the depth bound"
        stats = client.stats()
        assert stats["queue"]["capacity"] == 1
        # Admitted jobs still complete.
        for job in jobs:
            final = client.wait(job["id"], timeout_s=120.0)
            assert final["state"] == "done", final.get("error")
