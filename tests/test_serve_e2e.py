"""In-process end-to-end tests for the serve control plane.

A real :class:`SimulationServer` runs on an ephemeral port in a
background thread; a real :class:`ServeClient` talks to it over TCP.
The central claim under test is the ISSUE's acceptance bar: a served
result is bit-identical to the same request run directly through
``run_scenario``, and a duplicate submission is answered from the
content-addressed cache without touching a worker.
"""

import pytest

from repro.devices.specs import get_device
from repro.experiments.scenarios import BgCase, run_scenario
from repro.serve.client import QueueFullError, ServeClient, ServeError
from repro.serve.http import ServeConfig
from repro.serve.testing import ServerThread

# Short but non-trivial: ~75 ms of wall clock per simulation.
REQUEST = {
    "scenario": "S-A",
    "policy": "LRU+CFS",
    "bg_case": "bg-null",
    "seconds": 2.0,
    "seed": 7,
}


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServeConfig(port=0, workers=1)) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.base_url)


def _direct_result() -> dict:
    return run_scenario(
        REQUEST["scenario"],
        policy=REQUEST["policy"],
        spec=get_device("P20"),
        bg_case=BgCase.NULL,
        seconds=REQUEST["seconds"],
        seed=REQUEST["seed"],
    ).to_dict()


def test_duplicate_pair_is_bit_identical_and_cache_served(client):
    first = client.run(REQUEST, timeout_s=120.0)
    assert first["state"] == "done", first.get("error")
    assert first["cache_hit"] is False

    second = client.run(REQUEST, timeout_s=120.0)
    assert second["state"] == "done"
    assert second["cache_hit"] is True
    assert second["cache_key"] == first["cache_key"]

    # Bit-identical: served == served == direct CLI-style run.
    direct = _direct_result()
    assert first["result"] == direct
    assert second["result"] == direct

    # The counters prove the second answer skipped the workers: two
    # submissions, one cache hit, exactly one simulation executed.
    stats = client.stats()
    assert stats["jobs"]["submitted_total"] >= 2
    assert stats["jobs"]["cache_hits"] >= 1
    assert stats["cache"]["hits"] >= 1
    assert stats["workers"]["completed_total"] == 1
    assert stats["workers"]["pool_size"] == 1


def test_get_returns_terminal_snapshot(client):
    job = client.run(REQUEST, timeout_s=120.0)
    again = client.get(job["id"])
    assert again["state"] == "done"
    assert again["result"] == job["result"]


def test_events_stream_replays_to_terminal(client):
    job = client.run(REQUEST, timeout_s=120.0)  # cached by now
    kinds = [event for event, _ in client.events(job["id"], timeout_s=30.0)]
    assert kinds[-1] == "done"


def test_unknown_policy_rejected_with_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit({"scenario": "S-A", "policy": "SmartSwap",
                       "seconds": 2.0})
    assert excinfo.value.status == 400
    assert "SmartSwap" in str(excinfo.value)


def test_unknown_scenario_rejected_with_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit({"scenario": "no-such-scenario", "seconds": 2.0})
    assert excinfo.value.status == 400


def test_unknown_field_rejected_with_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit({"scenario": "S-A", "secnds": 2.0})
    assert excinfo.value.status == 400
    assert "unknown request field" in str(excinfo.value)


def test_unknown_job_id_is_404(client):
    with pytest.raises(ServeError) as excinfo:
        client.get("run-does-not-exist")
    assert excinfo.value.status == 404


def test_healthz_reports_ok(client):
    doc = client.healthz()
    assert doc["status"] == "ok"
    assert doc["uptime_s"] >= 0


def test_metrics_scrape_is_valid_prometheus(client):
    from repro.obs.metrics import validate_exposition

    client.run(REQUEST, timeout_s=120.0)  # ensure at least one job ran
    text = client.metrics_text()
    types = validate_exposition(text)
    # The core serve families, with correct types.
    assert types["repro_serve_jobs_submitted_total"] == "counter"
    assert types["repro_serve_cache_evictions_total"] == "counter"
    assert types["repro_serve_queue_wait_seconds"] == "histogram"
    assert types["repro_serve_exec_seconds"] == "histogram"
    assert types["repro_serve_e2e_seconds"] == "histogram"
    assert types["repro_process_rss_bytes"] == "gauge"
    # Histograms carry the full _bucket/_sum/_count shape with labels.
    assert 'repro_serve_e2e_seconds_bucket{priority_class="normal",le="+Inf"}' in text
    assert 'repro_serve_cache_hits_total{tier="memory"}' in text
    assert 'repro_serve_cache_hits_total{tier="disk"}' in text
    # A live RSS sample made it into the scrape.
    rss_line = next(
        line for line in text.splitlines()
        if line.startswith("repro_process_rss_bytes ")
    )
    assert float(rss_line.split()[1]) > 0


def test_stats_reports_latency_memory_tenants_recent(client):
    client.run(REQUEST, timeout_s=120.0)
    stats = client.stats()

    latency = stats["latency"]
    assert set(latency) == {"queue_wait_s", "exec_s", "e2e_s"}
    for name in ("queue_wait_s", "exec_s", "e2e_s"):
        assert latency[name]["normal"]["count"] >= 1
        doc = latency[name]["normal"]
        assert doc["p50"] <= doc["p95"] <= doc["p99"] <= doc["max"] * 1.001

    memory = stats["memory"]
    assert memory["rss_bytes"] > 0
    assert "tracemalloc" in memory
    assert memory["cache_memory_bytes"] >= 0
    assert memory["cache_budget_bytes"] is None or (
        memory["cache_memory_bytes"] <= memory["cache_budget_bytes"]
    )

    # Tier-split cache counters surface in /v1/stats.
    cache = stats["cache"]
    assert {"memory_hits", "disk_hits", "evictions",
            "memory_bytes"} <= set(cache)
    assert cache["hits"] == cache["memory_hits"] + cache["disk_hits"]

    tenants = stats["tenants"]
    assert "default" in tenants
    doc = tenants["default"]
    assert {"rogue_score", "queue_share", "exec_share", "submit_share",
            "failure_rate", "submitted"} <= set(doc)
    assert 0.0 <= doc["rogue_score"] <= 1.0

    recent = stats["recent"]
    assert recent, "recent runs list is empty"
    assert {"id", "state", "tenant", "priority", "scenario"} <= set(recent[0])


def test_completed_job_snapshot_carries_closed_spans(client):
    job = client.submit({**REQUEST, "seed": 31})
    final = client.wait(job["id"], timeout_s=120.0)
    assert final["state"] == "done"
    spans = final["spans"]
    assert spans["queue_wait_s"] >= 0
    assert spans["exec_s"] > 0
    assert spans["store_s"] >= 0
    assert spans["e2e_s"] >= spans["exec_s"]
    # Raw timestamps are ordered: enqueue <= dispatch <= start <= finish.
    assert (final["enqueued_at"] <= final["dispatched_at"]
            <= final["started_at"] <= final["finished_at"])


def test_tenant_label_flows_into_stats(client):
    client.run({**REQUEST, "seed": 32}, timeout_s=120.0, tenant="team-red")
    stats = client.stats()
    assert stats["tenants"]["team-red"]["submitted"] >= 1
    tenant_of = {doc["id"]: doc["tenant"] for doc in stats["recent"]}
    assert "team-red" in tenant_of.values()


def test_bad_tenant_rejected_with_400(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit({**REQUEST, "seed": 33}, tenant="x" * 65)
    assert excinfo.value.status == 400


def test_sse_keepalive_comment_frames():
    """An idle follower receives `: ping` comment frames (satellite 2)."""
    import http.client as http_client

    config = ServeConfig(port=0, workers=1, sse_keepalive_s=0.2)
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        # The single worker is pinned by a long blocker, so the watched
        # job stays queued and its stream stays quiet — every frame
        # after "queued" must be a keepalive, no matter how fast the
        # simulator runs.
        blocker = client.submit({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 120.0, "seed": 40,
        })
        job = client.submit({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 2.0, "seed": 41,
        })
        conn = http_client.HTTPConnection(
            client.host, client.port, timeout=30.0
        )
        try:
            conn.request("GET", f"/v1/runs/{job['id']}/events")
            response = conn.getresponse()
            assert response.status == 200
            pings = 0
            for _ in range(200):
                line = response.readline().decode("utf-8").rstrip("\n")
                if line.startswith(": ping"):
                    pings += 1
                    if pings >= 2:
                        break
            assert pings >= 2, "no keepalive comment frames seen"
        finally:
            conn.close()
        for run_id in (job["id"], blocker["id"]):
            try:
                client.cancel(run_id)
            except ServeError:
                pass  # already running (409); shutdown drain finishes it
        scrape = client.metrics_text()
        keepalive_line = next(
            line for line in scrape.splitlines()
            if line.startswith("repro_serve_sse_keepalives_total")
        )
        assert float(keepalive_line.split()[1]) >= 2


def test_cache_budget_enforced_end_to_end():
    """A tiny budget forces evictions while answers stay correct."""
    config = ServeConfig(port=0, workers=1, cache_budget_bytes=2048)
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        results = {}
        for seed in range(50, 56):
            final = client.run({
                "scenario": "S-A", "bg_case": "bg-null",
                "seconds": 2.0, "seed": seed,
            }, timeout_s=120.0)
            assert final["state"] == "done", final.get("error")
            results[seed] = final["result"]
        stats = client.stats()
        cache = stats["cache"]
        assert cache["memory_budget_bytes"] == 2048
        assert cache["memory_bytes"] <= 2048
        assert cache["evictions"] > 0
        # Resubmitting an evicted request still returns the identical
        # result (disk tier or recompute — content address guarantees it).
        final = client.run({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 2.0, "seed": 50,
        }, timeout_s=120.0)
        assert final["result"] == results[50]


def test_queue_backpressure_returns_429():
    # A dedicated tiny server: depth 1 plus one busy worker means the
    # third concurrent submission must be told to back off.
    config = ServeConfig(port=0, workers=1, queue_depth=1)
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        # Distinct seeds so nothing is answered from cache; long enough
        # that the first is still running when the burst lands.
        jobs, rejected = [], 0
        for seed in range(100, 112):
            try:
                jobs.append(client.submit({
                    "scenario": "S-A", "bg_case": "bg-null",
                    "seconds": 8.0, "seed": seed,
                }))
            except QueueFullError:
                rejected += 1
        assert rejected >= 1, "burst never hit the depth bound"
        stats = client.stats()
        assert stats["queue"]["capacity"] == 1
        # Admitted jobs still complete.
        for job in jobs:
            final = client.wait(job["id"], timeout_s=120.0)
            assert final["state"] == "done", final.get("error")


# ----------------------------------------------------------------------
# HTTP hardening: method/status correctness on malformed traffic
# ----------------------------------------------------------------------
def test_non_get_on_events_route_is_405(client):
    import http.client as http_client

    job = client.run(REQUEST, timeout_s=120.0)
    for method in ("POST", "DELETE", "PUT"):
        conn = http_client.HTTPConnection(client.host, client.port, timeout=10.0)
        try:
            conn.request(method, f"/v1/runs/{job['id']}/events")
            response = conn.getresponse()
            response.read()
            assert response.status == 405, method
        finally:
            conn.close()


def _raw_exchange(client, payload: bytes) -> bytes:
    import socket

    with socket.create_connection((client.host, client.port), timeout=10.0) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def test_malformed_content_length_is_400_not_500(client):
    raw = _raw_exchange(
        client,
        b"POST /v1/runs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    )
    assert raw.startswith(b"HTTP/1.1 400 "), raw[:60]
    assert b"Content-Length" in raw


def test_negative_content_length_is_400(client):
    raw = _raw_exchange(
        client,
        b"POST /v1/runs HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
    )
    assert raw.startswith(b"HTTP/1.1 400 "), raw[:60]


def test_over_long_header_line_is_400_not_500(client):
    raw = _raw_exchange(
        client,
        b"GET /v1/healthz HTTP/1.1\r\nX-Junk: " + b"a" * 200_000 + b"\r\n\r\n",
    )
    assert raw.startswith(b"HTTP/1.1 400 "), raw[:60]


def test_truncated_body_is_400(client):
    raw = _raw_exchange(
        client,
        b"POST /v1/runs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{}",
    )
    assert raw.startswith(b"HTTP/1.1 400 "), raw[:60]


def test_oversized_body_is_413(client):
    raw = _raw_exchange(
        client,
        b"POST /v1/runs HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n",
    )
    assert raw.startswith(b"HTTP/1.1 413 "), raw[:60]


def test_out_of_range_priority_is_400(client):
    for bad in (-1, 100, 10**9):
        with pytest.raises(ServeError) as excinfo:
            client.submit({**REQUEST}, priority=bad)
        assert excinfo.value.status == 400
        assert "priority" in str(excinfo.value)
    # The bounds themselves are valid.
    for ok in (0, 99):
        job = client.submit({**REQUEST}, priority=ok)
        assert job["priority"] == ok


# ----------------------------------------------------------------------
# Stats/metrics consistency (one accounting path)
# ----------------------------------------------------------------------
def test_stats_totals_exactly_match_metrics_counters(client):
    import time

    from repro.bench.soak import check_consistency

    client.run(REQUEST, timeout_s=120.0)
    client.run({**REQUEST, "seed": 61}, timeout_s=120.0)
    # Quiesce so both scrapes read settled ledgers.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        stats = client.stats()
        if stats["queue"]["depth"] == 0 and stats["jobs"]["running"] == 0:
            break
        time.sleep(0.05)
    failures = check_consistency(client.stats(), client.metrics_text())
    assert failures == [], failures


# ----------------------------------------------------------------------
# Retention: tombstones, 410s, and the recent ring
# ----------------------------------------------------------------------
def test_evicted_job_answers_410_with_tombstone_summary():
    config = ServeConfig(
        port=0, workers=1,
        job_budget_bytes=1,       # evict every terminal job immediately
        job_min_retention_s=0.0,
    )
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        # A 1-byte budget can evict the run before a poll ever sees the
        # terminal snapshot, so completion is observed via the SSE
        # stream (opened while the job is still live) instead of run().
        job = client.submit({**REQUEST, "seconds": 20.0, "seed": 70})
        kinds = [kind for kind, _ in client.events(job["id"], timeout_s=120.0)]
        assert kinds[-1] == "done"

        # GET: 410 Gone carrying the tombstone, never 404.
        with pytest.raises(ServeError) as excinfo:
            client.get(job["id"])
        assert excinfo.value.status == 410
        doc = excinfo.value.body
        assert doc["id"] == job["id"]
        assert doc["evicted"] is True
        assert doc["state"] == "done"
        assert doc["cache_key"] == job["cache_key"]
        assert "evicted from the retention window" in doc["error"]

        # DELETE and the SSE route see the same 410.
        with pytest.raises(ServeError) as excinfo:
            client.cancel(job["id"])
        assert excinfo.value.status == 410
        with pytest.raises(ServeError) as excinfo:
            list(client.events(job["id"], timeout_s=10.0))
        assert excinfo.value.status == 410

        # A genuinely unknown id is still 404.
        with pytest.raises(ServeError) as excinfo:
            client.get("run-never-existed")
        assert excinfo.value.status == 404

        # The fleet console's recent ring tolerates evicted entries.
        stats = client.stats()
        assert stats["retention"]["evicted_total"] >= 1
        recent = {doc["id"]: doc for doc in stats["recent"]}
        assert recent[job["id"]]["evicted"] is True
        assert recent[job["id"]]["state"] == "done"


def test_job_table_budget_bounds_retained_bytes():
    config = ServeConfig(
        port=0, workers=1,
        job_budget_bytes=16 * 1024,
        job_min_retention_s=0.0,
    )
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        client.run({**REQUEST, "seed": 71}, timeout_s=120.0)
        for _ in range(40):  # cache hits: cheap terminal jobs
            client.submit({**REQUEST, "seed": 71})
        stats = client.stats()
        retention = stats["retention"]
        assert retention["budget_bytes"] == 16 * 1024
        assert retention["terminal_bytes"] <= 16 * 1024
        assert retention["evicted_total"] > 0
        # Tombstone gauges flow into /metrics too.
        from repro.obs.metrics import family_total, parse_samples
        samples = parse_samples(client.metrics_text())
        assert (
            family_total(samples, "repro_serve_jobs_evicted_total")
            == retention["evicted_total"]
        )
        assert (
            samples["repro_serve_job_table_bytes"]
            == retention["terminal_bytes"]
        )


# ----------------------------------------------------------------------
# Event-list cap + SSE dropped_events marker
# ----------------------------------------------------------------------
def test_sse_follower_sees_dropped_events_marker():
    config = ServeConfig(port=0, workers=1, max_events_per_job=4)
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        # Dense progress sampling emits far more than 4 events.
        job = client.submit(
            {**REQUEST, "seed": 72}, progress_interval_ms=10.0
        )
        final = client.wait(job["id"], timeout_s=120.0)
        assert final["state"] == "done"
        assert final["events_dropped"] > 0

        events = list(client.events(job["id"], timeout_s=30.0))
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "dropped_events"
        assert kinds[-1] == "done"
        marker = events[0][1]
        assert marker["dropped"] > 0
        assert marker["total_dropped"] >= marker["dropped"]
        # The replayed tail fits the cap: marker + at most 4 retained.
        assert len(events) <= 5

        stats = client.stats()
        assert stats["jobs"]["events_dropped_total"] > 0


# ----------------------------------------------------------------------
# Worker-slot accounting across deadline timeouts
# ----------------------------------------------------------------------
def test_timed_out_job_cannot_oversubscribe_the_worker():
    import time

    config = ServeConfig(port=0, workers=1)
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        # Several seconds of wall clock (~260 sim-s/wall-s), but a 0.5s
        # deadline: the await is cancelled while the pool process keeps
        # simulating.
        doomed = client.submit({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 2000.0, "seed": 80,
        }, timeout_s=0.5)
        follower = client.submit({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 2.0, "seed": 81,
        })
        final = client.wait(doomed["id"], timeout_s=30.0)
        assert final["state"] in ("failed", "expired")
        assert "deadline exceeded" in final["error"]

        # While the abandoned attempt still occupies the pool, the slot
        # stays held: the follower must not be running.
        stats = client.stats()
        if stats["workers"]["abandoned"] == 1:
            assert stats["workers"]["busy"] == 1
            assert client.get(follower["id"])["state"] == "queued"

        # Once the attempt returns, the slot frees and the follower runs.
        final = client.wait(follower["id"], timeout_s=120.0)
        assert final["state"] == "done", final.get("error")
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            stats = client.stats()
            if stats["workers"]["abandoned"] == 0:
                break
            time.sleep(0.1)
        assert stats["workers"]["abandoned"] == 0
        assert stats["workers"]["abandoned_total"] >= 1
        assert stats["workers"]["busy"] == 0
