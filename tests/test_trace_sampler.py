"""Tier-2 tests for the time-series sampler and its exporters."""

import json

from repro.apps.catalog import catalog_apps
from repro.system import MobileSystem
from repro.trace.export import write_timeseries_csv, write_timeseries_json
from repro.trace.sampler import ALL_SERIES, Sampler
from repro.trace.tracer import Tracer

import pytest


def _small_system(tracer=None):
    system = MobileSystem(tracer=tracer)
    system.install_apps(catalog_apps())
    return system


def test_sampler_timestamps_align_to_interval():
    system = _small_system()
    # Start mid-interval: ticks must still land on exact multiples.
    system.run_ms(137.0)
    sampler = Sampler(system, interval_ms=50.0).start()
    system.run_ms(400.0)
    assert sampler.sample_count > 0
    assert all(t % 50.0 == 0.0 for t in sampler.times)
    assert sampler.times[0] == 150.0
    # Consecutive samples are exactly one interval apart.
    deltas = [b - a for a, b in zip(sampler.times, sampler.times[1:])]
    assert all(d == 50.0 for d in deltas)


def test_sampler_series_stay_aligned():
    system = _small_system()
    sampler = Sampler(system, interval_ms=100.0).start()
    record = system.launch("WhatsApp")
    system.run_until_complete(record, timeout_s=60.0)
    system.run(seconds=2.0)
    n = sampler.sample_count
    for name in ALL_SERIES:
        assert len(sampler.series[name]) == n, name
    data = sampler.as_dict()
    assert len(data["time_ms"]) == n
    # A launch allocates memory: the resident gauge must move.
    assert max(data["resident_pages"]) > 0


def test_sampler_emits_counter_tracks():
    tracer = Tracer()
    system = _small_system(tracer=tracer)
    sampler = Sampler(system, interval_ms=100.0).start()
    system.run(seconds=1.0)
    counters = {e.name for e in tracer.events if e.ph == "C"}
    assert {"free_mem", "fps", "cpu_utilization"} <= counters
    sampler.stop()
    before = len(tracer.events)
    system.run(seconds=1.0)
    after = [e for e in list(tracer.events)[before:] if e.ph == "C"]
    assert not after  # stop() really disarms the periodic tick


def test_sampler_rejects_bad_interval():
    system = _small_system()
    with pytest.raises(ValueError):
        Sampler(system, interval_ms=0.0)


def test_timeseries_csv_round_trip(tmp_path):
    system = _small_system()
    sampler = Sampler(system, interval_ms=100.0).start()
    system.run(seconds=1.0)
    path = tmp_path / "series.csv"
    rows = write_timeseries_csv(str(path), sampler)
    lines = path.read_text().strip().splitlines()
    assert lines[0].split(",") == Sampler.header()
    assert len(lines) == rows + 1
    assert rows == sampler.sample_count


def test_timeseries_json_round_trip(tmp_path):
    system = _small_system()
    sampler = Sampler(system, interval_ms=100.0).start()
    system.run(seconds=1.0)
    path = tmp_path / "series.json"
    count = write_timeseries_json(str(path), sampler)
    data = json.loads(path.read_text())
    assert set(data) == {"time_ms", *ALL_SERIES}
    assert len(data["time_ms"]) == count


def test_stop_flushes_final_partial_interval():
    system = _small_system()
    sampler = Sampler(system, interval_ms=100.0).start()
    record = system.launch("WhatsApp")
    system.run_until_complete(record, timeout_s=60.0)
    system.run_ms(1050.0 - (system.sim.now % 100.0))  # land mid-interval
    assert system.sim.now % 100.0 == 50.0
    before = sampler.sample_count
    sampler.stop()
    # The 50 ms tail between the last aligned tick and "now" is flushed
    # as one final sample instead of being dropped.
    assert sampler.sample_count == before + 1
    assert sampler.times[-1] == system.sim.now
    for name in ALL_SERIES:
        assert len(sampler.series[name]) == sampler.sample_count, name
    # Stopping again (or at an aligned instant) adds nothing.
    sampler.stop()
    assert sampler.sample_count == before + 1


def test_stop_at_aligned_instant_adds_no_duplicate():
    system = _small_system()
    sampler = Sampler(system, interval_ms=100.0).start()
    system.run_ms(500.0)
    count = sampler.sample_count
    sampler.stop()  # now == last tick time: nothing to flush
    assert sampler.sample_count == count


def test_sampler_exports_psi_series():
    from repro.trace.sampler import PSI_SERIES

    assert set(PSI_SERIES) <= set(ALL_SERIES)
    tracer = Tracer()
    system = _small_system(tracer=tracer)
    sampler = Sampler(system, interval_ms=100.0).start()
    record = system.launch("WhatsApp")
    system.run_until_complete(record, timeout_s=60.0)
    system.run(seconds=1.0)
    for name in PSI_SERIES:
        assert len(sampler.series[name]) == sampler.sample_count
        assert all(0.0 <= v <= 100.0 for v in sampler.series[name]), name
    counters = {e.name for e in tracer.events if e.ph == "C"}
    assert {"psi_memory", "psi_io", "psi_cpu"} <= counters
