"""Shared fixtures: a miniature device and kernel stack for unit tests."""

import pytest

from repro.devices.specs import DeviceSpec, StorageSpec
from repro.kernel.mm import MemoryManager
from repro.kernel.page import HeapKind, Page, PageKind
from repro.kernel.page_fault import PageFaultHandler
from repro.storage.flash import FlashDevice
from repro.storage.zram import ZramDevice

MIB = 1024 * 1024
GIB = 1024 * MIB


def make_small_spec(**overrides) -> DeviceSpec:
    """A tiny device: ~1024 managed pages, fast to exhaust in tests."""
    params = dict(
        name="TestPhone",
        soc="TestSoC",
        ram_bytes=128 * MIB,  # 2048 simulated pages at scale 16
        cores=4,
        android_version=10,
        storage=StorageSpec(kind="UFS", read_ms=0.5, write_ms=1.0),
        zram_bytes=32 * MIB,  # 512 simulated pages
        high_watermark_pages=96,
        memory_scale=16,
        system_reserved_frac=0.5,  # managed = 1024 pages
    )
    params.update(overrides)
    return DeviceSpec(**params)


class FakeClock:
    """Mutable simulated clock for kernel-level unit tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, ms: float) -> None:
        self.now += ms


@pytest.fixture
def small_spec() -> DeviceSpec:
    return make_small_spec()


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def mm(small_spec, clock) -> MemoryManager:
    zram = ZramDevice(
        capacity_pages=small_spec.zram_pages,
        compression_ratio=small_spec.zram_compression_ratio,
        compress_ms=small_spec.zram_compress_ms,
        decompress_ms=small_spec.zram_decompress_ms,
    )
    flash = FlashDevice(small_spec.storage)
    return MemoryManager(small_spec, zram, flash, clock=clock)


@pytest.fixture
def fault_handler(mm) -> PageFaultHandler:
    return PageFaultHandler(mm)


def make_pages(count: int, kind=PageKind.ANON, heap=HeapKind.NATIVE, owner=None,
               dirty=False):
    if kind is PageKind.FILE:
        return [Page(kind=kind, owner=owner, dirty=dirty) for _ in range(count)]
    return [Page(kind=kind, owner=owner, heap=heap) for _ in range(count)]
