"""Tests for the task freezer."""

from repro.kernel.freezer import (
    FREEZE_LATENCY_MS_PER_PROCESS,
    THAW_LATENCY_MS_PER_PROCESS,
    Freezer,
)


def test_freeze_marks_frozen():
    freezer = Freezer()
    latency = freezer.freeze(100)
    assert freezer.is_frozen(100)
    assert latency == FREEZE_LATENCY_MS_PER_PROCESS


def test_freeze_idempotent():
    freezer = Freezer()
    freezer.freeze(100)
    assert freezer.freeze(100) == 0.0
    assert freezer.freeze_count == 1


def test_thaw_restores_and_costs_latency():
    freezer = Freezer()
    freezer.freeze(100)
    latency = freezer.thaw(100)
    assert not freezer.is_frozen(100)
    assert latency == THAW_LATENCY_MS_PER_PROCESS


def test_thaw_unfrozen_is_free():
    freezer = Freezer()
    assert freezer.thaw(100) == 0.0
    assert freezer.thaw_count == 0


def test_observers_notified_on_transition():
    freezer = Freezer()
    events = []
    freezer.subscribe(lambda pid, frozen: events.append((pid, frozen)))
    freezer.freeze(5)
    freezer.thaw(5)
    assert events == [(5, True), (5, False)]


def test_forget_drops_silently():
    freezer = Freezer()
    events = []
    freezer.subscribe(lambda pid, frozen: events.append((pid, frozen)))
    freezer.freeze(5)
    events.clear()
    freezer.forget(5)
    assert not freezer.is_frozen(5)
    assert events == []


def test_frozen_pids_snapshot_is_copy():
    freezer = Freezer()
    freezer.freeze(1)
    snapshot = freezer.frozen_pids
    snapshot.add(2)
    assert not freezer.is_frozen(2)


def test_counts():
    freezer = Freezer()
    freezer.freeze(1)
    freezer.freeze(2)
    freezer.thaw(1)
    assert freezer.freeze_count == 2
    assert freezer.thaw_count == 1
