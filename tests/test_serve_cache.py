"""Tests for the content-addressed result cache (`repro.serve.cache`)."""

import json
import os

from repro.serve.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.serve.spec import RunRequest

KEY = RunRequest(scenario="S-A", seconds=2.0, seed=7).cache_key()
RESULT = {"fps": 45.75, "refault": 0}


def test_memory_round_trip_and_counters():
    cache = ResultCache()
    assert cache.get(KEY) is None
    cache.put(KEY, RESULT)
    assert KEY in cache
    assert cache.get(KEY) == RESULT
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["entries"] == 1


def test_contains_does_not_move_counters():
    cache = ResultCache()
    cache.put(KEY, RESULT)
    assert KEY in cache
    assert "0" * 64 not in cache
    assert cache.hits == 0 and cache.misses == 0


def test_disk_tier_survives_restart(tmp_path):
    first = ResultCache(cache_dir=str(tmp_path))
    first.put(KEY, RESULT)
    # A second instance (fresh memory tier) warms itself from disk.
    second = ResultCache(cache_dir=str(tmp_path))
    assert second.get(KEY) == RESULT
    assert second.disk_loads == 1
    # Now in memory: a second get doesn't re-read the file.
    assert second.get(KEY) == RESULT
    assert second.disk_loads == 1


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    path = os.path.join(str(tmp_path), f"{KEY}.json")
    with open(path, "w") as handle:
        handle.write("{torn json")
    assert cache.get(KEY) is None
    assert cache.misses == 1


def test_wrong_schema_version_is_a_miss(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    path = os.path.join(str(tmp_path), f"{KEY}.json")
    with open(path, "w") as handle:
        json.dump({
            "schema_version": CACHE_SCHEMA_VERSION + 1,
            "result": RESULT,
        }, handle)
    assert cache.get(KEY) is None


def test_disk_entry_shape(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    request_doc = {"scenario": "S-A"}
    cache.put(KEY, RESULT, request=request_doc)
    with open(os.path.join(str(tmp_path), f"{KEY}.json")) as handle:
        entry = json.load(handle)
    assert entry["schema_version"] == CACHE_SCHEMA_VERSION
    assert entry["key"] == KEY
    assert entry["result"] == RESULT
    assert entry["request"] == request_doc
    assert "cached_at" in entry
    # No temp files left behind.
    assert [p for p in os.listdir(str(tmp_path)) if p.endswith(".tmp")] == []


# ----------------------------------------------------------------------
# Memory-tier byte budget (size-aware LRU)
# ----------------------------------------------------------------------
def _key(i):
    return RunRequest(scenario="S-A", seconds=2.0, seed=i).cache_key()


# Entries carry a `cached_at` wall-clock stamp whose JSON length can
# jitter by a few bytes between puts, so budgets measured from a probe
# entry need a little slack to hold exactly N entries.
_SLACK = 64


def test_budget_evicts_least_recently_used_first():
    # Measure one entry's canonical cost, then budget for three.
    probe = ResultCache()
    probe.put(_key(0), RESULT)
    cost = probe.memory_bytes
    cache = ResultCache(memory_budget_bytes=3 * cost + _SLACK)
    for i in range(3):
        cache.put(_key(i), RESULT)
    assert cache.evictions == 0
    cache.put(_key(3), RESULT)  # over budget: coldest (_key(0)) goes
    assert cache.evictions == 1
    assert cache.get(_key(0)) is None
    assert cache.get(_key(1)) == RESULT
    assert cache.stats()["misses"] == 1


def test_get_refreshes_lru_recency():
    probe = ResultCache()
    probe.put(_key(0), RESULT)
    cost = probe.memory_bytes
    cache = ResultCache(memory_budget_bytes=2 * cost + _SLACK)
    cache.put(_key(0), RESULT)
    cache.put(_key(1), RESULT)
    cache.get(_key(0))  # now _key(1) is coldest
    cache.put(_key(2), RESULT)
    assert cache.get(_key(0)) == RESULT
    assert cache.get(_key(1)) is None


def test_memory_bytes_never_exceeds_budget():
    cache = ResultCache(memory_budget_bytes=1024)
    for i in range(50):
        cache.put(_key(i), {"fps": 45.75, "refault": i})
        assert cache.memory_bytes <= 1024
    assert cache.evictions > 0
    assert cache.stats()["memory_budget_bytes"] == 1024


def test_oversize_entry_is_never_admitted_to_memory(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path), memory_budget_bytes=64)
    big = {"trace": "x" * 4096}
    cache.put(KEY, big)
    assert cache.entries == 0
    assert cache.memory_bytes == 0
    assert cache.evictions == 1
    # Still served — from the disk tier.
    assert cache.get(KEY) == big
    assert cache.disk_hits == 1


def test_evicted_entry_reloads_from_disk_as_disk_hit(tmp_path):
    probe = ResultCache()
    probe.put(_key(0), RESULT)
    cost = probe.memory_bytes
    cache = ResultCache(cache_dir=str(tmp_path),
                        memory_budget_bytes=cost + _SLACK)
    cache.put(_key(0), RESULT)
    cache.put(_key(1), RESULT)  # evicts _key(0) from memory
    assert cache.evictions == 1
    assert cache.get(_key(0)) == RESULT  # disk tier recovers it
    stats = cache.stats()
    assert stats["disk_hits"] == 1
    assert stats["memory_hits"] == 0
    assert stats["hits"] == 1  # blended back-compat view


def test_tier_split_counters_in_stats(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    cache.put(KEY, RESULT)
    cache.get(KEY)                       # memory hit
    fresh = ResultCache(cache_dir=str(tmp_path))
    fresh.get(KEY)                       # disk hit
    fresh.get("0" * 64)                  # miss
    assert cache.stats()["memory_hits"] == 1
    stats = fresh.stats()
    assert stats["disk_hits"] == 1
    assert stats["memory_hits"] == 0
    assert stats["misses"] == 1
    assert stats["hits"] == 1


def test_unbounded_cache_never_evicts():
    cache = ResultCache()  # memory_budget_bytes=None
    for i in range(200):
        cache.put(_key(i % 100), RESULT)
    assert cache.evictions == 0
    assert cache.entries == 100


def test_registry_mirrors_cache_counters():
    from repro.obs.metrics import MetricsRegistry, validate_exposition

    registry = MetricsRegistry()
    cache = ResultCache(memory_budget_bytes=1024, registry=registry)
    cache.put(KEY, RESULT)
    cache.get(KEY)
    cache.get("0" * 64)
    text = registry.render()
    validate_exposition(text)
    assert 'repro_serve_cache_hits_total{tier="memory"} 1' in text
    assert 'repro_serve_cache_hits_total{tier="disk"} 0' in text
    assert "repro_serve_cache_misses_total 1" in text
    assert "repro_serve_cache_evictions_total 0" in text
    assert "repro_serve_cache_entries 1" in text


def test_soak_thousand_runs_stays_under_budget(tmp_path):
    """ISSUE acceptance: >= 1,000 served results against a small budget
    keep the memory tier under its cap, evictions advance, and every
    result read back (memory, disk, or recompute path) is bit-identical
    to what was stored."""
    budget = 16 * 1024
    cache = ResultCache(cache_dir=str(tmp_path), memory_budget_bytes=budget)
    docs = {}
    for i in range(1000):
        key = _key(i)
        doc = {"fps": 45.75 + i, "refault": i, "events": list(range(10))}
        docs[key] = doc
        cache.put(key, doc, request={"seed": i})
        assert cache.memory_bytes <= budget
    assert cache.evictions > 0
    assert cache.entries < 1000  # the budget actually bit
    # Every one of the 1,000 results is still served bit-identically.
    for key, doc in docs.items():
        got = cache.get(key)
        assert got == doc
        assert json.dumps(got, sort_keys=True) == json.dumps(
            doc, sort_keys=True
        )
    assert cache.memory_bytes <= budget
    stats = cache.stats()
    assert stats["memory_hits"] + stats["disk_hits"] == 1000
    assert stats["misses"] == 0
