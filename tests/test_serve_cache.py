"""Tests for the content-addressed result cache (`repro.serve.cache`)."""

import json
import os

from repro.serve.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.serve.spec import RunRequest

KEY = RunRequest(scenario="S-A", seconds=2.0, seed=7).cache_key()
RESULT = {"fps": 45.75, "refault": 0}


def test_memory_round_trip_and_counters():
    cache = ResultCache()
    assert cache.get(KEY) is None
    cache.put(KEY, RESULT)
    assert KEY in cache
    assert cache.get(KEY) == RESULT
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["entries"] == 1


def test_contains_does_not_move_counters():
    cache = ResultCache()
    cache.put(KEY, RESULT)
    assert KEY in cache
    assert "0" * 64 not in cache
    assert cache.hits == 0 and cache.misses == 0


def test_disk_tier_survives_restart(tmp_path):
    first = ResultCache(cache_dir=str(tmp_path))
    first.put(KEY, RESULT)
    # A second instance (fresh memory tier) warms itself from disk.
    second = ResultCache(cache_dir=str(tmp_path))
    assert second.get(KEY) == RESULT
    assert second.disk_loads == 1
    # Now in memory: a second get doesn't re-read the file.
    assert second.get(KEY) == RESULT
    assert second.disk_loads == 1


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    path = os.path.join(str(tmp_path), f"{KEY}.json")
    with open(path, "w") as handle:
        handle.write("{torn json")
    assert cache.get(KEY) is None
    assert cache.misses == 1


def test_wrong_schema_version_is_a_miss(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    path = os.path.join(str(tmp_path), f"{KEY}.json")
    with open(path, "w") as handle:
        json.dump({
            "schema_version": CACHE_SCHEMA_VERSION + 1,
            "result": RESULT,
        }, handle)
    assert cache.get(KEY) is None


def test_disk_entry_shape(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    request_doc = {"scenario": "S-A"}
    cache.put(KEY, RESULT, request=request_doc)
    with open(os.path.join(str(tmp_path), f"{KEY}.json")) as handle:
        entry = json.load(handle)
    assert entry["schema_version"] == CACHE_SCHEMA_VERSION
    assert entry["key"] == KEY
    assert entry["result"] == RESULT
    assert entry["request"] == request_doc
    assert "cached_at" in entry
    # No temp files left behind.
    assert [p for p in os.listdir(str(tmp_path)) if p.endswith(".tmp")] == []
