"""Tier-2 tests for Pressure Stall Information (repro.obs.psi)."""

import math

import pytest

from repro.apps.catalog import catalog_apps
from repro.obs.psi import (
    PSI_UPDATE_MS,
    PsiGroup,
    PsiMonitor,
    PsiTrigger,
    StallClock,
)
from repro.system import MobileSystem


# ----------------------------------------------------------------------
# StallClock: coverage semantics
# ----------------------------------------------------------------------
def test_stall_clock_disjoint_intervals_sum():
    clock = StallClock()
    clock.add(0.0, 100.0)
    clock.add(200.0, 250.0)
    assert clock.total(1000.0) == pytest.approx(150.0)


def test_stall_clock_overlap_merges_not_sums():
    clock = StallClock()
    clock.add(0.0, 100.0)
    clock.add(50.0, 120.0)  # overlaps: coverage is [0, 120)
    clock.add(119.0, 130.0)
    assert clock.total(1000.0) == pytest.approx(130.0)


def test_stall_clock_open_tail_clips_at_query_time():
    clock = StallClock()
    clock.add(100.0, 500.0)  # an I/O stall scheduled to end in the future
    assert clock.total(200.0) == pytest.approx(100.0)
    assert clock.total(300.0) == pytest.approx(200.0)
    assert clock.total(9999.0) == pytest.approx(400.0)


def test_stall_clock_never_exceeds_wall_clock():
    clock = StallClock()
    # Many overlapping stalls from different tasks within [0, 100).
    for start in range(0, 100, 5):
        clock.add(float(start), float(start) + 40.0)
    assert clock.total(100.0) <= 100.0
    assert clock.total(100.0) == pytest.approx(100.0)


def test_stall_clock_ignores_empty_and_inverted_intervals():
    clock = StallClock()
    clock.add(50.0, 50.0)
    clock.add(80.0, 20.0)
    assert clock.total(1000.0) == 0.0


# ----------------------------------------------------------------------
# EWMA windows against hand-computed values
# ----------------------------------------------------------------------
def test_psi_avg_windows_match_hand_computed_ewma():
    """One 500 ms stall in the first 1 s period, then idle.

    Kernel folding: avg += (1 - exp(-period/window)) * (ratio - avg).
    """
    t = {"now": 0.0}
    psi = PsiMonitor(clock=lambda: t["now"], update_ms=1000.0)
    psi.record("memory", 500.0, start=0.0)

    t["now"] = 1000.0
    psi.tick()
    line = psi.system.line("memory")
    a10 = 0.5 * (1.0 - math.exp(-1000.0 / 10_000.0))
    a60 = 0.5 * (1.0 - math.exp(-1000.0 / 60_000.0))
    a300 = 0.5 * (1.0 - math.exp(-1000.0 / 300_000.0))
    assert line.windows.avg10 == pytest.approx(a10, rel=1e-12)
    assert line.windows.avg60 == pytest.approx(a60, rel=1e-12)
    assert line.windows.avg300 == pytest.approx(a300, rel=1e-12)
    assert line.total_us(t["now"]) == 500_000

    # An idle period decays every window by exp(-period/window).
    t["now"] = 2000.0
    psi.tick()
    assert line.windows.avg10 == pytest.approx(a10 * math.exp(-0.1), rel=1e-12)
    assert line.windows.avg60 == pytest.approx(
        a60 * math.exp(-1000.0 / 60_000.0), rel=1e-12
    )


def test_psi_ratio_saturates_at_one():
    t = {"now": 0.0}
    psi = PsiMonitor(clock=lambda: t["now"], update_ms=1000.0)
    # Overlapping stalls cover the whole period; ratio must cap at 1.
    psi.record("io", 1000.0, start=0.0)
    psi.record("io", 900.0, start=100.0)
    t["now"] = 1000.0
    psi.tick()
    line = psi.system.line("io")
    assert line.windows.avg10 == pytest.approx(1.0 - math.exp(-0.1), rel=1e-12)


def test_pressure_file_format():
    t = {"now": 0.0}
    psi = PsiMonitor(clock=lambda: t["now"], update_ms=1000.0)
    psi.record("memory", 250.0, start=0.0, full=True)
    t["now"] = 1000.0
    psi.tick()
    text = psi.pressure_file("memory")
    some, full = text.strip().splitlines()
    assert some.startswith("some avg10=")
    assert full.startswith("full avg10=")
    assert "total=250000" in some  # µs
    assert "total=250000" in full


# ----------------------------------------------------------------------
# Full vs some, per-app groups
# ----------------------------------------------------------------------
def test_full_requires_flag_and_never_exceeds_some():
    t = {"now": 0.0}
    psi = PsiMonitor(clock=lambda: t["now"], update_ms=1000.0)
    psi.record("memory", 300.0, start=0.0)              # background stall
    psi.record("memory", 100.0, start=400.0, full=True)  # foreground-blocked
    t["now"] = 1000.0
    some = psi.system.line("memory").total_us(t["now"])
    full = psi.system.line("memory", "full").total_us(t["now"])
    assert some == 400_000
    assert full == 100_000
    assert full <= some


def test_per_uid_groups_are_lazy_and_independent():
    t = {"now": 0.0}
    psi = PsiMonitor(clock=lambda: t["now"], update_ms=1000.0)
    psi.record("io", 100.0, start=0.0)               # system only
    psi.record("io", 50.0, start=500.0, uid=10007)   # system + app
    assert set(psi.groups) == {10007}
    t["now"] = 1000.0
    assert psi.system.line("io").total_us(t["now"]) == 150_000
    assert psi.groups[10007].line("io").total_us(t["now"]) == 50_000


# ----------------------------------------------------------------------
# Triggers
# ----------------------------------------------------------------------
def test_trigger_fires_once_per_window():
    t = {"now": 0.0}
    psi = PsiMonitor(clock=lambda: t["now"], update_ms=500.0)
    events = []
    trigger = psi.add_trigger("memory", "some", threshold_ms=100.0,
                              window_ms=1000.0, callback=events.append)
    psi.record("memory", 400.0, start=0.0)
    t["now"] = 500.0
    psi.tick()  # 400 ms stall in window → fires
    assert len(events) == 1
    assert events[0].stall_ms >= 100.0
    psi.record("memory", 400.0, start=500.0)
    t["now"] = 1000.0
    psi.tick()  # still inside the rate-limit window → no second fire
    assert len(events) == 1
    psi.record("memory", 400.0, start=1000.0)
    t["now"] = 1500.0
    psi.tick()  # a full window has passed since the fire → fires again
    assert len(events) == 2
    assert trigger.fire_count == 2


def test_trigger_quiet_system_never_fires():
    t = {"now": 0.0}
    psi = PsiMonitor(clock=lambda: t["now"], update_ms=500.0)
    events = []
    psi.add_trigger("io", "some", threshold_ms=50.0, window_ms=1000.0,
                    callback=events.append)
    for step in range(1, 10):
        t["now"] = step * 500.0
        psi.tick()
    assert events == []


def test_trigger_validation():
    cb = lambda event: None  # noqa: E731
    with pytest.raises(ValueError):
        PsiTrigger("disk", "some", 10.0, 100.0, cb)
    with pytest.raises(ValueError):
        PsiTrigger("memory", "most", 10.0, 100.0, cb)
    with pytest.raises(ValueError):
        PsiTrigger("memory", "some", 200.0, 100.0, cb)  # threshold > window
    with pytest.raises(ValueError):
        PsiTrigger("memory", "some", 0.0, 100.0, cb)


def test_monitor_rejects_bad_update_period():
    with pytest.raises(ValueError):
        PsiMonitor(clock=lambda: 0.0, update_ms=0.0)


# ----------------------------------------------------------------------
# Integration: a real system under pressure produces sane PSI
# ----------------------------------------------------------------------
def test_system_under_pressure_accrues_memory_psi():
    system = MobileSystem(seed=7)
    system.install_apps(catalog_apps())
    for package in list(system.apps):
        record = system.launch(package)
        system.run_until_complete(record, timeout_s=240.0)
    system.run(seconds=5.0)

    now = system.sim.now
    mem_some = system.psi.system.line("memory").total_us(now)
    mem_full = system.psi.system.line("memory", "full").total_us(now)
    assert mem_some > 0  # the full catalog cannot fit without reclaim
    assert mem_full <= mem_some
    # Coverage invariant: stall time never exceeds wall-clock time.
    assert mem_some <= now * 1000.0
    # cpu has no system-level full time, as in Linux.
    assert system.psi.system.line("cpu", "full").total_us(now) == 0
    # The tick has been folding averages all along.
    assert system.psi.updates >= 4
    # Stalls were attributed to apps (memcg-style groups exist).
    assert system.psi.groups


def test_idle_system_has_zero_pressure():
    system = MobileSystem(seed=3)
    system.run(seconds=3.0)
    now = system.sim.now
    for resource in ("memory", "io"):
        assert system.psi.system.line(resource).total_us(now) == 0
    assert PsiGroup(PSI_UPDATE_MS).line("memory").total_us(now) == 0
