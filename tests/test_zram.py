"""Tests for the ZRAM compressed swap device."""

import pytest

from repro.storage.zram import ZramDevice, ZramFullError


def make_zram(capacity=8, ratio=2.0):
    return ZramDevice(capacity_pages=capacity, compression_ratio=ratio)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ZramDevice(capacity_pages=0)
    with pytest.raises(ValueError):
        ZramDevice(capacity_pages=4, compression_ratio=1.0)


def test_store_and_load_roundtrip():
    zram = make_zram()
    cost_store = zram.store(1)
    assert cost_store == zram.compress_ms
    assert zram.contains(1)
    cost_load = zram.load(1)
    assert cost_load == zram.decompress_ms
    assert not zram.contains(1)


def test_store_duplicate_slot_rejected():
    zram = make_zram()
    zram.store(1)
    with pytest.raises(ValueError):
        zram.store(1)


def test_load_empty_slot_rejected():
    with pytest.raises(KeyError):
        make_zram().load(42)


def test_capacity_enforced():
    zram = make_zram(capacity=2)
    zram.store(1)
    zram.store(2)
    with pytest.raises(ZramFullError):
        zram.store(3)
    assert zram.failed_stores == 1


def test_pool_pages_reflect_compression():
    zram = make_zram(capacity=10, ratio=2.0)
    for slot in range(4):
        zram.store(slot)
    assert zram.pool_pages() == pytest.approx(2.0)


def test_load_frees_slot_and_pool():
    zram = make_zram(capacity=2)
    zram.store(1)
    zram.store(2)
    zram.load(1)
    assert zram.has_room(1)
    zram.store(3)  # must not raise


def test_discard_drops_without_cost():
    zram = make_zram()
    zram.store(5)
    zram.discard(5)
    assert not zram.contains(5)
    zram.discard(5)  # idempotent


def test_counters():
    zram = make_zram()
    zram.store(1)
    zram.store(2)
    zram.load(1)
    assert zram.stores == 2
    assert zram.loads == 1
    zram.reset_stats()
    assert zram.stores == 0


def test_free_slots_accounting():
    zram = make_zram(capacity=5)
    assert zram.free_slots == 5
    zram.store(1)
    assert zram.free_slots == 4
    assert zram.stored_pages == 1
