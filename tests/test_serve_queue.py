"""Tests for the bounded priority job queue (`repro.serve.queue`)."""

import asyncio

import pytest

from repro.serve.queue import Job, JobQueue, JobState, QueueFull
from repro.serve.spec import RunRequest


def _job(job_id, priority=10, deadline_at=None, submitted_at=0.0):
    return Job(
        id=job_id,
        request=RunRequest(scenario="S-A", seconds=2.0),
        priority=priority,
        submitted_at=submitted_at,
        deadline_at=deadline_at,
    )


def _run(coro):
    return asyncio.run(coro)


def test_push_beyond_capacity_raises_queue_full():
    async def scenario():
        queue = JobQueue(maxsize=2)
        queue.push(_job("a"))
        queue.push(_job("b"))
        with pytest.raises(QueueFull, match="2/2"):
            queue.push(_job("c"))
        assert queue.stats()["depth"] == 2

    _run(scenario())


def test_pop_orders_by_priority_then_fifo():
    async def scenario():
        queue = JobQueue(maxsize=8)
        queue.push(_job("low-1", priority=20))
        queue.push(_job("high-1", priority=1))
        queue.push(_job("low-2", priority=20))
        queue.push(_job("high-2", priority=1))
        order = [(await queue.pop()).id for _ in range(4)]
        assert order == ["high-1", "high-2", "low-1", "low-2"]

    _run(scenario())


def test_cancel_queued_job_never_pops():
    async def scenario():
        queue = JobQueue(maxsize=8)
        queue.push(_job("keep"))
        victim = _job("drop")
        queue.push(victim)
        assert queue.cancel("drop") is True
        assert victim.state == JobState.CANCELLED
        assert queue.cancel("drop") is False  # already gone
        assert (await queue.pop()).id == "keep"
        queue.close()
        assert await queue.pop() is None
        assert queue.stats()["cancelled_total"] == 1

    _run(scenario())


def test_deadline_passed_jobs_expire_at_dequeue():
    fake_now = [100.0]

    async def scenario():
        queue = JobQueue(maxsize=8, clock=lambda: fake_now[0])
        stale = _job("stale", deadline_at=105.0, submitted_at=100.0)
        fresh = _job("fresh", deadline_at=200.0, submitted_at=100.0)
        queue.push(stale)
        queue.push(fresh)
        fake_now[0] = 110.0  # past stale's deadline, before fresh's
        popped = await queue.pop()
        assert popped.id == "fresh"
        assert stale.state == JobState.EXPIRED
        assert "deadline exceeded" in stale.error
        assert queue.stats()["expired_total"] == 1

    _run(scenario())


def test_pop_waits_for_push():
    async def scenario():
        queue = JobQueue(maxsize=8)

        async def pusher():
            await asyncio.sleep(0.01)
            queue.push(_job("late"))

        task = asyncio.ensure_future(pusher())
        job = await asyncio.wait_for(queue.pop(), timeout=2.0)
        await task
        return job.id

    assert _run(scenario()) == "late"


def test_close_drains_then_returns_none():
    async def scenario():
        queue = JobQueue(maxsize=8)
        queue.push(_job("last"))
        queue.close()
        assert (await queue.pop()).id == "last"
        assert await queue.pop() is None

    _run(scenario())


def test_cancel_all_sweeps_the_queue():
    async def scenario():
        queue = JobQueue(maxsize=8)
        for i in range(3):
            queue.push(_job(f"j{i}"))
        assert queue.cancel_all() == 3
        queue.close()
        assert await queue.pop() is None

    _run(scenario())


def test_queue_rejects_nonpositive_maxsize():
    with pytest.raises(ValueError):
        JobQueue(maxsize=0)


def test_job_snapshot_shape():
    job = _job("snap", priority=5)
    doc = job.snapshot()
    assert doc["id"] == "snap"
    assert doc["state"] == JobState.QUEUED
    assert doc["priority"] == 5
    assert doc["cache_key"] == job.request.cache_key()
    assert doc["request"]["scenario"] == "S-A"
    assert not job.terminal
