"""Tests for the bounded priority job queue (`repro.serve.queue`)."""

import asyncio

import pytest

from repro.serve.queue import (
    Job,
    JobQueue,
    JobState,
    QueueFull,
    priority_class,
)
from repro.serve.spec import RunRequest


def _job(job_id, priority=10, deadline_at=None, submitted_at=0.0):
    return Job(
        id=job_id,
        request=RunRequest(scenario="S-A", seconds=2.0),
        priority=priority,
        submitted_at=submitted_at,
        deadline_at=deadline_at,
    )


def _run(coro):
    return asyncio.run(coro)


def test_push_beyond_capacity_raises_queue_full():
    async def scenario():
        queue = JobQueue(maxsize=2)
        queue.push(_job("a"))
        queue.push(_job("b"))
        with pytest.raises(QueueFull, match="2/2"):
            queue.push(_job("c"))
        assert queue.stats()["depth"] == 2

    _run(scenario())


def test_pop_orders_by_priority_then_fifo():
    async def scenario():
        queue = JobQueue(maxsize=8)
        queue.push(_job("low-1", priority=20))
        queue.push(_job("high-1", priority=1))
        queue.push(_job("low-2", priority=20))
        queue.push(_job("high-2", priority=1))
        order = [(await queue.pop()).id for _ in range(4)]
        assert order == ["high-1", "high-2", "low-1", "low-2"]

    _run(scenario())


def test_cancel_queued_job_never_pops():
    async def scenario():
        queue = JobQueue(maxsize=8)
        queue.push(_job("keep"))
        victim = _job("drop")
        queue.push(victim)
        assert queue.cancel("drop") is True
        assert victim.state == JobState.CANCELLED
        assert queue.cancel("drop") is False  # already gone
        assert (await queue.pop()).id == "keep"
        queue.close()
        assert await queue.pop() is None
        assert queue.stats()["cancelled_total"] == 1

    _run(scenario())


def test_deadline_passed_jobs_expire_at_dequeue():
    fake_now = [100.0]

    async def scenario():
        queue = JobQueue(maxsize=8, clock=lambda: fake_now[0])
        stale = _job("stale", deadline_at=105.0, submitted_at=100.0)
        fresh = _job("fresh", deadline_at=200.0, submitted_at=100.0)
        queue.push(stale)
        queue.push(fresh)
        fake_now[0] = 110.0  # past stale's deadline, before fresh's
        popped = await queue.pop()
        assert popped.id == "fresh"
        assert stale.state == JobState.EXPIRED
        assert "deadline exceeded" in stale.error
        assert queue.stats()["expired_total"] == 1

    _run(scenario())


def test_pop_waits_for_push():
    async def scenario():
        queue = JobQueue(maxsize=8)

        async def pusher():
            await asyncio.sleep(0.01)
            queue.push(_job("late"))

        task = asyncio.ensure_future(pusher())
        job = await asyncio.wait_for(queue.pop(), timeout=2.0)
        await task
        return job.id

    assert _run(scenario()) == "late"


def test_close_drains_then_returns_none():
    async def scenario():
        queue = JobQueue(maxsize=8)
        queue.push(_job("last"))
        queue.close()
        assert (await queue.pop()).id == "last"
        assert await queue.pop() is None

    _run(scenario())


def test_cancel_all_sweeps_the_queue():
    async def scenario():
        queue = JobQueue(maxsize=8)
        for i in range(3):
            queue.push(_job(f"j{i}"))
        swept = queue.cancel_all()
        assert len(swept) == 3
        assert all(job.state == JobState.CANCELLED for job in swept)
        assert queue.cancelled_total == 3
        queue.close()
        assert await queue.pop() is None

    _run(scenario())


def test_queue_rejects_nonpositive_maxsize():
    with pytest.raises(ValueError):
        JobQueue(maxsize=0)


def test_job_snapshot_shape():
    job = _job("snap", priority=5)
    doc = job.snapshot()
    assert doc["id"] == "snap"
    assert doc["state"] == JobState.QUEUED
    assert doc["priority"] == 5
    assert doc["cache_key"] == job.request.cache_key()
    assert doc["request"]["scenario"] == "S-A"
    assert not job.terminal


# ----------------------------------------------------------------------
# Request-lifecycle spans and per-class latency accounting
# ----------------------------------------------------------------------
def test_priority_class_boundaries():
    assert priority_class(0) == "high"
    assert priority_class(9) == "high"
    assert priority_class(10) == "normal"
    assert priority_class(11) == "low"
    assert _job("j", priority=3).priority_class == "high"


def test_queue_wait_span_is_dispatch_minus_enqueue():
    fake_now = [100.0]

    async def scenario():
        queue = JobQueue(maxsize=8, clock=lambda: fake_now[0])
        job = _job("spanned", submitted_at=100.0)
        queue.push(job)
        assert job.enqueued_at == 100.0
        assert job.spans()["queue_wait_s"] is None  # still open
        fake_now[0] = 102.5
        popped = await queue.pop()
        assert popped is job
        assert job.dispatched_at == 102.5
        assert job.spans()["queue_wait_s"] == pytest.approx(2.5)
        # Snapshot carries the raw timestamps and derived spans.
        doc = job.snapshot()
        assert doc["enqueued_at"] == 100.0
        assert doc["dispatched_at"] == 102.5
        assert doc["spans"]["queue_wait_s"] == pytest.approx(2.5)
        assert doc["spans"]["exec_s"] is None

    _run(scenario())


def test_stats_reports_wait_percentiles_per_priority_class():
    fake_now = [0.0]

    async def scenario():
        queue = JobQueue(maxsize=16, clock=lambda: fake_now[0])
        queue.push(_job("h", priority=1))
        queue.push(_job("n", priority=10))
        fake_now[0] = 1.0
        await queue.pop()  # "h" waited 1s
        fake_now[0] = 4.0
        await queue.pop()  # "n" waited 4s
        stats = queue.stats()
        wait = stats["queue_wait_s"]
        assert set(wait) == {"high", "normal"}
        assert wait["high"]["count"] == 1
        assert wait["high"]["p50"] == pytest.approx(1.0, rel=0.1)
        assert wait["normal"]["p50"] == pytest.approx(4.0, rel=0.1)

    _run(scenario())


def test_cancelled_tombstones_do_not_pollute_wait_histogram():
    fake_now = [0.0]

    async def scenario():
        queue = JobQueue(maxsize=8, clock=lambda: fake_now[0])
        queue.push(_job("victim"))
        queue.push(_job("runner"))
        assert queue.cancel("victim") is True
        fake_now[0] = 1000.0  # a tombstone wait this long would wreck p99
        popped = await queue.pop()
        assert popped.id == "runner"
        wait = queue.stats()["queue_wait_s"]
        # Only the genuinely dispatched job was observed.
        assert wait["normal"]["count"] == 1
        assert wait["normal"]["max"] == pytest.approx(1000.0, rel=0.1)
        cancelled = queue._queued.get("victim")
        assert cancelled is None

    _run(scenario())


def test_expired_jobs_do_not_pollute_wait_histogram():
    fake_now = [0.0]

    async def scenario():
        queue = JobQueue(maxsize=8, clock=lambda: fake_now[0])
        queue.push(_job("stale", deadline_at=5.0))
        queue.push(_job("fresh"))
        fake_now[0] = 50.0
        popped = await queue.pop()
        assert popped.id == "fresh"
        assert queue.stats()["expired_total"] == 1
        wait = queue.stats()["queue_wait_s"]
        assert wait["normal"]["count"] == 1  # only "fresh"

    _run(scenario())


def test_queue_metrics_flow_into_shared_registry():
    from repro.obs.metrics import MetricsRegistry

    fake_now = [0.0]

    async def scenario():
        registry = MetricsRegistry()
        queue = JobQueue(maxsize=4, clock=lambda: fake_now[0],
                         registry=registry)
        queue.push(_job("a", priority=1))
        fake_now[0] = 0.25
        await queue.pop()
        text = registry.render()
        assert (
            'repro_serve_queue_enqueued_total{priority_class="high"} 1'
            in text
        )
        assert "repro_serve_queue_wait_seconds_bucket" in text
        assert "repro_serve_queue_depth 0" in text
        assert "repro_serve_queue_capacity 4" in text

    _run(scenario())


def test_expire_moves_stats_and_prometheus_counter_together():
    """One accounting path: every expiry bumps both ledgers equally."""
    from repro.obs.metrics import MetricsRegistry, family_total, parse_samples

    fake_now = [0.0]

    async def scenario():
        registry = MetricsRegistry()
        queue = JobQueue(maxsize=8, clock=lambda: fake_now[0],
                         registry=registry)
        # One dequeue-time expiry...
        queue.push(_job("stale", deadline_at=5.0))
        queue.push(_job("fresh"))
        fake_now[0] = 50.0
        assert (await queue.pop()).id == "fresh"
        # ...and one explicit expire() (the pre-dispatch path).
        late = _job("late", deadline_at=40.0)
        queue.expire(late, reason="deadline exceeded before dispatch")
        assert late.state == JobState.EXPIRED
        assert "before dispatch" in late.error
        samples = parse_samples(registry.render())
        assert queue.stats()["expired_total"] == 2
        assert family_total(samples, "repro_serve_queue_expired_total") == 2

    _run(scenario())


def test_expire_fires_on_expired_callback():
    fake_now = [0.0]
    seen = []

    async def scenario():
        queue = JobQueue(maxsize=8, clock=lambda: fake_now[0])
        queue.on_expired = seen.append
        queue.push(_job("stale", deadline_at=5.0))
        queue.push(_job("fresh"))
        fake_now[0] = 50.0
        await queue.pop()
        assert [job.id for job in seen] == ["stale"]
        assert seen[0].state == JobState.EXPIRED

    _run(scenario())


def test_expire_is_idempotent():
    async def scenario():
        queue = JobQueue(maxsize=8)
        job = _job("once", deadline_at=0.0)
        queue.expire(job)
        queue.expire(job)  # second arrival must not double-count
        assert queue.stats()["expired_total"] == 1

    _run(scenario())
