"""Tier-2 tests for the tracing subsystem (tracer, histogram, export)."""

import json

import pytest

from repro.system import MobileSystem
from repro.trace.export import (
    chrome_trace_document,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.trace.histogram import Histogram
from repro.trace.tracer import KERNEL_PID, Tracer


# ----------------------------------------------------------------------
# Disabled-by-default
# ----------------------------------------------------------------------
def test_tracing_disabled_by_default():
    system = MobileSystem()
    assert system.tracer is None
    assert system.sim.tracer is None
    assert system.mm.tracer is None
    assert system.kswapd.tracer is None
    assert system.fault_handler.tracer is None
    assert system.freezer.tracer is None
    assert system.sched.tracer is None


def test_untraced_run_emits_nothing():
    # A tracer constructed but never attached must stay empty after a
    # simulated workload: no hidden global registration anywhere.
    tracer = Tracer()
    baseline = len(tracer.events)
    system = MobileSystem()
    system.run(seconds=2.0)
    assert len(tracer.events) == baseline == 0
    assert system.sim.events_executed > 0


def test_traced_system_wires_all_hooks():
    tracer = Tracer()
    system = MobileSystem(tracer=tracer)
    assert system.mm.tracer is tracer
    assert system.kswapd.tracer is tracer
    assert system.fault_handler.tracer is tracer
    assert system.freezer.tracer is tracer
    assert system.sched.tracer is tracer
    assert system.sim.tracer is tracer
    # The clock is bound to simulated time.
    system.run(seconds=1.0)
    assert tracer.clock() == system.sim.now


# ----------------------------------------------------------------------
# Ring buffer
# ----------------------------------------------------------------------
def test_ring_buffer_drops_oldest_beyond_capacity():
    tracer = Tracer(capacity=4)
    for index in range(10):
        tracer.instant(f"e{index}")
    assert len(tracer.events) == 4
    assert tracer.events_emitted == 10
    assert tracer.dropped_events == 6
    assert [event.name for event in tracer.events] == ["e6", "e7", "e8", "e9"]


def test_ring_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


# ----------------------------------------------------------------------
# Span nesting / B-E pairing
# ----------------------------------------------------------------------
def test_span_nesting_matches_begin_end_pairing():
    tracer = Tracer()
    with tracer.span("outer", pid=5, tid=1):
        with tracer.span("inner", pid=5, tid=1):
            tracer.instant("leaf", pid=5, tid=1)
    sequence = [(event.ph, event.name) for event in tracer.events]
    assert sequence == [
        ("B", "outer"), ("B", "inner"), ("i", "leaf"),
        ("E", "inner"), ("E", "outer"),
    ]


def test_span_closes_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("guarded", pid=1, tid=1):
            raise RuntimeError("boom")
    assert [event.ph for event in tracer.events] == ["B", "E"]


def test_clock_drives_timestamps():
    now = {"t": 10.0}
    tracer = Tracer(clock=lambda: now["t"])
    tracer.begin("work", pid=1, tid=1)
    now["t"] = 25.0
    tracer.end("work", pid=1, tid=1)
    begin, end = tracer.events
    assert begin.ts == 10.0 and end.ts == 25.0


# ----------------------------------------------------------------------
# Typed tracepoints
# ----------------------------------------------------------------------
def test_counter_accepts_scalar_and_dict():
    tracer = Tracer()
    tracer.counter("fps", 58.0)
    tracer.counter("mem", {"free": 100, "used": 50})
    scalar, multi = tracer.events
    assert scalar.args == {"fps": 58.0}
    assert multi.args == {"free": 100, "used": 50}


def test_complete_carries_duration():
    tracer = Tracer()
    tracer.complete("reclaim", KERNEL_PID, 1, start_ms=5.0, dur_ms=3.5,
                    args={"reclaimed": 64})
    event = tracer.events[0]
    assert event.ph == "X" and event.ts == 5.0 and event.dur == 3.5


def test_flow_ids_are_unique():
    tracer = Tracer()
    first, second = tracer.new_flow_id(), tracer.new_flow_id()
    assert first != second
    tracer.flow_start("handoff", first, 1, 1)
    tracer.flow_end("handoff", first, 2, 1)
    start, end = tracer.events
    assert start.flow_id == end.flow_id == first


def test_engine_events_gated():
    tracer = Tracer()
    tracer.engine_event(1.0, lambda: None)
    assert len(tracer.events) == 0
    tracer.engine_events = True
    tracer.engine_event(2.0, lambda: None)
    assert len(tracer.events) == 1
    assert tracer.events[0].cat == "engine"


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_log_buckets():
    hist = Histogram(min_value=1.0, growth=2.0)
    for value in (0.5, 1.5, 3.0, 6.0, 100.0):
        hist.add(value)
    buckets = hist.buckets()
    assert hist.count == 5
    # 0.5 → bucket 0 [0,1); 1.5 → [1,2); 3 → [2,4); 6 → [4,8); 100 → [64,128)
    lows = [lo for lo, _hi, _count in buckets]
    assert lows == [0.0, 1.0, 2.0, 4.0, 64.0]


def test_histogram_percentiles_monotonic():
    hist = Histogram()
    for value in range(1, 101):
        hist.add(float(value))
    p50, p90, p99 = hist.percentile(50), hist.percentile(90), hist.percentile(99)
    assert p50 <= p90 <= p99 <= hist.max
    assert hist.percentile(0) == hist.min
    assert hist.percentile(100) == hist.max


def test_histogram_empty_and_validation():
    hist = Histogram()
    assert hist.percentile(50) == 0.0
    assert hist.summary()["p99"] == 0.0
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        Histogram(min_value=0.0)
    with pytest.raises(ValueError):
        Histogram(growth=1.0)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_export_round_trips_through_json(tmp_path):
    tracer = Tracer()
    tracer.register_process(1000, "com.example.app")
    tracer.register_thread(1000, 7, "RenderThread")
    with tracer.span("frame", pid=1000, tid=7):
        tracer.instant("refault", pid=1000, tid=0, args={"fg": True})
    tracer.counter("fps", 60)
    tracer.histogram("frame_ms").add(12.0)

    path = tmp_path / "trace.json"
    count = write_chrome_trace(str(path), tracer, extra_metadata={"seed": 1})
    document = json.loads(path.read_text())
    assert len(document["traceEvents"]) == count
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"]["seed"] == 1
    assert "frame_ms" in document["otherData"]["histograms"]


def test_export_metadata_maps_tracks():
    tracer = Tracer()
    tracer.register_process(1000, "com.example.app")
    tracer.register_thread(1000, 7, "RenderThread")
    events = chrome_trace_events(tracer)
    process_names = {
        event["pid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    thread_names = {
        (event["pid"], event["tid"]): event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert process_names[0] == "kernel"
    assert process_names[1000] == "com.example.app"
    assert thread_names[(1000, 7)] == "RenderThread"


def test_export_converts_ms_to_us():
    now = {"t": 2.5}
    tracer = Tracer(clock=lambda: now["t"])
    tracer.complete("slice", 1, 1, start_ms=2.5, dur_ms=1.25)
    document = chrome_trace_document(tracer)
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert slices[0]["ts"] == 2500.0
    assert slices[0]["dur"] == 1250.0


def test_export_is_json_serializable_after_real_run():
    tracer = Tracer(capacity=50_000)
    system = MobileSystem(tracer=tracer)
    from repro.apps.catalog import catalog_apps

    system.install_apps(catalog_apps())
    record = system.launch("WhatsApp")
    system.run_until_complete(record, timeout_s=60.0)
    system.run(seconds=3.0)
    document = chrome_trace_document(tracer)
    parsed = json.loads(json.dumps(document))
    phases = {event["ph"] for event in parsed["traceEvents"]}
    # Scheduler slices, launch async pair, and metadata must all be there.
    assert {"M", "X", "b", "e"} <= phases


# ----------------------------------------------------------------------
# Byte-budgeted ring (capacity_bytes)
# ----------------------------------------------------------------------
def test_byte_budget_sheds_oldest_events():
    tracer = Tracer(capacity_bytes=2000)
    for i in range(200):
        tracer.instant(f"ev-{i:03d}", args={"index": i})
    assert tracer.buffer_bytes <= 2000
    assert tracer.events_emitted == 200
    assert tracer.dropped_events > 0
    # The retained window is the newest suffix.
    names = [event.name for event in tracer.events]
    assert names == [f"ev-{200 - len(names) + i:03d}" for i in range(len(names))]


def test_byte_ledger_matches_event_costs():
    tracer = Tracer(capacity_bytes=100_000)
    for i in range(50):
        tracer.instant("ev", args={"i": i})
    assert tracer.buffer_bytes == sum(e.cost for e in tracer.events)


def test_count_and_byte_bounds_compose():
    # Tiny count bound, generous byte bound: the deque's maxlen drops
    # events, and the byte ledger must follow it down.
    tracer = Tracer(capacity=4, capacity_bytes=1 << 20)
    for i in range(20):
        tracer.instant("ev", args={"i": i})
    assert len(tracer.events) == 4
    assert tracer.buffer_bytes == sum(e.cost for e in tracer.events)
    assert tracer.dropped_events == 16


def test_byte_budget_keeps_newest_even_when_oversized():
    tracer = Tracer(capacity_bytes=64)
    tracer.instant("huge", args={"blob": "x" * 500})
    assert len(tracer.events) == 1  # never evict down to empty
    assert tracer.buffer_bytes > 64


def test_unbudgeted_tracer_charges_nothing():
    tracer = Tracer()
    tracer.instant("free", args={"i": 1})
    assert tracer.buffer_bytes == 0
    assert tracer.events[0].cost == 0


def test_byte_budget_validation():
    with pytest.raises(ValueError):
        Tracer(capacity_bytes=0)
    with pytest.raises(ValueError):
        Tracer(capacity_bytes=-5)
