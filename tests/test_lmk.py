"""Tests for the low-memory killer."""

import pytest

from repro.android.app import AppState
from repro.apps.catalog import get_profile
from repro.system import MobileSystem

from tests.conftest import make_small_spec

GIB = 1024 * 1024 * 1024


def staged_system(packages=("WhatsApp", "Skype", "PayPal"), ram=3 * GIB):
    system = MobileSystem(spec=make_small_spec(ram_bytes=ram), seed=9)
    for package in packages:
        system.install_app(get_profile(package))
        record = system.launch(package, drive_frames=False)
        assert system.run_until_complete(record, timeout_s=180)
    return system


def test_victim_is_highest_adj_cached_app():
    system = staged_system()
    victim = system.lmk.pick_victim()
    # WhatsApp was launched first -> oldest cached -> highest adj.
    assert victim is system.get_app("WhatsApp")


def test_foreground_never_picked():
    system = staged_system()
    fg = system.foreground_app
    for _ in range(2):
        killed = system.lmk.kill_one("test")
        assert killed is not fg
    assert system.lmk.pick_victim() is None  # only the FG app remains


def test_perceptible_apps_never_picked():
    system = staged_system()
    whatsapp = system.get_app("WhatsApp")
    skype = system.get_app("Skype")
    whatsapp.perceptible = True
    skype.perceptible = True
    assert system.lmk.pick_victim() is None


def test_kill_records_event():
    system = staged_system()
    killed = system.lmk.kill_one("unit-test")
    assert killed is not None
    assert system.lmk.kill_count == 1
    event = system.lmk.kills[0]
    assert event.package == killed.package
    assert event.reason == "unit-test"
    assert event.freed_pages > 0


def test_killed_app_fully_torn_down():
    system = staged_system()
    killed = system.lmk.kill_one("unit-test")
    assert killed.state is AppState.STOPPED
    assert not killed.alive
    assert killed.resident_pages() == 0


def test_kill_none_when_no_candidates():
    system = staged_system(packages=("WhatsApp",))
    assert system.lmk.kill_one("none") is None


def test_oom_triggers_lmk_under_impossible_demand():
    # A tiny device that cannot hold two apps: the second launch must
    # kill the first instead of failing.
    system = MobileSystem(spec=make_small_spec(ram_bytes=640 * 1024 * 1024),
                          seed=9)
    for package in ("WhatsApp", "WeChat"):
        system.install_app(get_profile(package))
        record = system.launch(package, drive_frames=False)
        system.run_until_complete(record, timeout_s=180)
        system.run(seconds=1.0)
    assert system.lmk.kill_count >= 1
    assert system.get_app("WeChat").alive


def test_psi_monitor_resets_outside_pressure():
    system = staged_system()
    system.run(seconds=5.0)
    assert system.lmk._pressured_seconds == 0
