"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_until_executes_in_order():
    sim = Simulator()
    order = []
    sim.schedule(30.0, lambda: order.append("c"))
    sim.schedule(10.0, lambda: order.append("a"))
    sim.schedule(20.0, lambda: order.append("b"))
    sim.run_until(100.0)
    assert order == ["a", "b", "c"]
    assert sim.now == 100.0


def test_same_timestamp_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(5.0, lambda t=tag: order.append(t))
    sim.run_until(5.0)
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(50.0, lambda: fired.append(1))
    sim.run_until(49.9)
    assert fired == []
    sim.run_until(50.0)
    assert fired == [1]


def test_clock_advances_to_event_time_during_execution():
    sim = Simulator()
    seen = []
    sim.schedule(12.5, lambda: seen.append(sim.now))
    sim.run_until(20.0)
    assert seen == [12.5]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_backwards_rejected():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    event = sim.schedule(10.0, lambda: fired.append(1))
    sim.cancel(event)
    sim.run_until(20.0)
    assert fired == []


def test_cancel_twice_is_harmless():
    sim = Simulator()
    event = sim.schedule(10.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    sim.run_until(20.0)


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(5.0, lambda: seen.append("second"))

    sim.schedule(10.0, first)
    sim.run_until(20.0)
    assert seen == ["first", "second"]


def test_periodic_fires_repeatedly():
    sim = Simulator()
    count = []
    sim.every(10.0, lambda: count.append(sim.now))
    sim.run_until(45.0)
    assert count == [10.0, 20.0, 30.0, 40.0]


def test_periodic_first_delay_override():
    sim = Simulator()
    count = []
    sim.every(10.0, lambda: count.append(sim.now), first_delay=3.0)
    sim.run_until(25.0)
    assert count == [3.0, 13.0, 23.0]


def test_periodic_stop_halts_firing():
    sim = Simulator()
    count = []
    handle = sim.every(10.0, lambda: count.append(1))
    sim.run_until(25.0)
    handle.stop()
    sim.run_until(100.0)
    assert count == [1, 1]


def test_periodic_stop_from_inside_callback():
    sim = Simulator()
    count = []
    handle = None

    def tick():
        count.append(1)
        if len(count) == 3:
            handle.stop()

    handle = sim.every(5.0, tick)
    sim.run_until(100.0)
    assert len(count) == 3


def test_periodic_zero_interval_rejected():
    with pytest.raises(SimulationError):
        Simulator().every(0.0, lambda: None)


def test_run_drains_heap():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2]


def test_run_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    sim.cancel(event)
    assert sim.pending_count() == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    sim.cancel(event)
    assert sim.peek_time() == 5.0


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run_until(2.0)
    assert sim.events_executed == 4


def test_pending_count_is_live_counter():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending_count() == 10
    sim.cancel(events[3])
    sim.cancel(events[3])  # double-cancel must not double-decrement
    assert sim.pending_count() == 9
    sim.run_until(5.0)  # executes events 1..5 except the cancelled one
    assert sim.pending_count() == 5
    sim.run()
    assert sim.pending_count() == 0


def test_cancel_after_execution_is_harmless():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run_until(1.5)
    sim.cancel(event)  # already executed
    assert sim.pending_count() == 1


def test_periodic_stop_keeps_count_exact():
    sim = Simulator()
    handle = sim.every(10.0, lambda: None)
    sim.run_until(35.0)
    assert sim.pending_count() == 1  # the armed next tick
    handle.stop()
    assert sim.pending_count() == 0


def test_heap_compaction_drops_cancelled_events():
    sim = Simulator()
    keep = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
    doomed = [sim.schedule(500.0 + i, lambda: None) for i in range(200)]
    for event in doomed:
        sim.cancel(event)
    # Cancelled events outnumbered live ones, so the heap was rebuilt
    # (compaction stops once the heap drops under COMPACT_MIN_HEAP).
    assert len(keep) <= len(sim._heap) < Simulator.COMPACT_MIN_HEAP
    assert sim.pending_count() == 10
    sim.run()
    assert sim.events_executed == 10


def test_compaction_preserves_order():
    sim = Simulator()
    fired = []
    events = [
        sim.schedule(float(100 - i), lambda i=i: fired.append(100 - i))
        for i in range(100)
    ]
    for event in events[::2]:
        sim.cancel(event)
    sim.run()
    assert fired == sorted(fired)
