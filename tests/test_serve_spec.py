"""Tests for the canonical run request (`repro.serve.spec`)."""

import json

import pytest

from repro.serve.spec import RunRequest


def test_round_trip_through_dict():
    request = RunRequest(
        scenario="S-B", policy="Ice", device="Nova7",
        bg_case="bg-memtester", bg_count=6, seconds=30.0,
        settle_s=2.0, seed=9,
    )
    assert RunRequest.from_dict(request.to_dict()) == request


def test_canonical_json_is_stable_and_sorted():
    request = RunRequest(scenario="S-A")
    doc = json.loads(request.canonical_json())
    assert list(doc) == sorted(doc)
    assert request.canonical_json() == request.canonical_json()


def test_number_type_normalization_gives_equal_keys():
    # `seconds=2` and `seconds=2.0` describe the same simulation and
    # must land on the same content address.
    a = RunRequest(scenario="S-A", seconds=2, seed=7)
    b = RunRequest(scenario="S-A", seconds=2.0, seed=7.0)
    assert a == b
    assert a.cache_key() == b.cache_key()


def test_every_field_change_changes_the_key():
    base = RunRequest(scenario="S-A")
    variants = [
        RunRequest(scenario="S-B"),
        RunRequest(scenario="S-A", policy="Ice"),
        RunRequest(scenario="S-A", device="Nova7"),
        RunRequest(scenario="S-A", bg_case="bg-null"),
        RunRequest(scenario="S-A", bg_count=3),
        RunRequest(scenario="S-A", seconds=61.0),
        RunRequest(scenario="S-A", settle_s=6.0),
        RunRequest(scenario="S-A", seed=43),
    ]
    keys = {base.cache_key()} | {v.cache_key() for v in variants}
    assert len(keys) == 1 + len(variants)


def test_cache_key_is_hex_sha256():
    key = RunRequest(scenario="S-A").cache_key()
    assert len(key) == 64
    int(key, 16)  # raises if not hex


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown request field"):
        RunRequest.from_dict({"scenario": "S-A", "secnds": 5})


def test_from_dict_requires_scenario():
    with pytest.raises(ValueError, match="scenario"):
        RunRequest.from_dict({"policy": "Ice"})


def test_from_dict_rejects_non_object():
    with pytest.raises(ValueError, match="JSON object"):
        RunRequest.from_dict(["S-A"])


@pytest.mark.parametrize("kwargs", [
    dict(scenario=""),
    dict(scenario="S-A", policy=""),
    dict(scenario="S-A", bg_case="bg-bogus"),
    dict(scenario="S-A", seconds=0),
    dict(scenario="S-A", settle_s=-1.0),
    dict(scenario="S-A", bg_count=-1),
])
def test_invalid_fields_rejected(kwargs):
    with pytest.raises(ValueError):
        RunRequest(**kwargs)


def test_known_scenario():
    assert RunRequest(scenario="S-A").known_scenario()
    assert not RunRequest(scenario="not-a-scenario").known_scenario()
