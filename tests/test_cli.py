"""Tests for the `python -m repro` CLI."""

import pytest

from repro.__main__ import main


def test_overhead_command(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "mapping table" in out
    assert "32768" in out


def test_scenario_command_runs(capsys):
    code = main([
        "scenario", "--scenario", "S-A", "--policy", "LRU+CFS",
        "--bg-case", "bg-null", "--seconds", "5", "--seed", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fps" in out and "LRU+CFS" in out


def test_compare_command_runs(capsys):
    code = main([
        "compare", "--scenario", "S-A", "--policies", "LRU+CFS",
        "--bg-case", "bg-null", "--seconds", "5",
    ])
    assert code == 0
    assert "fps" in capsys.readouterr().out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["scenario", "--policy", "SmartSwap"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
