"""Tests for the `python -m repro` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.policies.registry import available_policies


def test_overhead_command(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "mapping table" in out
    assert "32768" in out


def test_scenario_command_runs(capsys):
    code = main([
        "scenario", "--scenario", "S-A", "--policy", "LRU+CFS",
        "--bg-case", "bg-null", "--seconds", "5", "--seed", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fps" in out and "LRU+CFS" in out


def test_compare_command_runs(capsys):
    code = main([
        "compare", "--scenario", "S-A", "--policies", "LRU+CFS",
        "--bg-case", "bg-null", "--seconds", "5",
    ])
    assert code == 0
    assert "fps" in capsys.readouterr().out


def test_unknown_policy_rejected(capsys):
    code = main(["scenario", "--policy", "SmartSwap"])
    assert code == 2
    err = capsys.readouterr().err
    assert "SmartSwap" in err
    for name in available_policies():
        assert name in err


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_scenario_json_output(capsys):
    code = main([
        "scenario", "--scenario", "S-A", "--policy", "LRU+CFS",
        "--bg-case", "bg-null", "--seconds", "5", "--seed", "3", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "S-A"
    assert payload["policy"] == "LRU+CFS"
    for key in ("fps", "ria", "refault", "bg_refault_share", "lmk_kills"):
        assert key in payload


def test_compare_json_emits_one_object_per_run(capsys):
    code = main([
        "compare", "--scenario", "S-A", "--policies", "LRU+CFS,Ice",
        "--bg-case", "bg-null", "--seconds", "5", "--json",
    ])
    assert code == 0
    lines = capsys.readouterr().out.strip().splitlines()
    payloads = [json.loads(line) for line in lines]
    assert [p["policy"] for p in payloads] == ["LRU+CFS", "Ice"]


def test_compare_rejects_unknown_policy(capsys):
    code = main([
        "compare", "--scenario", "S-A", "--policies", "LRU+CFS,NoSuchPolicy",
        "--seconds", "5",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "NoSuchPolicy" in err
    for name in available_policies():
        assert name in err


def test_compare_rejects_empty_policy_list(capsys):
    code = main(["compare", "--policies", ",", "--seconds", "5"])
    assert code == 2
    assert "valid choices" in capsys.readouterr().err


def test_scenario_trace_out_writes_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "run.trace.json"
    series_path = tmp_path / "run.csv"
    code = main([
        "scenario", "--scenario", "S-A", "--policy", "Ice",
        "--seconds", "5", "--seed", "3",
        "--trace-out", str(trace_path),
        "--timeseries-out", str(series_path),
    ])
    assert code == 0
    document = json.loads(trace_path.read_text())
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"]["policy"] == "Ice"
    events = document["traceEvents"]
    names = {event["name"] for event in events}
    phases = {event["ph"] for event in events}
    assert {"M", "X", "C"} <= phases
    assert "free_mem" in names and "fps" in names
    assert series_path.read_text().startswith("time_ms,")


def test_compare_trace_out_is_per_policy(tmp_path, capsys):
    trace_path = tmp_path / "cmp.trace.json"
    code = main([
        "compare", "--scenario", "S-A", "--policies", "LRU+CFS,Ice",
        "--bg-case", "bg-null", "--seconds", "5",
        "--trace-out", str(trace_path),
    ])
    assert code == 0
    assert (tmp_path / "cmp.trace.LRU_CFS.json").exists()
    assert (tmp_path / "cmp.trace.Ice.json").exists()


def test_trace_command_runs(tmp_path, capsys):
    out_path = tmp_path / "ice.trace.json"
    code = main([
        "trace", "--scenario", "S-A", "--policy", "Ice",
        "--seconds", "5", "--out", str(out_path),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "fps" in captured.out
    assert "trace:" in captured.err
    document = json.loads(out_path.read_text())
    assert document["traceEvents"]


def test_dump_json_emits_proc_snapshot(capsys):
    assert main(["dump", "--scenario", "S-A", "--seconds", "2",
                 "--format", "json", "--seed", "5"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["meta"]["scenario"] == "S-A"
    assert doc["meta"]["seed"] == 5
    proc = doc["proc"]
    assert "meminfo" in proc and "vmstat" in proc
    for resource in ("memory", "io", "cpu"):
        for kind in ("some", "full"):
            line = proc["pressure"][resource][kind]
            assert set(line) == {"avg10", "avg60", "avg300", "total_us"}


def test_dump_text_selected_paths(capsys):
    assert main(["dump", "--scenario", "S-A", "--seconds", "2",
                 "--paths", "pressure/memory", "meminfo"]) == 0
    out = capsys.readouterr().out
    assert "==> pressure/memory <==" in out
    assert "some avg10=" in out
    assert "MemTotal:" in out


def test_watch_prints_sampled_rows(capsys):
    assert main(["watch", "--scenario", "S-A", "--seconds", "2",
                 "--every", "1"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert "mem.some" in lines[0]  # header
    assert "samples over" in out


def test_bench_smoke_writes_artifact(tmp_path, capsys):
    out_path = tmp_path / "BENCH_ci.json"
    assert main(["bench", "--smoke", "--policies", "LRU+CFS",
                 "--out", str(out_path)]) == 0
    doc = json.loads(out_path.read_text())
    assert doc["smoke"] is True
    assert doc["runs"][0]["policy"] == "LRU+CFS"


def test_same_seed_runs_are_deterministic(capsys):
    argv = ["scenario", "--scenario", "S-A", "--seconds", "2",
            "--seed", "99", "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
