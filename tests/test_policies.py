"""Tests for the baseline policies and the registry."""

import pytest

from repro.apps.catalog import get_profile
from repro.core.ice import IcePolicy
from repro.policies import (
    AcclaimPolicy,
    LruCfsPolicy,
    PowerFreezerPolicy,
    UcsgPolicy,
    available_policies,
    make_policy,
)
from repro.system import MobileSystem

from tests.conftest import make_small_spec

GIB = 1024 * 1024 * 1024


def make_system(policy, ram=3 * GIB, seed=5):
    return MobileSystem(spec=make_small_spec(ram_bytes=ram), policy=policy,
                        seed=seed)


def launch(system, package, frames=False):
    if package not in system.apps:
        system.install_app(get_profile(package))
    record = system.launch(package, drive_frames=frames)
    assert system.run_until_complete(record, timeout_s=180)
    return record


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_names_match_paper():
    assert set(available_policies()) == {
        "LRU+CFS", "UCSG", "Acclaim", "Ice", "PowerManager",
    }


def test_registry_instantiates_each():
    assert isinstance(make_policy("LRU+CFS"), LruCfsPolicy)
    assert isinstance(make_policy("UCSG"), UcsgPolicy)
    assert isinstance(make_policy("Acclaim"), AcclaimPolicy)
    assert isinstance(make_policy("Ice"), IcePolicy)
    assert isinstance(make_policy("PowerManager"), PowerFreezerPolicy)


def test_registry_returns_fresh_instances():
    assert make_policy("Ice") is not make_policy("Ice")


def test_registry_unknown_rejected():
    with pytest.raises(KeyError):
        make_policy("SmartSwap")


# ----------------------------------------------------------------------
# LRU+CFS
# ----------------------------------------------------------------------
def test_baseline_installs_no_hooks():
    policy = LruCfsPolicy()
    system = make_system(policy)
    launch(system, "WhatsApp")
    page = next(iter(system.get_app("WhatsApp").all_pages()))
    assert policy.reclaim_protect(page) is False


# ----------------------------------------------------------------------
# UCSG
# ----------------------------------------------------------------------
def test_ucsg_boosts_foreground_tasks():
    policy = UcsgPolicy()
    system = make_system(policy)
    launch(system, "WhatsApp")
    launch(system, "Skype")
    skype = system.get_app("Skype")
    whatsapp = system.get_app("WhatsApp")
    fg_boosts = {t.boost for p in skype.processes for t in p.tasks}
    bg_boosts = {t.boost for p in whatsapp.processes for t in p.tasks}
    assert fg_boosts == {UcsgPolicy.FG_BOOST}
    assert bg_boosts == {UcsgPolicy.BG_DEMOTE}


def test_ucsg_pick_key_classes():
    policy = UcsgPolicy()
    system = make_system(policy)
    launch(system, "WhatsApp")
    launch(system, "Skype")
    fg_task = system.get_app("Skype").processes[0].tasks[0]
    bg_task = system.get_app("WhatsApp").processes[0].tasks[0]
    assert policy.sched_pick_key(fg_task) < policy.sched_pick_key(bg_task)


def test_ucsg_sets_bg_slot_limit():
    system = make_system(UcsgPolicy())
    assert system.sched.bg_slot_limit == UcsgPolicy.BG_CONCURRENCY


# ----------------------------------------------------------------------
# Acclaim
# ----------------------------------------------------------------------
def test_acclaim_protects_only_foreground_pages():
    policy = AcclaimPolicy()
    system = make_system(policy)
    launch(system, "WhatsApp")
    launch(system, "Skype")
    fg_page = next(iter(system.get_app("Skype").all_pages()))
    bg_page = next(iter(system.get_app("WhatsApp").all_pages()))
    assert policy.reclaim_protect(fg_page) is True
    assert policy.reclaim_protect(bg_page) is False


def test_acclaim_ignores_kernel_pages():
    policy = AcclaimPolicy()
    system = make_system(policy)
    from repro.kernel.page import HeapKind, Page, PageKind

    orphan = Page(kind=PageKind.ANON, owner=None, heap=HeapKind.NATIVE)
    assert policy.reclaim_protect(orphan) is False


# ----------------------------------------------------------------------
# Power-manager freezer
# ----------------------------------------------------------------------
def test_power_freezer_freezes_energy_hungry_bg_apps():
    policy = PowerFreezerPolicy()
    system = make_system(policy, ram=2 * GIB)
    launch(system, "WeChat")  # chatty in BG
    launch(system, "Skype")
    system.run(seconds=30.0)
    wechat = system.get_app("WeChat")
    assert wechat.uid in policy.frozen_uids or policy.freeze_cycles > 0


def test_power_freezer_skips_when_charging():
    policy = PowerFreezerPolicy()
    system = make_system(policy, ram=2 * GIB)
    system.charging = True
    launch(system, "WeChat")
    launch(system, "Skype")
    system.run(seconds=40.0)
    assert policy.frozen_uids == set()
    wechat = system.get_app("WeChat")
    assert all(not system.freezer.is_frozen(pid) for pid in wechat.pids)


def test_power_freezer_thaws_before_launch():
    policy = PowerFreezerPolicy()
    system = make_system(policy, ram=2 * GIB)
    launch(system, "WeChat")
    launch(system, "Skype")
    system.run(seconds=40.0)
    wechat = system.get_app("WeChat")
    if wechat.alive and wechat.uid in policy.frozen_uids:
        record = system.launch("WeChat", drive_frames=False)
        assert record.thaw_ms > 0
        assert wechat.uid not in policy.frozen_uids


def test_power_freezer_cycles_thaw_everything_periodically():
    policy = PowerFreezerPolicy()
    system = make_system(policy, ram=2 * GIB)
    launch(system, "WeChat")
    launch(system, "Skype")
    # Run to the middle of a thaw window: cycle = 15 s freeze + 5 s thaw.
    system.run(seconds=15.0 + 5.0 + 2.0)
    # At some point in the thaw window nothing is frozen.
    # (We can't assert an instantaneous state easily; assert the cycle ran.)
    assert policy.freeze_cycles >= 1


def test_register_policy_rejects_duplicates():
    from repro.policies import registry

    with pytest.raises(ValueError, match="already registered"):
        registry.register_policy("Ice", LruCfsPolicy)
    # The original factory is untouched.
    assert type(registry.make_policy("Ice")).__name__ == "IcePolicy"


def test_register_policy_adds_usable_name():
    from repro.policies import registry

    name = "TestOnlyPolicy"
    assert name not in registry.available_policies()
    registry.register_policy(name, LruCfsPolicy)
    try:
        assert name in registry.available_policies()
        assert isinstance(registry.make_policy(name), LruCfsPolicy)
    finally:
        registry._REGISTRY.pop(name, None)


def test_unregister_policy_removes_name():
    from repro.policies import registry

    name = "UnregisterMe"
    registry.register_policy(name, LruCfsPolicy)
    registry.unregister_policy(name)
    assert name not in registry.available_policies()


def test_unregister_unknown_policy_is_loud():
    from repro.policies import registry

    with pytest.raises(KeyError, match="not registered"):
        registry.unregister_policy("NeverRegistered")


def test_temporary_policy_scopes_registration():
    from repro.policies import registry

    name = "ScopedPolicy"
    with registry.temporary_policy(name, LruCfsPolicy) as bound:
        assert bound == name
        assert isinstance(registry.make_policy(name), LruCfsPolicy)
    assert name not in registry.available_policies()


def test_temporary_policy_cleans_up_on_error():
    from repro.policies import registry

    name = "ScopedPolicy"
    with pytest.raises(RuntimeError, match="boom"):
        with registry.temporary_policy(name, LruCfsPolicy):
            raise RuntimeError("boom")
    assert name not in registry.available_policies()
    # The name is reusable immediately — nothing leaked.
    with registry.temporary_policy(name, LruCfsPolicy):
        pass


def test_temporary_policy_rejects_duplicate_of_builtin():
    from repro.policies import registry

    with pytest.raises(ValueError, match="already registered"):
        with registry.temporary_policy("Ice", LruCfsPolicy):
            pass


def test_make_policy_unknown_name_lists_choices():
    from repro.policies import registry

    with pytest.raises(KeyError, match="LRU\\+CFS"):
        registry.make_policy("NoSuchPolicy")
