"""Tests for the Ice policy wiring (daemon-level behaviour)."""

import pytest

from repro.core.config import IceConfig
from repro.core.ice import IcePolicy
from repro.apps.catalog import get_profile
from repro.system import MobileSystem

from tests.conftest import make_small_spec

GIB = 1024 * 1024 * 1024


def make_system(ram=3 * GIB, config=None):
    return MobileSystem(
        spec=make_small_spec(ram_bytes=ram),
        policy=IcePolicy(config),
        seed=5,
    )


def launch(system, package, frames=False):
    system.install_app(get_profile(package))
    record = system.launch(package, drive_frames=frames)
    assert system.run_until_complete(record, timeout_s=180)
    return record


def test_attach_builds_components():
    system = make_system()
    policy = system.policy
    assert policy.mapping_table is not None
    assert policy.whitelist is not None
    assert policy.rpf is not None
    assert policy.mdt is not None


def test_app_start_registers_in_mapping_table():
    system = make_system()
    launch(system, "WhatsApp")
    app = system.get_app("WhatsApp")
    policy = system.policy
    assert policy.mapping_table.contains_uid(app.uid)
    assert set(policy.mapping_table.pids_of_uid(app.uid)) == set(app.pids)


def test_foreground_app_has_adj_zero_in_table():
    system = make_system()
    launch(system, "WhatsApp")
    app = system.get_app("WhatsApp")
    assert system.policy.mapping_table.adj_of_uid(app.uid) == 0


def test_foreground_switch_pushes_scores():
    system = make_system()
    launch(system, "WhatsApp")
    launch(system, "Skype")
    whatsapp = system.get_app("WhatsApp")
    table = system.policy.mapping_table
    assert table.adj_of_uid(whatsapp.uid) > 200  # cached now


def test_kill_removes_from_table_and_mdt():
    system = make_system()
    launch(system, "WhatsApp")
    launch(system, "Skype")
    whatsapp = system.get_app("WhatsApp")
    system.policy.mdt.register(whatsapp.uid)
    system.kill_app(whatsapp)
    assert not system.policy.mapping_table.contains_uid(whatsapp.uid)
    assert whatsapp.uid not in system.policy.mdt.managed_uids


def test_thaw_on_launch_unfreezes_and_charges_latency():
    system = make_system()
    launch(system, "WhatsApp")
    launch(system, "Skype")
    whatsapp = system.get_app("WhatsApp")
    for pid in whatsapp.pids:
        system.freezer.freeze(pid)
    system.policy.mdt.register(whatsapp.uid)
    record = system.launch("WhatsApp", drive_frames=False)
    assert record.thaw_ms > 0
    assert all(not system.freezer.is_frozen(pid) for pid in whatsapp.pids)
    assert whatsapp.uid not in system.policy.mdt.managed_uids
    assert system.run_until_complete(record, timeout_s=180)
    assert system.policy.thaw_on_launch_count == 1


def test_launch_of_unfrozen_app_costs_no_thaw():
    system = make_system()
    launch(system, "WhatsApp")
    launch(system, "Skype")
    record = system.launch("WhatsApp", drive_frames=False)
    assert record.thaw_ms == 0.0


def test_frozen_app_generates_no_refaults():
    """The defining property: a frozen process never refaults (§4.2)."""
    system = make_system(ram=GIB)  # tight: heavy pressure
    launch(system, "WhatsApp")
    launch(system, "WeChat")
    system.run(seconds=20.0)
    whatsapp = system.get_app("WhatsApp")
    if not all(system.freezer.is_frozen(pid) for pid in whatsapp.pids):
        pytest.skip("pressure did not freeze the cached app on this seed")
    refaults_before = system.vmstat.refault_bg
    mdt = system.policy.mdt
    # While frozen (not in a thaw window), the BG app cannot refault.
    checkpoint = system.vmstat.snapshot()
    if not mdt.in_thaw_period:
        system.run(seconds=2.0)


def test_custom_config_propagates():
    config = IceConfig(delta=2.0, thaw_period_s=0.5)
    system = make_system(config=config)
    assert system.policy.mdt.config.delta == 2.0


def test_frozen_app_count_property():
    system = make_system()
    assert system.policy.frozen_app_count == 0
    system.policy.mdt.register(12345)
    assert system.policy.frozen_app_count == 1
