"""Tests for metrics helpers."""

import pytest

from repro.metrics.stats import mean, percentile, stddev, summarize
from repro.metrics.tables import render_table


def test_mean():
    assert mean([1, 2, 3]) == 2.0
    assert mean([]) == 0.0


def test_stddev():
    assert stddev([2, 2, 2]) == 0.0
    assert stddev([1]) == 0.0
    assert stddev([0, 2]) == 1.0


def test_percentile_basic():
    values = list(range(11))  # 0..10
    assert percentile(values, 0) == 0
    assert percentile(values, 50) == 5
    assert percentile(values, 100) == 10


def test_percentile_interpolates():
    assert percentile([0, 10], 25) == 2.5


def test_percentile_single_value():
    assert percentile([7], 90) == 7


def test_percentile_validates_range():
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_percentile_empty():
    assert percentile([], 50) == 0.0


def test_summarize_keys():
    summary = summarize([1.0, 2.0, 3.0])
    assert set(summary) == {"mean", "std", "min", "p50", "p90", "p99", "max"}
    assert summary["min"] == 1.0
    assert summary["max"] == 3.0


def test_summarize_p99():
    values = list(range(101))  # 0..100
    summary = summarize(values)
    assert summary["p99"] == 99.0


def test_summarize_empty():
    summary = summarize([])
    assert summary["mean"] == 0.0
    assert summary["p99"] == 0.0


def test_summarize_delegates_to_histogram():
    from repro.metrics import Histogram

    hist = Histogram()
    for value in (1.0, 2.0, 4.0, 8.0):
        hist.add(value)
    summary = summarize(hist)
    assert set(summary) == {"mean", "std", "min", "p50", "p90", "p99", "max"}
    assert summary["mean"] == pytest.approx(3.75)
    assert summary["max"] == 8.0


def test_percentile_bounds():
    values = [3.0, 1.0, 2.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 3.0


def test_percentile_rejects_negative():
    with pytest.raises(ValueError):
        percentile([1.0], -0.1)


def test_render_table_alignment():
    out = render_table(["name", "value"], [["a", 1], ["bb", 2.5]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "2.50" in lines[4]


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])
