"""Property-based tests (hypothesis) for core data-structure invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping_table import (
    MappingTable,
    PID_ENTRY_BYTES,
    SCORE_ENTRY_BYTES,
    STATE_ENTRY_BYTES,
    UID_ENTRY_BYTES,
)
from repro.kernel.lru import LruKind, LruLists
from repro.kernel.page import HeapKind, Page, PageKind
from repro.kernel.workingset import WorkingSet
from repro.metrics.stats import percentile
from repro.sim.engine import Simulator
from repro.storage.block import BlockQueue, IoDirection
from repro.storage.zram import ZramDevice, ZramFullError


# ----------------------------------------------------------------------
# LRU invariants under arbitrary operation sequences
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "activate", "deactivate", "remove",
                                   "rotate", "touch"]),
                  st.integers(min_value=0, max_value=19)),
        max_size=120,
    )
)
def test_lru_membership_invariants(ops):
    lru = LruLists()
    pages = [
        Page(kind=PageKind.ANON if i % 2 else PageKind.FILE,
             owner=None,
             heap=HeapKind.NATIVE if i % 2 else HeapKind.NONE)
        for i in range(20)
    ]
    on_list = set()
    for op, index in ops:
        page = pages[index]
        if op == "add" and index not in on_list:
            lru.add(page)
            on_list.add(index)
        elif op == "activate" and index in on_list:
            lru.activate(page)
        elif op == "deactivate" and index in on_list:
            lru.deactivate(page)
        elif op == "rotate" and index in on_list:
            lru.rotate(page)
        elif op == "remove" and index in on_list:
            lru.remove(page)
            on_list.discard(index)
        elif op == "touch":
            page.referenced = True
    # Invariant 1: totals match tracked membership.
    assert lru.total == len(on_list)
    # Invariant 2: every on-list page knows its list, off-list pages don't.
    for index, page in enumerate(pages):
        assert (page.lru is not None) == (index in on_list)
    # Invariant 3: anon pages never sit on file lists and vice versa.
    for kind in (LruKind.ACTIVE_ANON, LruKind.INACTIVE_ANON):
        assert all(page.is_anon for page in lru.iter_pages(kind))
    for kind in (LruKind.ACTIVE_FILE, LruKind.INACTIVE_FILE):
        assert all(page.is_file for page in lru.iter_pages(kind))


@settings(max_examples=40, deadline=None)
@given(budget=st.integers(min_value=1, max_value=40),
       referenced=st.lists(st.booleans(), min_size=1, max_size=40))
def test_lru_scan_conserves_pages(budget, referenced):
    """Scanning never loses or duplicates pages."""
    lru = LruLists()
    pages = []
    for flag in referenced:
        page = Page(kind=PageKind.ANON, owner=None, heap=HeapKind.JAVA)
        page.referenced = flag
        lru.add(page)
        pages.append(page)
    victims, scanned = lru.scan_inactive(LruKind.INACTIVE_ANON, budget=budget)
    assert scanned == min(budget, len(pages))
    assert len(victims) + lru.total == len(pages)
    assert len({page.page_id for page in victims}) == len(victims)
    # Referenced pages are never evicted (second chance).
    assert all(not page.referenced or False for page in victims)


# ----------------------------------------------------------------------
# ZRAM pool accounting
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["store", "load", "discard"]),
                              st.integers(min_value=0, max_value=30)),
                    max_size=100))
def test_zram_pool_never_exceeds_capacity(ops):
    zram = ZramDevice(capacity_pages=16, compression_ratio=2.0)
    stored = set()
    for op, slot in ops:
        if op == "store" and slot not in stored:
            try:
                zram.store(slot)
                stored.add(slot)
            except ZramFullError:
                assert len(stored) == 16
        elif op == "load" and slot in stored:
            zram.load(slot)
            stored.discard(slot)
        elif op == "discard":
            zram.discard(slot)
            stored.discard(slot)
    assert zram.stored_pages == len(stored)
    assert 0 <= zram.pool_pages() <= zram.capacity_pages
    assert zram.free_slots == 16 - len(stored)


# ----------------------------------------------------------------------
# Block queue: completions are monotone and never precede issue
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(requests=st.lists(
    st.tuples(st.floats(min_value=0, max_value=100),
              st.integers(min_value=1, max_value=20),
              st.booleans()),
    min_size=1, max_size=40))
def test_block_queue_completion_order(requests):
    """Completions are FIFO within each lane and never precede issue."""
    queue = BlockQueue("q", read_ms_per_page=0.5, write_ms_per_page=1.0)
    now = 0.0
    last_completion = {IoDirection.READ: 0.0, IoDirection.WRITE: 0.0}
    for delay, pages, is_write in requests:
        now += delay
        direction = IoDirection.WRITE if is_write else IoDirection.READ
        bio = queue.submit(now, direction, pages)
        assert bio.complete_time >= now + queue.service_time(direction, pages)
        assert bio.complete_time >= last_completion[direction]
        last_completion[direction] = bio.complete_time


# ----------------------------------------------------------------------
# Working set: refault distance is exact
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(interleaved=st.integers(min_value=0, max_value=200))
def test_refault_distance_exact(interleaved):
    ws = WorkingSet()
    target = Page(kind=PageKind.ANON, owner=None, heap=HeapKind.JAVA)
    ws.record_eviction(target)
    for _ in range(interleaved):
        ws.record_eviction(Page(kind=PageKind.ANON, owner=None,
                                heap=HeapKind.JAVA))
    event = ws.check_refault(0.0, target, pid=1, uid=1, foreground=False)
    assert event.refault_distance == interleaved


# ----------------------------------------------------------------------
# Mapping table byte accounting matches the paper's formula exactly
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(layout=st.lists(st.integers(min_value=1, max_value=5),
                       min_size=0, max_size=12))
def test_mapping_table_bytes_formula(layout):
    table = MappingTable(capacity_bytes=10 ** 9)
    pid = 1
    for app_index, nprocs in enumerate(layout):
        pids = list(range(pid, pid + nprocs))
        pid += nprocs
        table.register_app(uid=20000 + app_index, package=f"a{app_index}",
                           pids=pids)
    total_procs = sum(layout)
    expected = len(layout) * UID_ENTRY_BYTES + total_procs * (
        PID_ENTRY_BYTES + STATE_ENTRY_BYTES + SCORE_ENTRY_BYTES
    )
    assert table.memory_bytes == expected


# ----------------------------------------------------------------------
# Simulator: events always execute in timestamp order
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0),
                       min_size=1, max_size=50))
def test_simulator_executes_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run_until(2000.0)
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ----------------------------------------------------------------------
# Percentile: bounded by min/max and monotone in pct
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=50),
       p=st.floats(min_value=0, max_value=100),
       q=st.floats(min_value=0, max_value=100))
def test_percentile_bounds_and_monotonicity(values, p, q):
    lo, hi = min(p, q), max(p, q)
    assert min(values) <= percentile(values, lo) <= max(values)
    # Allow float-interpolation noise at the 1e-9 scale.
    tolerance = 1e-9 * (1.0 + abs(percentile(values, hi)))
    assert percentile(values, lo) <= percentile(values, hi) + tolerance
