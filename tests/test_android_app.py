"""Tests for applications, processes, and oom_adj."""

import pytest

from repro.android.app import Application, AppState, Process
from repro.android.oom_adj import (
    ADJ_FOREGROUND,
    ADJ_PERCEPTIBLE,
    CACHED_APP_MIN_ADJ,
    cached_adj,
    is_whitelisted_score,
)
from repro.apps.catalog import get_profile
from repro.apps.profiles import AppCategory, AppProfile


def make_app(**overrides) -> Application:
    profile = get_profile("WhatsApp")
    return Application(profile)


# ----------------------------------------------------------------------
# oom_adj
# ----------------------------------------------------------------------
def test_cached_adj_ordering():
    assert cached_adj(0) == CACHED_APP_MIN_ADJ
    assert cached_adj(1) > cached_adj(0)


def test_cached_adj_capped():
    assert cached_adj(1000) == 999


def test_cached_adj_negative_rank_rejected():
    with pytest.raises(ValueError):
        cached_adj(-1)


def test_whitelist_score_rule():
    assert is_whitelisted_score(ADJ_FOREGROUND)
    assert is_whitelisted_score(ADJ_PERCEPTIBLE)
    assert not is_whitelisted_score(ADJ_PERCEPTIBLE + 1)
    assert not is_whitelisted_score(CACHED_APP_MIN_ADJ)


# ----------------------------------------------------------------------
# Application
# ----------------------------------------------------------------------
def test_uids_unique_and_android_range():
    a, b = make_app(), make_app()
    assert a.uid != b.uid
    assert a.uid >= 10000


def test_new_app_is_stopped_and_dead():
    app = make_app()
    assert app.state is AppState.STOPPED
    assert not app.alive
    assert app.pids == []


def test_adj_by_state():
    app = make_app()
    app.state = AppState.FOREGROUND
    assert app.adj == ADJ_FOREGROUND
    app.state = AppState.CACHED
    app.recency_rank = 2
    assert app.adj == cached_adj(2)


def test_perceptible_app_keeps_adj_200_in_bg():
    app = make_app()
    app.perceptible = True
    app.state = AppState.CACHED
    assert app.adj == ADJ_PERCEPTIBLE


def test_main_process_lookup():
    app = make_app()
    aux = Process("aux", app, main=False)
    main = Process("main", app, main=True)
    app.processes = [aux, main]
    assert app.main_process is main
    assert set(app.pids) == {aux.pid, main.pid}


def test_process_uid_follows_app():
    app = make_app()
    process = Process("p", app)
    assert process.uid == app.uid


def test_build_footprint_counts_and_hotness():
    app = make_app()
    process = Process("p", app, main=True)
    process.build_footprint(
        java_pages=10, native_pages=20, file_pages=30,
        hot_frac=0.5, file_dirty_frac=0.1,
    )
    table = process.page_table
    assert len(table.pages_of("java_heap")) == 10
    assert len(table.pages_of("native_heap")) == 20
    assert len(table.pages_of("file_map")) == 30
    hot_java = sum(1 for page in table.pages_of("java_heap") if page.hot)
    assert hot_java == 5
    dirty_file = sum(1 for page in table.pages_of("file_map") if page.dirty)
    assert dirty_file == 3


def test_resident_pages_aggregates_processes():
    app = make_app()
    p1 = Process("a", app, main=True)
    p1.build_footprint(4, 0, 0, hot_frac=0.0, file_dirty_frac=0.0)
    app.processes = [p1]
    for page in p1.page_table.all_pages():
        page.present = True
    assert app.resident_pages() == 4
    assert app.total_pages() == 4
