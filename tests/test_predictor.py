"""Tests for the next-app predictor and predictive thaw (§6.3.1 ext)."""

import pytest

from repro.apps.catalog import get_profile
from repro.core.config import IceConfig
from repro.core.ice import IcePolicy
from repro.core.predictor import NextAppPredictor
from repro.system import MobileSystem

from tests.conftest import make_small_spec

GIB = 1024 * 1024 * 1024


# ----------------------------------------------------------------------
# NextAppPredictor
# ----------------------------------------------------------------------
def test_empty_predictor_predicts_nothing():
    assert NextAppPredictor().predict_next() is None


def test_learns_markov_transition():
    predictor = NextAppPredictor()
    for _ in range(3):
        predictor.record_launch(1)
        predictor.record_launch(2)
    assert predictor.predict_next(1) == 2


def test_frequency_fallback_for_unknown_state():
    predictor = NextAppPredictor()
    for uid in (5, 5, 5, 7):
        predictor.record_launch(uid)
    # UID 99 has no transitions; fall back to most frequent (5).
    assert predictor.predict_next(99) == 5


def test_fallback_never_predicts_current_app():
    predictor = NextAppPredictor()
    predictor.record_launch(5)
    predictor.record_launch(5)
    assert predictor.predict_next(5) is None or predictor.predict_next(5) != 5


def test_accuracy_tracking():
    predictor = NextAppPredictor()
    predictor.record_launch(1)
    predictor.record_launch(2)
    predictor.record_launch(1)
    predictor.predict_next(1)  # predicts 2
    predictor.record_launch(2)  # hit
    predictor.predict_next(2)  # predicts 1
    predictor.record_launch(3)  # miss
    assert predictor.predictions == 2
    assert predictor.hits == 1
    assert predictor.accuracy == 0.5


def test_forget_removes_uid():
    predictor = NextAppPredictor()
    predictor.record_launch(1)
    predictor.record_launch(2)
    predictor.forget(2)
    assert predictor.predict_next(1) != 2


def test_history_limit_bounds_memory():
    predictor = NextAppPredictor(history_limit=10)
    for i in range(100):
        predictor.record_launch(i % 5)
    assert len(predictor._history) == 10


# ----------------------------------------------------------------------
# Predictive thaw wired into Ice
# ----------------------------------------------------------------------
def test_predictive_thaw_disabled_by_default():
    system = MobileSystem(spec=make_small_spec(ram_bytes=2 * GIB),
                          policy=IcePolicy(), seed=5)
    assert system.policy.predictor is None


def test_predictive_thaw_unfreezes_predicted_app():
    config = IceConfig(predictive_thaw=True)
    system = MobileSystem(spec=make_small_spec(ram_bytes=3 * GIB),
                          policy=IcePolicy(config), seed=5)
    for package in ("WhatsApp", "Skype"):
        system.install_app(get_profile(package))
        record = system.launch(package, drive_frames=False)
        assert system.run_until_complete(record, timeout_s=180)
    # Teach the predictor the WhatsApp -> Skype transition.
    for _ in range(2):
        for package in ("WhatsApp", "Skype"):
            record = system.launch(package, drive_frames=False)
            system.run_until_complete(record, timeout_s=180)
    # Skype is FG; freeze it, then switch to WhatsApp: the predictor
    # knows WhatsApp -> Skype and must thaw Skype ahead of its launch.
    skype = system.get_app("Skype")
    for pid in skype.pids:
        system.freezer.freeze(pid)
    record = system.launch("WhatsApp", drive_frames=False)
    system.run_until_complete(record, timeout_s=180)
    assert all(not system.freezer.is_frozen(pid) for pid in skype.pids)
    assert system.policy.predictive_thaw_count >= 1
    # The predicted launch pays no thaw latency.
    record = system.launch("Skype", drive_frames=False)
    assert record.thaw_ms == 0.0
