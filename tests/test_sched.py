"""Tests for tasks, priorities, and the CFS scheduler."""

import pytest

from repro.sched.cfs import CfsScheduler
from repro.sched.priorities import clamp_nice, nice_to_weight
from repro.sched.task import Task, TaskState, WorkItem


# ----------------------------------------------------------------------
# Priorities
# ----------------------------------------------------------------------
def test_nice_zero_weight():
    assert nice_to_weight(0) == 1024


def test_weight_monotonic_in_nice():
    weights = [nice_to_weight(nice) for nice in range(-20, 20)]
    assert weights == sorted(weights, reverse=True)


def test_out_of_range_nice_rejected():
    with pytest.raises(ValueError):
        nice_to_weight(20)
    with pytest.raises(ValueError):
        nice_to_weight(-21)


def test_clamp_nice():
    assert clamp_nice(100) == 19
    assert clamp_nice(-100) == -20
    assert clamp_nice(3) == 3


# ----------------------------------------------------------------------
# Task state machine
# ----------------------------------------------------------------------
def test_new_task_sleeps():
    assert Task("t").state is TaskState.SLEEPING


def test_submit_wakes_sleeping_task():
    task = Task("t")
    task.submit(WorkItem(cpu_ms=1.0))
    assert task.state is TaskState.RUNNABLE


def test_submit_to_dead_task_ignored():
    task = Task("t")
    task.kill()
    task.submit(WorkItem(cpu_ms=1.0))
    assert task.state is TaskState.DEAD
    assert not task.queue


def test_block_and_unblock():
    task = Task("t")
    task.submit(WorkItem(cpu_ms=1.0))
    task.block_until(50.0)
    assert task.state is TaskState.BLOCKED
    task.unblock()
    assert task.state is TaskState.RUNNABLE


def test_unblock_without_work_sleeps():
    task = Task("t")
    task.submit(WorkItem(cpu_ms=1.0))
    task.queue.clear()
    task.block_until(50.0)
    task.unblock()
    assert task.state is TaskState.SLEEPING


def test_freeze_and_thaw_roundtrip():
    task = Task("t")
    task.submit(WorkItem(cpu_ms=1.0))
    task.freeze()
    assert task.state is TaskState.FROZEN
    task.thaw()
    assert task.state is TaskState.RUNNABLE


def test_thaw_without_work_sleeps():
    task = Task("t")
    task.freeze()
    task.thaw()
    assert task.state is TaskState.SLEEPING


def test_kernel_tasks_not_freezable():
    task = Task("kswapd0", is_kernel=True)
    assert not task.freezable


def test_queue_body_runs_work_and_completes():
    task = Task("t")
    done = []
    task.submit(WorkItem(cpu_ms=6.0, on_complete=lambda: done.append(1)))
    used = task.body.run(task, now=0.0, budget_ms=4.0)
    assert used == 4.0
    assert not done
    used = task.body.run(task, now=4.0, budget_ms=4.0)
    assert used == 2.0
    assert done == [1]


def test_queue_body_touch_blocks_task():
    task = Task("t")
    task.submit(WorkItem(cpu_ms=2.0, touch=lambda: 10.0))
    used = task.body.run(task, now=0.0, budget_ms=4.0)
    assert used == 0.0
    assert task.state is TaskState.BLOCKED
    assert task.blocked_until == 10.0
    # After unblocking, the CPU part executes without re-touching.
    task.unblock()
    used = task.body.run(task, now=10.0, budget_ms=4.0)
    assert used == 2.0


def test_queue_body_zero_fault_touch_continues():
    task = Task("t")
    task.submit(WorkItem(cpu_ms=1.0, touch=lambda: 0.0))
    used = task.body.run(task, now=0.0, budget_ms=4.0)
    assert used == 1.0
    assert task.state is TaskState.RUNNABLE  # scheduler will sleep it


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def make_sched(cores=2):
    return CfsScheduler(cores=cores)


def test_tick_runs_min_vruntime_first():
    sched = make_sched(cores=1)
    early = Task("early")
    late = Task("late")
    sched.add_task(early)
    sched.add_task(late)
    early.vruntime = 0.0
    late.vruntime = 100.0
    early.submit(WorkItem(cpu_ms=4.0))
    late.submit(WorkItem(cpu_ms=4.0))
    sched.tick(0.0)
    assert early.cpu_ms_total == 4.0
    assert late.cpu_ms_total == 0.0


def test_vruntime_advances_by_weighted_usage():
    sched = make_sched(cores=1)
    task = Task("t", nice=0)
    sched.add_task(task)
    task.submit(WorkItem(cpu_ms=4.0))
    sched.tick(0.0)
    assert task.vruntime == pytest.approx(4.0)


def test_boost_slows_vruntime_accrual():
    sched = make_sched(cores=2)
    boosted = Task("boosted")
    boosted.boost = 4.0
    normal = Task("normal")
    sched.add_task(boosted)
    sched.add_task(normal)
    boosted.submit(WorkItem(cpu_ms=4.0))
    normal.submit(WorkItem(cpu_ms=4.0))
    sched.tick(0.0)
    assert boosted.vruntime < normal.vruntime


def test_frozen_tasks_never_picked():
    sched = make_sched(cores=1)
    task = Task("t")
    sched.add_task(task)
    task.submit(WorkItem(cpu_ms=4.0))
    task.freeze()
    sched.tick(0.0)
    assert task.cpu_ms_total == 0.0


def test_blocked_tasks_wake_when_due():
    sched = make_sched(cores=1)
    task = Task("t")
    sched.add_task(task)
    task.submit(WorkItem(cpu_ms=4.0))
    task.block_until(10.0)
    sched.tick(4.0)
    assert task.state is TaskState.BLOCKED
    sched.tick(12.0)
    assert task.cpu_ms_total == 4.0


def test_background_tasks_confined_to_little_cores():
    sched = make_sched(cores=4)  # 2 big + 2 little
    sched.is_background = lambda task: task.name.startswith("bg")
    tasks = [Task(f"bg{i}") for i in range(4)]
    for task in tasks:
        sched.add_task(task)
        task.submit(WorkItem(cpu_ms=4.0))
    sched.tick(0.0)
    ran = sum(1 for task in tasks if task.cpu_ms_total > 0)
    assert ran == 2  # only the little cluster


def test_foreground_tasks_use_all_cores():
    sched = make_sched(cores=4)
    tasks = [Task(f"fg{i}") for i in range(4)]
    for task in tasks:
        sched.add_task(task)
        task.submit(WorkItem(cpu_ms=4.0))
    sched.tick(0.0)
    assert all(task.cpu_ms_total > 0 for task in tasks)


def test_bg_slot_limit_packs_background():
    sched = make_sched(cores=4)
    sched.is_background = lambda task: True
    sched.bg_slot_limit = 1
    tasks = [Task(f"bg{i}") for i in range(3)]
    for task in tasks:
        sched.add_task(task)
        task.submit(WorkItem(cpu_ms=4.0))
    sched.tick(0.0)
    assert sum(1 for task in tasks if task.cpu_ms_total > 0) == 1


def test_freeze_thaw_by_pid():
    class Proc:
        pid = 1234
        uid = 1

    sched = make_sched()
    task = Task("t", process=Proc())
    sched.add_task(task)
    task.submit(WorkItem(cpu_ms=4.0))
    sched.freeze_pid(1234)
    assert task.state is TaskState.FROZEN
    sched.thaw_pid(1234)
    assert task.state is TaskState.RUNNABLE


def test_cpu_stats_buckets_per_second():
    sched = make_sched(cores=1)
    task = Task("t")
    sched.add_task(task)
    now = 0.0
    while now <= 2000.0:
        task.submit(WorkItem(cpu_ms=4.0))
        sched.tick(now)
        now += 4.0
    assert len(sched.stats.samples) == 2
    assert sched.stats.samples[0] == pytest.approx(1.0, abs=0.01)


def test_utilization_over_window():
    sched = make_sched(cores=2)
    task = Task("t")
    sched.add_task(task)
    task.submit(WorkItem(cpu_ms=4.0))
    sched.tick(0.0)
    assert sched.stats.utilization_over(4.0) == pytest.approx(0.5)


def test_remove_task_kills_it():
    sched = make_sched()
    task = Task("t")
    sched.add_task(task)
    sched.remove_task(task)
    assert task.state is TaskState.DEAD
    assert task.tid not in sched.tasks


def test_duplicate_add_rejected():
    sched = make_sched()
    task = Task("t")
    sched.add_task(task)
    with pytest.raises(ValueError):
        sched.add_task(task)
