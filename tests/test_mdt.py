"""Tests for memory-aware dynamic thawing (§4.3)."""

import math

import pytest

from repro.core.config import IceConfig
from repro.core.mdt import MemoryAwareThawing
from repro.sim.engine import Simulator


class Harness:
    def __init__(self, available=10_000, high=256, config=None):
        self.sim = Simulator()
        self.available = available
        self.frozen = []
        self.thawed = []
        self.mdt = MemoryAwareThawing(
            config=config or IceConfig(),
            sim=self.sim,
            high_watermark_pages=high,
            available_pages_fn=lambda: self.available,
            freeze_uid=self.frozen.append,
            thaw_uid=self.thawed.append,
        )


def test_ratio_formula_matches_paper_eq1():
    """R = delta * 2^ceil(Hwm / Sam)."""
    h = Harness(available=10_000, high=256)
    assert h.mdt.compute_ratio() == 8.0 * 2 ** 1
    h.available = 256
    assert h.mdt.compute_ratio() == 8.0 * 2 ** 1
    h.available = 255
    assert h.mdt.compute_ratio() == 8.0 * 2 ** 2
    h.available = 64
    assert h.mdt.compute_ratio() == 8.0 * 2 ** 4


def test_ratio_exponent_capped():
    h = Harness(available=1, high=10 ** 9)
    assert h.mdt.compute_ratio() == 8.0 * 2 ** 16


def test_freeze_period_bounded_by_config():
    config = IceConfig(max_freeze_s=20.0)
    h = Harness(available=1, high=10 ** 6, config=config)
    assert h.mdt.compute_freeze_period_s() == 20.0


def test_freeze_period_low_pressure_default():
    h = Harness(available=10_000, high=256)
    # R = 16, E_t = 1s -> E_f = 16s.
    assert h.mdt.compute_freeze_period_s() == 16.0


def test_register_starts_heartbeat_and_freezes():
    h = Harness()
    h.mdt.register(42)
    assert h.mdt.started
    h.sim.run_until(1.0)
    assert 42 in h.frozen


def test_epoch_cycle_freeze_then_thaw():
    h = Harness(available=10_000)
    h.mdt.register(42)
    h.sim.run_until(16_500.0)  # into the thaw window (E_f = 16s)
    assert h.thawed == [42]
    assert h.mdt.in_thaw_period
    h.sim.run_until(17_600.0)  # next epoch began
    assert h.frozen.count(42) >= 2
    assert not h.mdt.in_thaw_period


def test_intensity_tracks_pressure_changes():
    h = Harness(available=10_000)
    h.mdt.register(42)
    h.sim.run_until(1.0)
    h.available = 50  # pressure spikes: ceil(256/50)=6 -> R=512 -> capped
    h.sim.run_until(17_100.0)  # next epoch recomputes E_f
    assert h.mdt.current_freeze_s == h.mdt.config.max_freeze_s


def test_deregister_stops_thawing_that_uid():
    h = Harness()
    h.mdt.register(1)
    h.mdt.register(2)
    h.mdt.deregister(1)
    h.sim.run_until(16_500.0)
    assert 1 not in h.thawed
    assert 2 in h.thawed


def test_release_when_pressure_vanishes():
    config = IceConfig(release_pressure_factor=4.0)
    h = Harness(available=100, high=256, config=config)
    h.mdt.register(1)
    h.sim.run_until(1.0)
    h.available = 2000  # > 4 * 256
    # Run past the next thaw boundary (E_f capped at 120s by default...
    # but with available=100 the first epoch used max_freeze).
    h.sim.run_until((h.mdt.current_freeze_s + 2) * 1000.0)
    assert h.mdt.managed_uids == set()
    assert 1 in h.thawed  # released apps are thawed, not left frozen


def test_epoch_records_kept():
    h = Harness()
    h.mdt.register(9)
    h.sim.run_until(40_000.0)
    assert len(h.mdt.epochs) >= 2
    assert h.mdt.epochs[0].frozen_apps in (0, 1)


def test_stop_halts_heartbeat():
    h = Harness()
    h.mdt.register(1)
    h.sim.run_until(1.0)
    h.mdt.stop()
    frozen_count = len(h.frozen)
    h.sim.run_until(60_000.0)
    assert len(h.frozen) == frozen_count


def test_config_validation():
    with pytest.raises(ValueError):
        IceConfig(delta=0)
    with pytest.raises(ValueError):
        IceConfig(thaw_period_s=0)
    with pytest.raises(ValueError):
        IceConfig(max_freeze_s=0.5, thaw_period_s=1.0)
    with pytest.raises(ValueError, match="mapping_table_bytes"):
        IceConfig(mapping_table_bytes=0)
    with pytest.raises(ValueError, match="mapping_table_bytes"):
        IceConfig(mapping_table_bytes=-4096)
    with pytest.raises(ValueError, match="release_pressure_factor"):
        IceConfig(release_pressure_factor=0)
    with pytest.raises(ValueError, match="release_pressure_factor"):
        IceConfig(release_pressure_factor=-1.0)
