"""Tests for pages and page tables."""

import pytest

from repro.kernel.page import HeapKind, Page, PageKind
from repro.kernel.page_table import PageTable


def make_anon(heap=HeapKind.NATIVE, **kw):
    return Page(kind=PageKind.ANON, owner=None, heap=heap, **kw)


def make_file(**kw):
    return Page(kind=PageKind.FILE, owner=None, **kw)


def test_page_ids_unique():
    a, b = make_anon(), make_anon()
    assert a.page_id != b.page_id


def test_anon_requires_heap_kind():
    with pytest.raises(ValueError):
        Page(kind=PageKind.ANON, owner=None, heap=HeapKind.NONE)


def test_file_rejects_heap_kind():
    with pytest.raises(ValueError):
        Page(kind=PageKind.FILE, owner=None, heap=HeapKind.JAVA)


def test_new_page_not_present():
    page = make_anon()
    assert not page.present
    assert not page.was_evicted


def test_mark_accessed_sets_young_bit():
    page = make_anon()
    page.mark_accessed()
    assert page.referenced


def test_write_access_dirties_file_page():
    page = make_file()
    page.mark_accessed(write=True)
    assert page.dirty


def test_write_access_does_not_dirty_anon():
    page = make_anon()
    page.mark_accessed(write=True)
    assert not page.dirty


def test_shadow_entry_marks_eviction():
    page = make_anon()
    page.shadow_eviction_clock = 17
    assert page.was_evicted


# ----------------------------------------------------------------------
# PageTable
# ----------------------------------------------------------------------
def test_build_page_lands_in_correct_segment():
    table = PageTable(owner=None)
    anon_j = table.build_page(PageKind.ANON, HeapKind.JAVA)
    anon_n = table.build_page(PageKind.ANON, HeapKind.NATIVE)
    filep = table.build_page(PageKind.FILE, HeapKind.NONE)
    assert anon_j in table.pages_of(PageTable.JAVA_HEAP)
    assert anon_n in table.pages_of(PageTable.NATIVE_HEAP)
    assert filep in table.pages_of(PageTable.FILE_MAP)


def test_total_and_resident_counts():
    table = PageTable(owner=None)
    pages = [table.build_page(PageKind.ANON, HeapKind.JAVA) for _ in range(5)]
    assert table.total_pages == 5
    assert table.resident_pages == 0
    pages[0].present = True
    pages[1].present = True
    assert table.resident_pages == 2


def test_evicted_pages_counts_shadowed_only():
    table = PageTable(owner=None)
    a = table.build_page(PageKind.ANON, HeapKind.JAVA)
    b = table.build_page(PageKind.ANON, HeapKind.JAVA)
    a.shadow_eviction_clock = 3
    assert table.evicted_pages == 1
    b.present = True
    assert table.evicted_pages == 1


def test_resident_by_segment():
    table = PageTable(owner=None)
    table.build_page(PageKind.FILE, HeapKind.NONE).present = True
    table.build_page(PageKind.ANON, HeapKind.NATIVE)
    counts = table.resident_by_segment()
    assert counts[PageTable.FILE_MAP] == 1
    assert counts[PageTable.NATIVE_HEAP] == 0


def test_all_pages_iterates_everything():
    table = PageTable(owner=None)
    built = {
        table.build_page(PageKind.ANON, HeapKind.JAVA).page_id,
        table.build_page(PageKind.ANON, HeapKind.NATIVE).page_id,
        table.build_page(PageKind.FILE, HeapKind.NONE).page_id,
    }
    assert {page.page_id for page in table.all_pages()} == built
