"""Token-bucket rate limiting: bit-exact arithmetic on a fake clock."""

import pytest

from repro.fleet.ratelimit import (
    DEFAULT_CLASS_COSTS,
    TenantRateLimiter,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
def test_bucket_starts_full_and_drains():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=10.0, burst=5.0, clock=clock)
    assert bucket.tokens == 5.0
    for _ in range(5):
        allowed, retry = bucket.try_take(1.0)
        assert allowed and retry == 0.0
    allowed, retry = bucket.try_take(1.0)
    assert not allowed
    assert retry == pytest.approx(0.1)  # 1 token at 10/s


def test_refill_is_continuous_and_capped():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=10.0, burst=5.0, clock=clock)
    assert bucket.try_take(5.0)[0]
    clock.advance(0.25)
    assert bucket.tokens == pytest.approx(2.5)
    clock.advance(100.0)
    assert bucket.tokens == 5.0  # burst caps the refill


def test_rejection_spends_nothing():
    # No partial debits: a client that waits exactly retry_after_s
    # must find the tokens it was promised.
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=2.0, burst=4.0, clock=clock)
    assert bucket.try_take(4.0)[0]
    allowed, retry = bucket.try_take(3.0)
    assert not allowed
    assert retry == pytest.approx(1.5)  # 3 tokens at 2/s
    clock.advance(retry)
    assert bucket.try_take(3.0)[0]


def test_retry_after_accounts_for_partial_balance():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=4.0, burst=8.0, clock=clock)
    bucket.try_take(7.0)  # 1 token left
    allowed, retry = bucket.try_take(3.0)
    assert not allowed
    assert retry == pytest.approx((3.0 - 1.0) / 4.0)


def test_bucket_validates_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=1.0, burst=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=1.0, burst=1.0).try_take(-1.0)


def test_monotonic_clock_regression_is_harmless():
    clock = FakeClock(now=100.0)
    bucket = TokenBucket(rate_per_s=10.0, burst=10.0, clock=clock)
    bucket.try_take(5.0)
    clock.now = 99.0  # time never mints tokens going backwards
    assert bucket.tokens == pytest.approx(5.0)


# ----------------------------------------------------------------------
# TenantRateLimiter
# ----------------------------------------------------------------------
def test_tenants_have_independent_buckets():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate_per_s=1.0, burst=2.0, clock=clock)
    assert limiter.admit("a").allowed
    assert limiter.admit("a").allowed
    assert not limiter.admit("a").allowed  # a exhausted...
    assert limiter.admit("b").allowed      # ...b unaffected


def test_priority_class_costs_share_one_bucket():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate_per_s=1.0, burst=4.0, clock=clock)
    # high costs 0.5, low costs 2.0 — the same 4-token budget admits
    # them in different amounts, and they drain each other.
    assert limiter.admit("t", "low").allowed      # 2 left
    assert limiter.admit("t", "high").allowed     # 1.5 left
    assert limiter.admit("t", "normal").allowed   # 0.5 left
    assert limiter.admit("t", "high").allowed     # 0 left
    decision = limiter.admit("t", "normal")
    assert not decision.allowed
    assert decision.retry_after_s == pytest.approx(
        DEFAULT_CLASS_COSTS["normal"] / 1.0
    )
    assert decision.cost == DEFAULT_CLASS_COSTS["normal"]


def test_decision_carries_the_429_payload():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate_per_s=2.0, burst=1.0, clock=clock)
    ok = limiter.admit("t", "normal")
    assert ok.allowed and ok.retry_after_s == 0.0
    rejected = limiter.admit("t", "normal")
    assert rejected.tenant == "t"
    assert rejected.priority_class == "normal"
    assert rejected.retry_after_s == pytest.approx(0.5)


def test_overrides_grant_custom_shapes():
    clock = FakeClock()
    limiter = TenantRateLimiter(
        rate_per_s=1.0, burst=1.0, clock=clock,
        overrides={"vip": (100.0, 10.0)},
    )
    for _ in range(10):
        assert limiter.admit("vip").allowed
    assert not limiter.admit("vip").allowed
    assert limiter.admit("pleb").allowed
    assert not limiter.admit("pleb").allowed


def test_stats_block_is_deterministic():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate_per_s=1.0, burst=2.0, clock=clock)
    limiter.admit("a", "normal")
    limiter.admit("a", "normal")
    limiter.admit("a", "low")
    limiter.admit("b", "high")
    stats = limiter.stats()
    assert stats["rate_per_s"] == 1.0
    assert stats["burst"] == 2.0
    assert stats["admitted_total"] == 3
    assert stats["rejected_total"] == 1
    assert stats["tenants"]["a"]["admitted"] == 2
    assert stats["tenants"]["a"]["rejected"] == 1
    assert stats["tenants"]["a"]["rejected_by_class"] == {"low": 1}
    assert stats["tenants"]["a"]["tokens"] == 0.0
    assert stats["tenants"]["b"]["tokens"] == pytest.approx(1.5)


def test_default_burst_is_twice_the_rate():
    limiter = TenantRateLimiter(rate_per_s=25.0)
    assert limiter.burst == 50.0
