"""Tests for the metrics registry and Prometheus exposition
(`repro.obs.metrics`)."""

import threading

import pytest

from repro.obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    latency_summary,
    memory_snapshot,
    read_rss_bytes,
    validate_exposition,
)


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def test_counter_increments_monotonically():
    reg = MetricsRegistry()
    counter = reg.counter("jobs_total", "jobs")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    counter = reg.counter("jobs_total", "jobs")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_labels_are_independent_series():
    reg = MetricsRegistry()
    family = reg.counter("hits_total", "hits", labelnames=("tier",))
    family.labels("memory").inc(3)
    family.labels("disk").inc()
    assert family.labels("memory").value == 3
    assert family.labels("disk").value == 1


def test_wrong_label_arity_raises():
    reg = MetricsRegistry()
    family = reg.counter("hits_total", "hits", labelnames=("tier",))
    with pytest.raises(ValueError):
        family.labels()
    with pytest.raises(ValueError):
        family.labels("a", "b")


# ----------------------------------------------------------------------
# Gauges
# ----------------------------------------------------------------------
def test_gauge_set_and_arithmetic():
    reg = MetricsRegistry()
    gauge = reg.gauge("depth", "queue depth")
    gauge.set(10)
    assert gauge.value == 10.0


def test_gauge_callback_evaluated_at_read():
    state = {"n": 1}
    reg = MetricsRegistry()
    gauge = reg.gauge("live", "live value", fn=lambda: state["n"])
    assert gauge.value == 1
    state["n"] = 7
    assert gauge.value == 7


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_reregistration_returns_same_family():
    reg = MetricsRegistry()
    first = reg.counter("a_total", "a")
    second = reg.counter("a_total", "a")
    assert first is second


def test_reregistration_with_conflicting_shape_raises():
    reg = MetricsRegistry()
    reg.counter("a_total", "a")
    with pytest.raises(ValueError):
        reg.gauge("a_total", "now a gauge?")
    with pytest.raises(ValueError):
        reg.counter("a_total", "a", labelnames=("x",))


def test_invalid_metric_and_label_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("bad-name", "dashes are invalid")
    with pytest.raises(ValueError):
        reg.counter("ok_total", "bad label", labelnames=("le-gal?",))


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
def test_histogram_observe_and_percentiles():
    reg = MetricsRegistry()
    family = reg.histogram("lat_seconds", "latency",
                           labelnames=("priority_class",))
    child = family.labels("normal")
    for value in (0.01, 0.02, 0.04, 0.08, 1.0):
        child.observe(value)
    assert child.count == 5
    assert child.sum == pytest.approx(1.15)
    assert child.percentile(50) <= child.percentile(99)
    summary = child.summary()
    assert summary["count"] == 5
    assert summary["max"] == pytest.approx(1.0)


def test_latency_summary_maps_label_values():
    reg = MetricsRegistry()
    family = reg.histogram("lat_seconds", "latency",
                           labelnames=("priority_class",))
    family.labels("high").observe(0.5)
    doc = latency_summary(family)
    assert set(doc) == {"high"}
    assert doc["high"]["count"] == 1


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------
def test_render_is_valid_exposition():
    reg = MetricsRegistry()
    reg.counter("requests_total", "requests",
                labelnames=("status",)).labels("200").inc(3)
    reg.gauge("depth", "queue depth").set(2)
    hist = reg.histogram("wait_seconds", "queue wait",
                         labelnames=("priority_class",))
    hist.labels("normal").observe(0.005)
    hist.labels("normal").observe(0.5)
    text = reg.render()
    types = validate_exposition(text)
    assert types == {
        "requests_total": "counter",
        "depth": "gauge",
        "wait_seconds": "histogram",
    }
    assert 'requests_total{status="200"} 3' in text
    assert "# TYPE wait_seconds histogram" in text
    assert 'le="+Inf"' in text
    assert "wait_seconds_sum" in text and "wait_seconds_count" in text


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    hist = reg.histogram("h_seconds", "h")
    for value in (0.001, 0.002, 0.004, 0.008):
        hist.observe(value)
    lines = [
        line for line in reg.render().splitlines()
        if line.startswith("h_seconds_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    assert counts[-1] == 4  # +Inf bucket sees every observation


def test_unlabeled_families_render_zero_samples_immediately():
    # "counter absent" and "counter is zero" read very differently on a
    # dashboard, so unlabeled families materialize their child eagerly.
    reg = MetricsRegistry()
    reg.counter("c_total", "c")
    reg.histogram("h_seconds", "h")
    text = reg.render()
    validate_exposition(text)
    assert "c_total 0" in text
    assert 'h_seconds_bucket{le="+Inf"} 0' in text
    assert "h_seconds_count 0" in text


def test_labeled_family_with_no_children_is_valid_metadata():
    # A fresh server scrape can expose a labeled histogram before any
    # observation mints a child; that must still validate.
    reg = MetricsRegistry()
    reg.histogram("h_seconds", "h", labelnames=("priority_class",))
    text = reg.render()
    assert "# TYPE h_seconds histogram" in text
    validate_exposition(text)


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    family = reg.counter("c_total", "c", labelnames=("path",))
    family.labels('with"quote\nand\\slash').inc()
    text = reg.render()
    validate_exposition(text)
    assert r"\"quote" in text and r"\n" in text


def test_validate_exposition_rejects_garbage():
    with pytest.raises(ValueError):
        validate_exposition("this is { not } a metric line")
    with pytest.raises(ValueError):
        validate_exposition("# TYPE foo histogram\nfoo_sum 1\nfoo_count 1")


def test_content_type_is_prometheus_text():
    assert EXPOSITION_CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in EXPOSITION_CONTENT_TYPE


# ----------------------------------------------------------------------
# Memory accounting helpers
# ----------------------------------------------------------------------
def test_read_rss_is_positive_here():
    assert read_rss_bytes() > 0


def test_memory_snapshot_shape():
    doc = memory_snapshot()
    assert doc["rss_bytes"] > 0
    assert set(doc["tracemalloc"]) == {
        "enabled", "current_bytes", "peak_bytes"
    }


# ----------------------------------------------------------------------
# Concurrency smoke
# ----------------------------------------------------------------------
def test_concurrent_label_creation_is_safe():
    reg = MetricsRegistry()
    family = reg.counter("c_total", "c", labelnames=("worker",))

    def hammer(name):
        for _ in range(200):
            family.labels(name).inc()

    threads = [
        threading.Thread(target=hammer, args=(f"w{i % 4}",))
        for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = sum(child.value for _, child in family.items())
    assert total == 8 * 200


# ----------------------------------------------------------------------
# Exposition parsing (the consumer half of promtool-lite)
# ----------------------------------------------------------------------
def test_parse_samples_keys_on_name_plus_labels():
    from repro.obs.metrics import parse_samples

    text = (
        "# HELP x_total things\n"
        "# TYPE x_total counter\n"
        "x_total 3\n"
        'y_total{tier="memory"} 2\n'
        'y_total{tier="disk"} 1.5\n'
    )
    samples = parse_samples(text)
    assert samples["x_total"] == 3.0
    assert samples['y_total{tier="memory"}'] == 2.0
    assert samples['y_total{tier="disk"}'] == 1.5


def test_parse_samples_rejects_garbage():
    from repro.obs.metrics import parse_samples

    with pytest.raises(ValueError, match="malformed sample"):
        parse_samples("not a metric line at all!")


def test_family_total_sums_children_without_prefix_bleed():
    from repro.obs.metrics import family_total, parse_samples

    text = (
        'x_total{a="1"} 2\n'
        'x_total{a="2"} 3\n'
        "x_total_created 99\n"  # different family; must not count
        "x_total 1\n"
    )
    samples = parse_samples(text)
    assert family_total(samples, "x_total") == 6.0
    assert family_total(samples, "missing_total") == 0.0


def test_parse_samples_round_trips_a_real_registry():
    from repro.obs.metrics import family_total, parse_samples

    registry = MetricsRegistry()
    counter = registry.counter("rt_total", "x", labelnames=("k",))
    counter.labels("a").inc(2)
    counter.labels("b").inc(3)
    samples = parse_samples(registry.render())
    assert family_total(samples, "rt_total") == 5.0
