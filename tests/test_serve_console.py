"""Tests for the live fleet pressure console (`repro.serve.console`)."""

import io

from repro.serve.client import ServeClient
from repro.serve.console import FleetConsole, render_stats
from repro.serve.http import ServeConfig
from repro.serve.testing import ServerThread

# A canned /v1/stats document shaped like SimulationServer.stats().
STATS = {
    "status": "ok",
    "uptime_s": 12.0,
    "queue": {
        "depth": 2, "capacity": 8, "enqueued_total": 10,
        "expired_total": 1, "cancelled_total": 0,
    },
    "workers": {
        "busy": 1, "pool_size": 2, "utilization": 0.5,
        "completed_total": 7, "failed_total": 1,
        "retries_total": 0, "crashes_total": 0,
    },
    "cache": {
        "entries": 5, "memory_bytes": 2048, "memory_budget_bytes": 4096,
        "hit_rate": 0.25, "memory_hits": 2, "disk_hits": 1,
        "misses": 9, "evictions": 3,
    },
    "memory": {
        "rss_bytes": 50 * 1024 * 1024,
        "tracemalloc": {
            "enabled": True,
            "current_bytes": 1024 * 1024,
            "peak_bytes": 2 * 1024 * 1024,
        },
        "cache_memory_bytes": 2048,
        "cache_budget_bytes": 4096,
    },
    "latency": {
        "queue_wait_s": {
            "normal": {"count": 7, "mean": 0.01, "p50": 0.01,
                       "p95": 0.02, "p99": 0.03, "max": 0.04},
        },
        "exec_s": {},
        "e2e_s": {},
    },
    "tenants": {
        "team-red": {
            "submitted": 8, "queued_now": 2, "exec_s": 3.5,
            "failure_rate": 0.125, "rogue_score": 0.83,
        },
        "default": {
            "submitted": 2, "queued_now": 0, "exec_s": 0.5,
            "failure_rate": 0.0, "rogue_score": 0.17,
        },
    },
    "recent": [
        {"id": "run-abc", "state": "running", "priority": 10,
         "tenant": "team-red", "scenario": "S-A", "policy": "LRU+CFS",
         "cache_hit": False},
        {"id": "run-xyz", "state": "done", "priority": 10,
         "tenant": "default", "scenario": "S-A", "policy": "LRU+CFS",
         "cache_hit": True},
    ],
}


def test_render_stats_shows_every_section():
    frame = render_stats(
        STATS,
        events=[("run-abc", "running", {}), ("run-abc", "sample",
                                             {"fps": 45.5})],
        base_url="http://127.0.0.1:9",
    )
    assert "repro-serve fleet console http://127.0.0.1:9" in frame
    assert "queue    depth 2/8" in frame
    assert "workers  busy 1/2" in frame
    assert "evictions 3" in frame
    assert "2.0 KiB / 4.0 KiB" in frame      # cache bytes vs budget
    assert "rss 50.0 MiB" in frame
    assert "tracemalloc 1.0 MiB (peak 2.0 MiB)" in frame
    assert "queue_wait_s" in frame and "p95=" in frame
    assert "team-red" in frame and "rogue  0.83" in frame
    assert "run-abc" in frame and "(cache)" in frame
    assert "fps=45.5" in frame


def test_render_stats_ranks_tenants_by_rogue_score():
    frame = render_stats(STATS)
    assert frame.index("team-red") < frame.index("default")


def test_render_stats_survives_minimal_document():
    # A nearly-empty stats doc (fresh server) renders without crashing.
    frame = render_stats({"status": "ok", "uptime_s": 0.0})
    assert "repro-serve fleet console" in frame
    assert "queue" in frame


def test_render_stats_unbounded_budget_label():
    stats = dict(STATS)
    stats["cache"] = dict(STATS["cache"], memory_budget_bytes=None)
    assert "unbounded" in render_stats(stats)


def test_console_frames_against_live_server():
    config = ServeConfig(port=0, workers=1)
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        client.run({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 2.0, "seed": 60,
        }, timeout_s=120.0)
        out = io.StringIO()
        console = FleetConsole(client, every_s=0.1, plain=True, out=out)
        assert console.run(iterations=2) == 0
        text = out.getvalue()
        assert "repro-serve fleet console" in text
        assert "workers  busy" in text
        assert "\x1b[2J" not in text  # plain mode: no ANSI clears


def test_console_reports_unreachable_server():
    client = ServeClient("http://127.0.0.1:1")  # nothing listens here
    out = io.StringIO()
    console = FleetConsole(client, every_s=0.1, plain=True, out=out)
    assert console.run(iterations=1) == 0
    assert "unreachable" in out.getvalue()
