"""Tests for the vmstat counters."""

from repro.kernel.vmstat import VmStat


def test_pgsteal_sums_both_sources():
    vm = VmStat()
    vm.pgsteal_kswapd = 10
    vm.pgsteal_direct = 5
    assert vm.pgsteal == 15


def test_refault_ratio():
    vm = VmStat()
    vm.pgsteal_kswapd = 100
    vm.refault_total = 39
    assert vm.refault_ratio == 0.39


def test_refault_ratio_zero_when_no_reclaim():
    assert VmStat().refault_ratio == 0.0


def test_bg_refault_share():
    vm = VmStat()
    vm.refault_total = 100
    vm.refault_bg = 65
    assert vm.bg_refault_share == 0.65


def test_bg_refault_share_zero_when_no_refaults():
    assert VmStat().bg_refault_share == 0.0


def test_snapshot_and_delta():
    vm = VmStat()
    vm.pgfault = 5
    snap = vm.snapshot()
    vm.pgfault = 12
    vm.pswpin = 3
    delta = vm.delta_since(snap)
    assert delta["pgfault"] == 7
    assert delta["pswpin"] == 3
    assert delta["pgsteal_kswapd"] == 0


def test_snapshot_is_detached_copy():
    vm = VmStat()
    snap = vm.snapshot()
    vm.pgfault = 99
    assert snap["pgfault"] == 0


def test_reset_zeroes_everything_with_types_preserved():
    vm = VmStat()
    vm.pgfault = 7
    vm.direct_reclaim_stall_ms = 3.5
    vm.reset()
    assert vm.pgfault == 0
    assert vm.direct_reclaim_stall_ms == 0.0
    assert isinstance(vm.pgfault, int)
    assert isinstance(vm.direct_reclaim_stall_ms, float)


def test_typed_copy_is_detached():
    vm = VmStat()
    vm.pgsteal_kswapd = 10
    snap = vm.copy()
    vm.pgsteal_kswapd = 25
    assert snap.pgsteal_kswapd == 10
    assert isinstance(snap, VmStat)


def test_typed_delta_keeps_derived_properties():
    vm = VmStat()
    vm.pgsteal_kswapd = 100
    vm.pgsteal_direct = 20
    vm.refault_total = 30
    vm.refault_bg = 18
    before = vm.copy()
    vm.pgsteal_kswapd += 50
    vm.pgsteal_direct += 10
    vm.refault_total += 12
    vm.refault_bg += 6
    vm.direct_reclaim_stall_ms += 3.5
    delta = vm.delta(before)
    assert isinstance(delta, VmStat)
    assert delta.pgsteal_kswapd == 50
    assert delta.pgsteal == 60  # derived property works on the delta
    assert delta.refault_total == 12
    assert delta.bg_refault_share == 0.5
    assert delta.direct_reclaim_stall_ms == 3.5
    # The originals are untouched.
    assert vm.pgsteal == 180
    assert before.pgsteal == 120
