"""End-to-end fleet tests: coordinator + real nodes over real sockets.

Everything here runs in-process (daemon-thread event loops via
repro.fleet.testing) but over genuine HTTP: registration, heartbeats,
consistent-hash proxying, shared-store cache answers, rate limiting,
heartbeat-timeout eviction with in-flight resubmission, and the SSE
cursor-reconnect protocol.
"""

import http.client
import json
import time

import pytest

from repro.fleet.coordinator import CoordinatorConfig
from repro.fleet.loadtest import LoadtestConfig, generate_mix, run_level
from repro.fleet.testing import CoordinatorThread, FleetNodeThread
from repro.obs.metrics import family_total, parse_samples
from repro.serve.client import QueueFullError, ServeClient
from repro.serve.http import ServeConfig
from repro.serve.testing import ServerThread


def _node_config(store, node_id, **overrides):
    base = dict(
        port=0, workers=1, cache_dir=str(store), node_id=node_id,
        drain_grace_s=5.0,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _wait_for_nodes(client, count, timeout_s=15.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if client.healthz()["nodes_alive"] == count:
            return
        time.sleep(0.05)
    raise TimeoutError(f"fleet never reached {count} live nodes")


@pytest.fixture
def fleet(tmp_path):
    """Coordinator + 2 nodes sharing one content-addressed store."""
    store = tmp_path / "store"
    store.mkdir()
    coord = CoordinatorThread(CoordinatorConfig(
        port=0, heartbeat_timeout_s=1.0, sweep_interval_s=0.2,
    ))
    coord.start()
    nodes = [
        FleetNodeThread(
            _node_config(store, f"n{i}"), coord.base_url,
            heartbeat_interval_s=0.2,
        ).start()
        for i in (1, 2)
    ]
    client = ServeClient(coord.base_url)
    _wait_for_nodes(client, 2)
    try:
        yield coord, nodes, client, store
    finally:
        for node in nodes:
            node.stop(timeout_s=15.0)
        coord.stop(timeout_s=15.0)


# ----------------------------------------------------------------------
# Routing + shared store
# ----------------------------------------------------------------------
def test_fleet_serves_mixed_tenant_mix_without_loss(fleet, tmp_path):
    coord, nodes, client, store = fleet
    config = LoadtestConfig(
        base_url=coord.base_url, requests=24, concurrency=4, seed=11,
        duplicate_fraction=0.3, wait_timeout_s=120.0,
    )
    mix = generate_mix(config)
    # Shrink the work so the whole mix clears in seconds.
    for payload in mix:
        payload["seconds"] = 20.0
    level = run_level(config, mix, config.concurrency)
    records = level.pop("_records")
    assert level["lost"] == 0
    assert level["duplicated"] == 0
    assert level["errors"] == 0
    assert level["completed"] == 24
    assert level["cache_hits"] > 0  # the duplicate fraction did its job

    # Zero lost also from the fleet's own accounting.
    stats = client.stats()
    assert stats["jobs"]["submitted_total"] == 24
    assert stats["jobs"]["in_flight"] == 0

    # Both nodes actually served traffic (consistent-hash spread).
    owners = {client.get(r.job_id)["node"] for r in records}
    assert owners == {"n1", "n2"}

    # Results are bit-identical to a standalone single-node serve.
    probe = dict(records[0].payload)
    fleet_result = client.get(records[0].job_id)["result"]
    solo_store = tmp_path / "solo"
    solo_store.mkdir()
    with ServerThread(ServeConfig(
        port=0, workers=1, cache_dir=str(solo_store)
    )) as solo:
        solo_result = ServeClient(solo.base_url).run(
            probe, timeout_s=120.0
        )["result"]
    assert solo_result == fleet_result


def test_cache_hit_answered_by_non_originating_node(fleet):
    coord, nodes, client, store = fleet
    payload = {
        "scenario": "S-A", "bg_case": "bg-null",
        "seconds": 20.0, "seed": 901, "tenant": "cross",
    }
    job = client.submit(payload)
    final = client.wait(job["id"], timeout_s=120.0)
    assert final["state"] == "done"
    origin = final["node"]
    other = next(n for n in nodes if n.config.node_id != origin)

    # The other node never ran this request, yet answers it terminally
    # from the shared store on submission.
    cross = ServeClient(other.base_url).submit(payload)
    assert cross["state"] == "done"
    assert cross["cache_hit"] is True
    assert cross["result"] == final["result"]

    # Same submission through the coordinator routes to the origin and
    # is a cache hit there too.
    again = client.submit(payload)
    assert again["state"] == "done"
    assert again["cache_hit"] is True
    assert again["node"] == origin


def test_killed_node_is_evicted_and_inflight_jobs_resubmitted(fleet):
    coord, nodes, client, store = fleet
    # Submit slow jobs until both nodes hold an in-flight one, so the
    # kill below is guaranteed to orphan something (routing is by
    # content, so which node gets which seed isn't ours to pick).
    placed = {}
    seed = 5000
    while len(placed) < 2:
        job = client.submit({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 1500.0, "seed": seed, "tenant": "failover",
        })
        placed.setdefault(job["node"], job["id"])
        seed += 1
    victim = next(n for n in nodes if n.config.node_id in placed)
    victim_id = victim.config.node_id
    orphan = placed[victim_id]

    victim.kill()
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        stats = client.stats()
        if (
            stats["evictions"]["nodes_evicted_total"] >= 1
            and stats["jobs"]["resubmitted_total"] >= 1
        ):
            break
        time.sleep(0.1)
    stats = client.stats()
    assert stats["evictions"]["nodes_evicted_total"] >= 1
    assert stats["jobs"]["resubmitted_total"] >= 1
    assert client.healthz()["nodes_alive"] == 1

    # The orphaned job id keeps resolving and completes on a survivor.
    final = client.wait(orphan, timeout_s=120.0)
    assert final["state"] == "done"
    assert final["id"] == orphan
    assert final["node"] != victim_id

    # Eviction removed the dead node's up-series but kept the
    # survivor's.
    samples = parse_samples(client.metrics_text())
    ups = [
        key for key in samples
        if key.startswith("repro_fleet_node_up{")
    ]
    assert f'repro_fleet_node_up{{node="{victim_id}"}}' not in samples
    assert len(ups) == 1


# ----------------------------------------------------------------------
# Rate limiting
# ----------------------------------------------------------------------
def test_coordinator_ratelimits_with_retry_after(tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    with CoordinatorThread(CoordinatorConfig(
        port=0, heartbeat_timeout_s=5.0, sweep_interval_s=1.0,
        ratelimit_rps=0.5, ratelimit_burst=2.0,
    )) as coord:
        node = FleetNodeThread(
            _node_config(store, "n1"), coord.base_url,
            heartbeat_interval_s=0.2,
        ).start()
        try:
            client = ServeClient(coord.base_url)
            _wait_for_nodes(client, 1)
            payload = {
                "scenario": "S-A", "bg_case": "bg-null",
                "seconds": 20.0, "seed": 31, "tenant": "greedy",
            }
            assert client.submit(payload)["id"]
            assert client.submit(payload)["id"]  # burst of 2 spent
            with pytest.raises(QueueFullError) as exc_info:
                client.submit(payload)
            body = exc_info.value.body
            assert body["ratelimited"] is True
            assert body["tenant"] == "greedy"
            assert exc_info.value.retry_after_s > 0

            # The Retry-After header is on the wire, not just the body.
            conn = http.client.HTTPConnection(
                client.host, client.port, timeout=10.0
            )
            try:
                conn.request(
                    "POST", "/v1/runs", body=json.dumps(payload),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
                assert response.status == 429
                assert int(response.getheader("Retry-After")) >= 1
            finally:
                conn.close()

            # stats <-> metrics agreement for the new families.
            stats = client.stats()
            assert stats["ratelimit"]["rejected_total"] == 2
            assert (
                stats["ratelimit"]["tenants"]["greedy"]["rejected"] == 2
            )
            text = client.metrics_text()
            assert family_total(
                parse_samples(text), "repro_fleet_ratelimited_total"
            ) == 2
        finally:
            node.stop(timeout_s=15.0)


def test_node_side_ratelimit_and_misroute_counter(tmp_path):
    config = ServeConfig(
        port=0, workers=1, cache_dir=str(tmp_path), node_id="lonely",
        ratelimit_rps=0.5, ratelimit_burst=1.0,
    )
    with ServerThread(config) as thread:
        client = ServeClient(thread.base_url)
        payload = {
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 20.0, "seed": 77, "tenant": "t",
        }
        assert client.submit(payload)["id"]
        with pytest.raises(QueueFullError) as exc_info:
            client.submit(payload)
        assert exc_info.value.retry_after_s > 0

        # A submission stamped for a different node still serves, but
        # bumps the misroute counter.  (Sleep past the rate limit.)
        time.sleep(2.1)
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=10.0
        )
        try:
            conn.request(
                "POST", "/v1/runs", body=json.dumps(payload),
                headers={
                    "Content-Type": "application/json",
                    "X-Repro-Route-Node": "somebody-else",
                },
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status in (200, 202)
            client.wait(doc["id"], timeout_s=120.0)
        finally:
            conn.close()

        stats = client.stats()
        assert stats["fleet"]["node_id"] == "lonely"
        assert stats["fleet"]["misrouted_total"] == 1
        assert stats["ratelimit"]["rejected_total"] == 1
        samples = parse_samples(client.metrics_text())
        assert family_total(samples, "repro_fleet_misrouted_total") == 1
        assert family_total(samples, "repro_fleet_ratelimited_total") == 1


def test_events_follow_through_coordinator_redirect(fleet):
    # The coordinator answers /events with a 307 to the owning node;
    # the client must chase it and stream the real history.
    coord, nodes, client, store = fleet
    job = client.submit({
        "scenario": "S-A", "bg_case": "bg-null",
        "seconds": 60.0, "seed": 402, "tenant": "sse",
    })
    events = list(client.follow(job["id"], timeout_s=120.0))
    kinds = [event for event, _ in events]
    assert kinds[-1] == "done"
    assert "queued" in kinds or "started" in kinds
    # Cursor resume rides through the redirect too (the coordinator
    # forwards ?cursor=N in the Location it hands back).
    tail = list(client.events(job["id"], timeout_s=60.0, cursor=1))
    assert [e for e, _ in tail] == kinds[1:]


# ----------------------------------------------------------------------
# SSE cursors + follow()
# ----------------------------------------------------------------------
def test_sse_cursor_resumes_mid_history(tmp_path):
    with ServerThread(ServeConfig(
        port=0, workers=1, cache_dir=str(tmp_path)
    )) as thread:
        client = ServeClient(thread.base_url)
        job = client.submit({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 60.0, "seed": 55,
        }, progress_interval_ms=5000.0)
        full = list(client.events(job["id"], timeout_s=120.0))
        assert len(full) >= 3  # queued, started, ..., done
        assert full[-1][0] == "done"

        # Resuming from cursor=2 replays exactly the tail.
        tail = list(client.events(job["id"], timeout_s=60.0, cursor=2))
        assert tail == full[2:]

        # A cursor past the end of a terminal job yields nothing and
        # closes (this is what a reconnect-after-terminal looks like).
        empty = list(
            client.events(job["id"], timeout_s=60.0, cursor=len(full))
        )
        assert empty == []


def test_follow_survives_a_dropped_connection(tmp_path):
    with ServerThread(ServeConfig(
        port=0, workers=1, cache_dir=str(tmp_path)
    )) as thread:
        class FlakyClient(ServeClient):
            """Kills the first stream after one event, like a mid-run
            socket reset; follow() must resume from its cursor."""

            drops_left = 1

            def _events_once(self, job_id, cursor, timeout_s):
                count = 0
                for item in super()._events_once(
                    job_id, cursor, timeout_s
                ):
                    yield item
                    count += 1
                    if count >= 1 and FlakyClient.drops_left > 0:
                        FlakyClient.drops_left -= 1
                        raise ConnectionResetError("injected drop")

        steady = ServeClient(thread.base_url)
        job = steady.submit({
            "scenario": "S-A", "bg_case": "bg-null",
            "seconds": 60.0, "seed": 56,
        }, progress_interval_ms=5000.0)
        expected = list(steady.events(job["id"], timeout_s=120.0))

        flaky = FlakyClient(thread.base_url)
        seen = list(flaky.follow(job["id"], timeout_s=120.0))
        # The drop cost a reconnect, not events: identical sequence,
        # nothing replayed, nothing missing.
        assert seen == expected
        assert FlakyClient.drops_left == 0
