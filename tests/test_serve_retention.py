"""Tests for terminal-job retention (`repro.serve.retention`)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.queue import Job, JobState
from repro.serve.retention import JobTable
from repro.serve.spec import RunRequest


def _job(job_id, state=JobState.DONE, events=0, **kwargs):
    job = Job(
        id=job_id,
        request=RunRequest(scenario="S-A", seconds=2.0),
        priority=10,
        submitted_at=0.0,
        **kwargs,
    )
    for i in range(events):
        job.add_event("sample", {"i": i})
    job.state = state
    if job.terminal:
        job.finished_at = 1.0
    return job


def _table(**kwargs):
    clock = kwargs.pop("clock", None) or (lambda: 100.0)
    return JobTable(clock=clock, **kwargs)


# ----------------------------------------------------------------------
# Basic registry behavior
# ----------------------------------------------------------------------
def test_lookup_distinguishes_live_evicted_unknown():
    table = _table(budget_bytes=1, min_retention_s=0.0)
    live = _job("live", state=JobState.RUNNING)
    table.add(live)
    done = _job("done")
    table.add(done)
    table.note_terminal(done)  # budget of 1 byte evicts immediately

    job, tombstone = table.lookup("live")
    assert job is live and tombstone is None
    job, tombstone = table.lookup("done")
    assert job is None and tombstone["id"] == "done"
    assert tombstone["evicted"] is True
    job, tombstone = table.lookup("never-seen")
    assert job is None and tombstone is None


def test_running_jobs_are_never_evicted():
    table = _table(budget_bytes=1, min_retention_s=0.0)
    running = _job("running", state=JobState.RUNNING)
    table.add(running)
    table.note_terminal(running)  # not terminal: must be a no-op
    assert table.terminal_bytes == 0
    assert table.gc() == 0
    assert table.get("running") is running


def test_note_terminal_is_idempotent():
    table = _table(budget_bytes=None)
    job = _job("once")
    table.add(job)
    table.note_terminal(job)
    cost = table.terminal_bytes
    assert cost > 0
    table.note_terminal(job)
    assert table.terminal_bytes == cost


# ----------------------------------------------------------------------
# Budgeted GC
# ----------------------------------------------------------------------
def test_gc_evicts_oldest_terminal_jobs_until_budget_holds():
    table = _table(budget_bytes=10_000, min_retention_s=0.0)
    jobs = [_job(f"j{i}") for i in range(50)]
    for job in jobs:
        table.add(job)
        table.note_terminal(job)
    assert table.terminal_bytes <= 10_000
    assert table.evicted_total > 0
    # Eviction is strictly oldest-first: the survivors are a suffix.
    survivors = [job.id for job in jobs if job.id in table]
    assert survivors == [f"j{i}" for i in range(50 - len(survivors), 50)]
    # Every evicted job answers via its tombstone.
    for job in jobs:
        if job.id not in table:
            _, tombstone = table.lookup(job.id)
            assert tombstone is not None
            assert tombstone["state"] == JobState.DONE


def test_min_retention_window_defers_eviction():
    now = [100.0]
    table = JobTable(
        budget_bytes=1, min_retention_s=30.0, clock=lambda: now[0]
    )
    job = _job("fresh")
    table.add(job)
    table.note_terminal(job)
    # Over budget but inside the window: retained.
    assert table.gc() == 0
    assert "fresh" in table
    now[0] = 131.0  # window passed; the next tick may evict
    assert table.gc() == 1
    assert "fresh" not in table
    _, tombstone = table.lookup("fresh")
    assert tombstone is not None


def test_unbounded_table_never_evicts():
    table = _table(budget_bytes=None)
    for i in range(20):
        job = _job(f"j{i}")
        table.add(job)
        table.note_terminal(job)
    assert table.gc() == 0
    assert len(table) == 20
    assert table.evicted_total == 0


def test_event_heavy_jobs_cost_more():
    table = _table(budget_bytes=None)
    small = _job("small")
    table.add(small)
    table.note_terminal(small)
    small_cost = table.terminal_bytes
    noisy = _job("noisy", events=200)
    table.add(noisy)
    table.note_terminal(noisy)
    assert table.terminal_bytes - small_cost > small_cost


def test_tombstones_are_bounded():
    table = _table(budget_bytes=1, min_retention_s=0.0, tombstone_limit=3)
    for i in range(10):
        job = _job(f"j{i}")
        table.add(job)
        table.note_terminal(job)
    assert table.stats()["tombstones"] <= 3
    assert table.tombstones_dropped_total >= 6
    # The newest tombstones survive; the oldest were dropped.
    assert table.lookup("j9")[1] is not None
    assert table.lookup("j0")[1] is None


def test_metrics_registry_integration():
    registry = MetricsRegistry()
    table = JobTable(
        budget_bytes=1, min_retention_s=0.0, clock=lambda: 5.0,
        registry=registry,
    )
    job = _job("gone")
    table.add(job)
    table.note_terminal(job)
    text = registry.render()
    assert "repro_serve_jobs_evicted_total 1" in text
    assert "repro_serve_job_tombstones 1" in text


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        JobTable(budget_bytes=0)
    with pytest.raises(ValueError):
        JobTable(min_retention_s=-1.0)
    with pytest.raises(ValueError):
        JobTable(tombstone_limit=-1)


# ----------------------------------------------------------------------
# Per-job event cap
# ----------------------------------------------------------------------
def test_job_event_cap_drops_oldest_and_tracks_base():
    dropped_ticks = []
    job = Job(
        id="capped",
        request=RunRequest(scenario="S-A", seconds=2.0),
        priority=10,
        submitted_at=0.0,
        max_events=3,
        on_event_dropped=lambda: dropped_ticks.append(1),
    )
    for i in range(7):
        job.add_event("sample", {"i": i})
    assert len(job.events) == 3
    assert [e["data"]["i"] for e in job.events] == [4, 5, 6]
    assert job.events_base == 4
    assert job.events_dropped == 4
    assert len(dropped_ticks) == 4
    assert job.snapshot()["events_dropped"] == 4


def test_job_without_cap_keeps_every_event():
    job = _job("uncapped", state=JobState.QUEUED, events=100)
    assert len(job.events) == 100
    assert job.events_base == 0
    assert job.events_dropped == 0
