"""Tests for the page-fault path and refault classification."""

import pytest

from repro.kernel.page import HeapKind, Page, PageKind

from tests.conftest import make_pages


def evict_all(mm, pages):
    mm.make_resident_bulk(pages)
    for page in pages:
        mm.lru.discard(page)
        mm._evict_page(page, now=0.0)


def test_first_touch_anon_is_minor(mm, fault_handler):
    page = make_pages(1)[0]
    outcome = fault_handler.handle(page, pid=1, uid=1, foreground=True)
    assert page.present
    assert not outcome.major
    assert outcome.refault is None
    assert mm.vmstat.pgfault == 1
    assert mm.vmstat.pgmajfault == 0


def test_first_touch_file_reads_flash(mm, fault_handler):
    page = make_pages(1, kind=PageKind.FILE)[0]
    outcome = fault_handler.handle(page, pid=1, uid=1, foreground=True)
    assert outcome.major
    assert outcome.io_complete_at is not None
    assert mm.vmstat.filein == 1


def test_anon_refault_decompresses_from_zram(mm, fault_handler, clock):
    page = make_pages(1)[0]
    evict_all(mm, [page])
    clock.advance(10.0)
    outcome = fault_handler.handle(page, pid=1, uid=1, foreground=False)
    assert outcome.refault is not None
    assert outcome.major
    assert outcome.service_ms >= mm.zram.decompress_ms
    assert mm.vmstat.pswpin == 1
    assert mm.vmstat.refault_anon == 1


def test_file_refault_reads_flash(mm, fault_handler):
    page = make_pages(1, kind=PageKind.FILE)[0]
    evict_all(mm, [page])
    outcome = fault_handler.handle(page, pid=1, uid=1, foreground=False)
    assert outcome.refault is not None
    assert outcome.io_complete_at is not None
    assert mm.vmstat.refault_file == 1


def test_refault_classified_foreground(mm, fault_handler):
    page = make_pages(1)[0]
    evict_all(mm, [page])
    fault_handler.handle(page, pid=1, uid=1, foreground=True)
    assert mm.vmstat.refault_fg == 1
    assert mm.vmstat.refault_bg == 0


def test_refault_classified_background(mm, fault_handler):
    page = make_pages(1)[0]
    evict_all(mm, [page])
    fault_handler.handle(page, pid=1, uid=1, foreground=False)
    assert mm.vmstat.refault_bg == 1


def test_java_vs_native_heap_accounting(mm, fault_handler):
    java = Page(kind=PageKind.ANON, owner=None, heap=HeapKind.JAVA)
    native = Page(kind=PageKind.ANON, owner=None, heap=HeapKind.NATIVE)
    evict_all(mm, [java, native])
    fault_handler.handle(java, pid=1, uid=1, foreground=False)
    fault_handler.handle(native, pid=1, uid=1, foreground=False)
    assert mm.vmstat.refault_java_heap == 1
    assert mm.vmstat.refault_native_heap == 1


def test_refaulted_page_enters_active_list(mm, fault_handler):
    page = make_pages(1)[0]
    evict_all(mm, [page])
    fault_handler.handle(page, pid=1, uid=1, foreground=False)
    assert page.lru is not None
    assert "active" in page.lru.value


def test_spurious_fault_on_present_page_is_cheap(mm, fault_handler):
    page = make_pages(1)[0]
    mm.make_resident(page)
    before = mm.vmstat.pgfault
    outcome = fault_handler.handle(page, pid=1, uid=1, foreground=True)
    assert mm.vmstat.pgfault == before
    assert outcome.service_ms == fault_handler.FAULT_OVERHEAD_MS


def test_refault_event_published_to_observers(mm, fault_handler):
    seen = []
    mm.workingset.subscribe(seen.append)
    page = make_pages(1)[0]
    evict_all(mm, [page])
    fault_handler.handle(page, pid=77, uid=10077, foreground=False)
    assert len(seen) == 1
    assert seen[0].pid == 77
    assert seen[0].uid == 10077


def test_blocking_ms_combines_cpu_and_io(mm, fault_handler, clock):
    page = make_pages(1, kind=PageKind.FILE)[0]
    outcome = fault_handler.handle(page, pid=1, uid=1, foreground=True)
    blocking = outcome.blocking_ms(clock.now)
    assert blocking >= mm.flash.spec.read_ms


def test_write_fault_dirties_file_page(mm, fault_handler):
    page = make_pages(1, kind=PageKind.FILE)[0]
    fault_handler.handle(page, pid=1, uid=1, foreground=True, write=True)
    assert page.dirty
