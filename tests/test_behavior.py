"""Tests for background behaviour generation."""

import pytest

from repro.android.app import AppState
from repro.apps.behavior import PageSampler, TOUCH_CHUNK_PAGES, submit_touch
from repro.apps.catalog import get_profile
from repro.sched.task import Task
from repro.sim.rng import RngStream
from repro.system import MobileSystem

from tests.conftest import make_small_spec

GIB = 1024 * 1024 * 1024


@pytest.fixture
def staged():
    """Two apps: Skype FG, WhatsApp cached in BG."""
    system = MobileSystem(spec=make_small_spec(ram_bytes=3 * GIB), seed=9)
    for package in ("WhatsApp", "Skype"):
        system.install_app(get_profile(package))
        record = system.launch(package, drive_frames=False)
        assert system.run_until_complete(record, timeout_s=180)
    return system


def sampler_for(system, package):
    app = system.get_app(package)
    return system.activity_manager.behaviors[app.main_process.pid].sampler


# ----------------------------------------------------------------------
# PageSampler
# ----------------------------------------------------------------------
def test_sampler_counts(staged):
    sampler = sampler_for(staged, "WhatsApp")
    assert len(sampler.all_pages) == len(sampler.java) + len(sampler.native) + len(sampler.file)
    assert sampler.hot_pages


def test_sample_respects_count(staged):
    sampler = sampler_for(staged, "WhatsApp")
    assert len(sampler.sample(50)) == 50


def test_sample_burst_mixes_segments(staged):
    sampler = sampler_for(staged, "WhatsApp")
    picks = sampler.sample_burst(300)
    kinds = {page.kind.value for page in picks}
    assert "file" in kinds and "anon" in kinds


def test_sample_gc_walks_java_only(staged):
    sampler = sampler_for(staged, "WhatsApp")
    picks = sampler.sample_gc(0.5)
    assert picks
    assert all(page.heap.value == "java" for page in picks)
    assert len(picks) == int(len(sampler.java) * 0.5)


def test_sample_segment_contiguous(staged):
    sampler = sampler_for(staged, "WhatsApp")
    picks = sampler.sample_segment(sampler.native, 10)
    ids = [page.page_id for page in picks]
    assert ids == sorted(ids)
    assert len(picks) == 10


# ----------------------------------------------------------------------
# submit_touch chunking
# ----------------------------------------------------------------------
def test_submit_touch_chunks_large_batches(staged):
    system = staged
    app = system.get_app("WhatsApp")
    process = app.main_process
    task = Task("probe", process=process)
    pages = sampler_for(system, "WhatsApp").sample(TOUCH_CHUNK_PAGES * 3 + 10)
    submit_touch(system, task, process, pages, cpu_ms=4.0, label="test")
    assert len(task.queue) == 4


def test_submit_touch_completion_on_last_chunk(staged):
    system = staged
    process = system.get_app("WhatsApp").main_process
    task = Task("probe", process=process)
    done = []
    pages = sampler_for(system, "WhatsApp").sample(TOUCH_CHUNK_PAGES + 1)
    submit_touch(system, task, process, pages, cpu_ms=2.0, label="t",
                 on_complete=lambda: done.append(1))
    items = list(task.queue)
    assert items[0].on_complete is None
    assert items[-1].on_complete is not None


def test_submit_touch_empty_pages_still_runs_cpu(staged):
    system = staged
    process = system.get_app("WhatsApp").main_process
    task = Task("probe", process=process)
    submit_touch(system, task, process, [], cpu_ms=2.0, label="t")
    assert len(task.queue) == 1
    assert task.queue[0].touch is None


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------
def test_bg_behavior_gated_off_for_foreground(staged):
    system = staged
    skype = system.get_app("Skype")  # FG
    behavior = system.activity_manager.behaviors[skype.main_process.pid]
    assert not behavior._can_act()


def test_bg_behavior_acts_when_cached(staged):
    system = staged
    whatsapp = system.get_app("WhatsApp")  # cached
    behavior = system.activity_manager.behaviors[whatsapp.main_process.pid]
    assert behavior._can_act()


def test_bg_behavior_gated_off_when_frozen(staged):
    system = staged
    whatsapp = system.get_app("WhatsApp")
    behavior = system.activity_manager.behaviors[whatsapp.main_process.pid]
    system.freezer.freeze(whatsapp.main_process.pid)
    assert not behavior._can_act()


def test_bg_behavior_gated_off_when_dead(staged):
    system = staged
    whatsapp = system.get_app("WhatsApp")
    behavior = system.activity_manager.behaviors[whatsapp.main_process.pid]
    system.kill_app(whatsapp)
    assert behavior._dead


def test_cached_app_generates_activity_over_time(staged):
    system = staged
    before = system.vmstat.pgfault
    system.run(seconds=10.0)
    assert system.vmstat.pgfault > before  # BG bursts touched pages
