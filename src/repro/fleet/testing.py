"""In-process fleet harnesses for tests and the CI smoke job.

Same pattern as :class:`repro.serve.testing.ServerThread`: each fleet
process (coordinator, node) runs a real asyncio listener on its own
daemon-thread event loop, so blocking test code exercises the exact
HTTP paths production traffic takes — registration, heartbeats,
routing, proxying, eviction — with nothing mocked out.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.serve.http import ServeConfig
from repro.fleet.coordinator import Coordinator, CoordinatorConfig
from repro.fleet.node import FleetNode


class _LoopThread:
    """One asyncio loop on a daemon thread with ready/stop signaling."""

    name = "repro-fleet-test"

    def __init__(self, startup_timeout_s: float = 30.0):
        self.startup_timeout_s = startup_timeout_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name=self.name, daemon=True
        )

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface startup/runtime failures
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:  # pragma: no cover - subclasses
        raise NotImplementedError

    def start(self):
        self._thread.start()
        if not self._ready.wait(timeout=self.startup_timeout_s):
            raise TimeoutError(f"{self.name} did not start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"{self.name} failed to start"
            ) from self._failure
        return self

    def call(self, fn, *args) -> None:
        """Run ``fn`` on the harness loop (thread-safe, fire-and-forget)."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(fn, *args)

    def join(self, timeout_s: float = 30.0) -> None:
        self._thread.join(timeout=timeout_s)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self, timeout_s: float = 30.0) -> None:  # pragma: no cover
        raise NotImplementedError


class CoordinatorThread(_LoopThread):
    """``with CoordinatorThread(config) as coord: ...``"""

    name = "repro-fleet-coordinator"

    def __init__(
        self,
        config: Optional[CoordinatorConfig] = None,
        startup_timeout_s: float = 30.0,
    ):
        super().__init__(startup_timeout_s)
        self.config = config or CoordinatorConfig(port=0)
        self.coordinator: Optional[Coordinator] = None

    @property
    def port(self) -> int:
        assert (
            self.coordinator is not None and self.coordinator.port is not None
        )
        return self.coordinator.port

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def _amain(self) -> None:
        self._loop = asyncio.get_event_loop()
        self.coordinator = Coordinator(self.config)
        await self.coordinator.start()
        self._ready.set()
        await self.coordinator.serve_forever()

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._loop is not None and self.coordinator is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.coordinator.request_shutdown
                )
            except RuntimeError:
                pass  # loop already closed
        self.join(timeout_s)


class FleetNodeThread(_LoopThread):
    """``with FleetNodeThread(config, coord_url) as node: ...``"""

    name = "repro-fleet-node"

    def __init__(
        self,
        config: ServeConfig,
        coordinator_url: str,
        heartbeat_interval_s: float = 0.25,
        startup_timeout_s: float = 30.0,
    ):
        super().__init__(startup_timeout_s)
        self.config = config
        self.coordinator_url = coordinator_url
        self.heartbeat_interval_s = heartbeat_interval_s
        self.node: Optional[FleetNode] = None

    @property
    def port(self) -> int:
        assert self.node is not None and self.node.port is not None
        return self.node.port

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def _amain(self) -> None:
        self._loop = asyncio.get_event_loop()
        self.node = FleetNode(
            self.config, self.coordinator_url,
            heartbeat_interval_s=self.heartbeat_interval_s,
        )
        await self.node.start()
        self._ready.set()
        await self.node.server.serve_forever()

    def kill(self) -> None:
        """Fault injection: die without deregistering (no drain)."""
        assert self._loop is not None and self.node is not None
        self._loop.call_soon_threadsafe(self.node.simulate_death)

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._loop is not None and self.node is not None:
            node = self.node

            def _begin_stop() -> None:
                asyncio.ensure_future(node.stop())

            try:
                self._loop.call_soon_threadsafe(_begin_stop)
            except RuntimeError:
                pass  # loop already closed
        self.join(timeout_s)
