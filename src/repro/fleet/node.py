"""A serve node that is a fleet member.

:class:`FleetNode` wraps a plain
:class:`~repro.serve.http.SimulationServer` with the two behaviors
membership requires: it registers with the coordinator at startup
(retrying until the coordinator exists — fleet bring-up order must not
matter) and heartbeats on a fixed interval forever after.  A heartbeat
answered with 404 means the coordinator evicted us (or restarted and
lost its table); the node simply re-registers and carries on — the
shared result store means nothing of value lived only in the
membership table.

The node's serve config should point ``cache_dir`` at the fleet's
shared store directory; that single shared disk tier is what lets any
node answer any cached run and makes failover resubmission idempotent.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.serve.http import ServeConfig, SimulationServer
from repro.fleet.transport import TransportError, async_request

DEFAULT_HEARTBEAT_INTERVAL_S = 2.0


class FleetNode:
    """One serve node plus its membership loop."""

    def __init__(
        self,
        config: ServeConfig,
        coordinator_url: str,
        advertise_url: Optional[str] = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ):
        if not config.node_id:
            raise ValueError("fleet membership requires config.node_id")
        self.server = SimulationServer(config)
        self.coordinator_url = coordinator_url.rstrip("/")
        self.advertise_url = advertise_url
        self.heartbeat_interval_s = heartbeat_interval_s
        self._member_task: Optional[asyncio.Task] = None
        self._dead = False  # fault injection: stop acting like a member

    @property
    def node_id(self) -> str:
        return self.server.config.node_id

    @property
    def port(self) -> Optional[int]:
        return self.server.port

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.server.start()
        if self.advertise_url is None:
            self.advertise_url = (
                f"http://{self.server.config.host}:{self.server.port}"
            )
        self._member_task = asyncio.ensure_future(self._membership_loop())

    async def _register(self) -> bool:
        try:
            status, _, _ = await async_request(
                "POST", f"{self.coordinator_url}/v1/nodes",
                {
                    "node_id": self.node_id,
                    "url": self.advertise_url,
                    "workers": self.server.config.workers,
                },
                timeout_s=5.0,
            )
            return status == 200
        except TransportError:
            return False

    async def _membership_loop(self) -> None:
        # Register first (retry until the coordinator answers), then
        # heartbeat; a 404 heartbeat drops us back to registering.
        registered = False
        while True:
            if not registered:
                registered = await self._register()
                if not registered:
                    await asyncio.sleep(min(1.0, self.heartbeat_interval_s))
                    continue
            await asyncio.sleep(self.heartbeat_interval_s)
            try:
                status, _, _ = await async_request(
                    "POST",
                    f"{self.coordinator_url}/v1/nodes/"
                    f"{self.node_id}/heartbeat",
                    {"node_id": self.node_id},
                    timeout_s=5.0,
                )
                if status == 404:
                    registered = False
            except TransportError:
                pass  # coordinator briefly away; keep beating

    # ------------------------------------------------------------------
    async def stop(self, deregister: bool = True) -> None:
        """Graceful leave: tell the coordinator, then drain the server."""
        if self._member_task is not None:
            self._member_task.cancel()
        if deregister and not self._dead:
            try:
                await async_request(
                    "DELETE",
                    f"{self.coordinator_url}/v1/nodes/{self.node_id}",
                    timeout_s=5.0,
                )
            except TransportError:
                pass
        self.server.request_shutdown()
        await self.server.serve_forever()

    def simulate_death(self) -> None:
        """Fault injection: vanish without a goodbye.

        Stops the heartbeat loop and closes the listener immediately —
        no drain, no deregistration — exactly what a kernel OOM kill or
        a yanked power cord looks like from the coordinator's side.
        The coordinator must notice via heartbeat timeout and resubmit
        this node's in-flight jobs.
        """
        self._dead = True
        if self._member_task is not None:
            self._member_task.cancel()
        if self.server._server is not None:
            self.server._server.close()


async def run_node(
    config: ServeConfig,
    coordinator_url: str,
    advertise_url: Optional[str] = None,
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ready=None,
) -> None:
    """Start a fleet node, announce readiness, serve until drained."""
    node = FleetNode(
        config, coordinator_url,
        advertise_url=advertise_url,
        heartbeat_interval_s=heartbeat_interval_s,
    )
    await node.start()
    node.server.install_signal_handlers()
    if ready is not None:
        ready(node)
    await node.server.serve_forever()
