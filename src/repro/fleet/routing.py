"""Consistent-hash routing of content addresses onto serve nodes.

The coordinator must send equal requests to the same node (so the
node's *memory* cache tier earns hits; the shared disk store already
makes any node able to answer) while spreading distinct requests
evenly — and it must keep both properties as nodes join and leave.

A consistent-hash ring does exactly that: each node owns ``vnodes``
pseudo-random points on a 64-bit circle, a key routes to the first
point clockwise of its own hash, and adding or removing one node only
remaps the keys that land in that node's arcs (~1/n of the keyspace)
instead of reshuffling everything the way ``hash(key) % n`` would.

The alternative — routing each request to the shortest queue — is
discussed in DESIGN.md: it wins on instantaneous balance but destroys
cache affinity, which for a content-addressed workload is the whole
point.  Queue imbalance is handled one layer up (the loadtest's
knee-of-curve sweep sizes the fleet; per-node backpressure sheds the
rest).

Hashes are :mod:`hashlib` sha256, *not* Python's ``hash()``: routing
must be identical across processes and interpreter runs (PYTHONHASHSEED
randomizes ``hash()``), because a node restarting must rebuild the
same ring every other fleet member computed.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional

DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """64-bit position on the ring, identical across processes."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring of named nodes.

    ``route(key)`` is O(log(nodes * vnodes)); ``add``/``remove`` are
    O(n) rebuilds of the sorted point list, which is fine at control
    plane rates (membership changes per minute, not per request).
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: List[int] = []       # sorted ring positions
        self._owners: List[str] = []       # owner node per position
        self._nodes: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> List[str]:
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    def add(self, node_id: str) -> None:
        """Add a node (idempotent) and claim its vnode arcs."""
        if not node_id:
            raise ValueError("node_id must be a non-empty string")
        if node_id in self._nodes:
            return
        points = [
            stable_hash(f"{node_id}#{i}") for i in range(self.vnodes)
        ]
        self._nodes[node_id] = points
        self._rebuild()

    def remove(self, node_id: str) -> bool:
        """Drop a node; returns False if it was not on the ring."""
        if self._nodes.pop(node_id, None) is None:
            return False
        self._rebuild()
        return True

    def _rebuild(self) -> None:
        pairs = sorted(
            (point, node_id)
            for node_id, points in self._nodes.items()
            for point in points
        )
        self._points = [point for point, _ in pairs]
        self._owners = [node_id for _, node_id in pairs]

    # ------------------------------------------------------------------
    def route(self, key: str) -> Optional[str]:
        """The node owning ``key``, or None on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0  # wrap: past the last point is the first owner
        return self._owners[index]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts: Dict[str, int] = {node_id: 0 for node_id in self._nodes}
        for key in keys:
            owner = self.route(key)
            if owner is not None:
                counts[owner] += 1
        return counts

    def stats(self) -> dict:
        return {
            "nodes": self.node_ids,
            "vnodes_per_node": self.vnodes,
            "points": len(self._points),
        }
