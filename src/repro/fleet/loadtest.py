"""``repro loadtest`` — synthetic RunRequest mixes against a fleet.

Replays a deterministic, seeded mix of submissions (tenants,
priorities, work sizes, deliberate duplicates for cache hits) against
a coordinator or a single serve node with a closed-loop client pool,
and emits a schema-versioned ``LOADTEST_<date>.json`` artifact:
throughput, per-priority-class p50/p95/p99, lost/duplicate accounting,
an optional knee-of-curve concurrency sweep, and a cross-check of the
measured latencies against an M/M/k processor-sharing queue model
(Pellegrini 2020 uses the same family of models to validate replayed
request-clone latencies; the gem5 reproducibility methodology is why
the artifact is versioned and re-runnable rather than a console dump).

The model: with ``k`` workers, arrival rate ``λ`` (measured), and mean
service time ``1/μ`` (measured over cache-miss executions), Erlang-C
gives the probability an arrival waits,

    P_wait = (a^k / k!) / ((1-ρ) Σ_{i<k} a^i/i! + a^k/k!),  a = λ/μ

and the expected sojourn time ``E[T] = 1/μ + P_wait / (kμ - λ)``.
A measured-to-model ratio near 1 says the fleet queues like an ideal
processor-sharing cluster; a large ratio localizes overhead in the
control plane rather than the workers.
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.serve.client import QueueFullError, ServeClient, ServeError
from repro.serve.spec import SPEC_VERSION

LOADTEST_SCHEMA_VERSION = 1

# Work sizes in simulated seconds (~260 sim-s per wall-s on a dev
# box): a mix of quick probes and meatier runs.
_WORK_SIZES = (20.0, 60.0, 120.0)
_PRIORITIES = (5, 10, 20)  # one per class: high / normal / low


@dataclass
class LoadtestConfig:
    base_url: str = "http://127.0.0.1:8090"
    requests: int = 200
    concurrency: int = 8
    seed: int = 42
    tenants: Sequence[str] = ("tenant-a", "tenant-b", "tenant-c")
    # Fraction of submissions that deliberately duplicate an earlier
    # one, exercising the content-addressed store (and, on a fleet,
    # cross-node cache answers).
    duplicate_fraction: float = 0.25
    # Concurrency levels for the knee-of-curve sweep ([] = skip).
    sweep: Sequence[int] = ()
    sweep_requests: int = 60
    wait_timeout_s: float = 300.0
    # Retries for 429 backpressure while submitting (the sweep pushes
    # levels past the knee on purpose, so rejections are expected).
    submit_retries: int = 6


def generate_mix(config: LoadtestConfig, salt: str = "") -> List[dict]:
    """A deterministic submission mix: same seed, same requests.

    ``salt`` uniquifies scenarios across sweep levels so each level
    measures compute, not the previous level's cache.
    """
    rng = random.Random(config.seed)
    payloads: List[dict] = []
    for i in range(config.requests):
        if payloads and rng.random() < config.duplicate_fraction:
            base = dict(rng.choice(payloads))
        else:
            base = {
                "scenario": "S-A",
                "bg_case": "bg-null",
                "seconds": rng.choice(_WORK_SIZES),
                "seed": 1000 + config.seed * 10000 + i + hash_salt(salt),
            }
        base["tenant"] = rng.choice(list(config.tenants))
        base["priority"] = rng.choice(_PRIORITIES)
        payloads.append(base)
    return payloads


def hash_salt(salt: str) -> int:
    """Small deterministic offset per sweep level (stable across runs)."""
    return sum(ord(c) * 131 ** n for n, c in enumerate(salt)) % 1_000_000


# ----------------------------------------------------------------------
# Closed-loop replay
# ----------------------------------------------------------------------
@dataclass
class _Record:
    payload: dict
    job_id: Optional[str] = None
    state: Optional[str] = None
    cache_hit: bool = False
    e2e_s: Optional[float] = None
    error: Optional[str] = None
    rejected: int = 0  # 429s absorbed before admission


def run_level(
    config: LoadtestConfig, payloads: List[dict], concurrency: int
) -> dict:
    """Replay ``payloads`` with ``concurrency`` closed-loop clients."""
    records = [_Record(payload=p) for p in payloads]
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker() -> None:
        client = ServeClient(config.base_url, timeout_s=config.wait_timeout_s)
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(records):
                    return
                cursor["next"] = index + 1
            record = records[index]
            start = time.monotonic()
            try:
                job = client.submit(
                    record.payload, retries=config.submit_retries
                )
                record.job_id = job["id"]
                if job["state"] in ("queued", "running"):
                    job = client.wait(
                        job["id"], timeout_s=config.wait_timeout_s
                    )
                record.state = job["state"]
                record.cache_hit = bool(
                    job.get("cache_hit") or job.get("cached")
                )
                record.e2e_s = time.monotonic() - start
            except (QueueFullError, ServeError, TimeoutError, OSError) as exc:
                record.error = f"{type(exc).__name__}: {exc}"

    started = time.monotonic()
    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = max(1e-9, time.monotonic() - started)

    done = [r for r in records if r.state == "done"]
    # Lost = admitted (we hold a job id) but never reached a terminal
    # snapshot; errors before admission are client-visible rejections,
    # not losses.
    lost = [
        r for r in records
        if r.job_id is not None
        and r.state not in ("done", "failed", "cancelled", "expired")
    ]
    ids = [r.job_id for r in records if r.job_id is not None]
    by_class: Dict[str, List[float]] = {}
    for r in done:
        cls = _priority_class(r.payload.get("priority", 10))
        by_class.setdefault(cls, []).append(r.e2e_s)
    return {
        "concurrency": concurrency,
        "requests": len(records),
        "completed": len(done),
        "failed": sum(1 for r in records if r.state == "failed"),
        "lost": len(lost),
        "duplicated": len(ids) - len(set(ids)),
        "errors": sum(1 for r in records if r.error is not None),
        "cache_hits": sum(1 for r in done if r.cache_hit),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(done) / wall_s, 3),
        "by_priority": {
            cls: _latency_doc(samples)
            for cls, samples in sorted(by_class.items())
        },
        "mean_e2e_s": _mean([r.e2e_s for r in done]),
        "miss_mean_e2e_s": _mean(
            [r.e2e_s for r in done if not r.cache_hit]
        ),
        "_records": records,  # stripped before serialization
    }


def _priority_class(priority: int) -> str:
    try:
        priority = int(priority)
    except (TypeError, ValueError):
        priority = 10
    if priority < 10:
        return "high"
    if priority == 10:
        return "normal"
    return "low"


def _mean(samples: List[Optional[float]]) -> Optional[float]:
    values = [s for s in samples if s is not None]
    return round(sum(values) / len(values), 4) if values else None


def _percentile(sorted_samples: List[float], q: float) -> float:
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1,
        max(0, math.ceil(q * len(sorted_samples)) - 1),
    )
    return sorted_samples[index]


def _latency_doc(samples: List[float]) -> dict:
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "mean_s": _mean(ordered),
        "p50_s": round(_percentile(ordered, 0.50), 4),
        "p95_s": round(_percentile(ordered, 0.95), 4),
        "p99_s": round(_percentile(ordered, 0.99), 4),
    }


# ----------------------------------------------------------------------
# M/M/k processor-sharing model
# ----------------------------------------------------------------------
def mmk_model(
    k: int, lambda_rps: float, mean_service_s: float
) -> Optional[dict]:
    """Erlang-C sojourn time for k servers; None when inputs degenerate.

    Saturated (ρ >= 1) systems have no steady state — the model doc
    says so explicitly instead of reporting a negative wait.
    """
    if k <= 0 or lambda_rps <= 0 or not mean_service_s:
        return None
    mu = 1.0 / mean_service_s
    a = lambda_rps / mu  # offered load in erlangs
    rho = a / k
    doc = {
        "kind": "mmk-processor-sharing",
        "k": k,
        "lambda_rps": round(lambda_rps, 4),
        "mean_service_s": round(mean_service_s, 4),
        "rho": round(rho, 4),
    }
    if rho >= 1.0:
        doc["saturated"] = True
        return doc
    # Erlang-C via the stable iterative form.
    term = 1.0
    inv_sum = 1.0  # i = 0 term
    for i in range(1, k):
        term *= a / i
        inv_sum += term
    term *= a / k
    p_wait = term / ((1.0 - rho) * inv_sum + term)
    expected = mean_service_s + p_wait / (k * mu - lambda_rps)
    doc.update({
        "p_wait": round(p_wait, 4),
        "expected_e2e_s": round(expected, 4),
    })
    return doc


def find_knee(sweep_results: List[dict], gain: float = 0.10) -> Optional[int]:
    """Last concurrency level that still bought ``gain`` more throughput.

    Past the knee, added concurrency only deepens queues (latency grows,
    throughput plateaus) — the sweep's reason to exist.
    """
    knee = None
    previous = 0.0
    for level in sweep_results:
        if previous <= 0 or level["throughput_rps"] >= previous * (1 + gain):
            knee = level["concurrency"]
        previous = level["throughput_rps"]
    return knee


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_loadtest(config: LoadtestConfig) -> dict:
    """Full loadtest: main level, optional sweep, model cross-check."""
    client = ServeClient(config.base_url)
    health = client.healthz()
    role = health.get("role", "node")
    workers = _fleet_workers(client, role)

    payloads = generate_mix(config)
    main = run_level(config, payloads, config.concurrency)
    records = main.pop("_records")

    sweep_docs: List[dict] = []
    for level in config.sweep:
        level_config = LoadtestConfig(
            **{**config.__dict__, "requests": config.sweep_requests}
        )
        level_payloads = generate_mix(level_config, salt=f"sweep-{level}")
        doc = run_level(level_config, level_payloads, level)
        doc.pop("_records")
        sweep_docs.append(doc)

    # Model the cache-miss subset: hits never touch a worker, so the
    # queue model's λ and service time both exclude them.
    misses = [
        r for r in records if r.state == "done" and not r.cache_hit
    ]
    miss_lambda = len(misses) / main["wall_s"]
    model = mmk_model(workers, miss_lambda, _service_time_estimate(records))
    measured = main["miss_mean_e2e_s"]
    if model is not None and measured and model.get("expected_e2e_s"):
        model["measured_e2e_s"] = measured
        model["measured_over_model"] = round(
            measured / model["expected_e2e_s"], 3
        )

    return {
        "schema_version": LOADTEST_SCHEMA_VERSION,
        "kind": "repro-loadtest",
        "spec_version": SPEC_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "target": {
            "base_url": config.base_url,
            "role": role,
            "workers": workers,
        },
        "config": {
            "requests": config.requests,
            "concurrency": config.concurrency,
            "seed": config.seed,
            "tenants": list(config.tenants),
            "duplicate_fraction": config.duplicate_fraction,
            "sweep": list(config.sweep),
            "sweep_requests": config.sweep_requests,
        },
        "results": main,
        "sweep": sweep_docs,
        "knee_concurrency": find_knee(sweep_docs) if sweep_docs else None,
        "model": model,
    }


def _service_time_estimate(records: List[_Record]) -> Optional[float]:
    """Mean service time ≈ fastest-quartile miss e2e (queue-wait-free).

    The loadtest sees sojourn times, not bare service times; the
    quickest misses waited least, so their mean approximates 1/μ
    without needing server-side exec histograms from every node.
    """
    samples = sorted(
        r.e2e_s for r in records
        if r.state == "done" and not r.cache_hit and r.e2e_s is not None
    )
    if not samples:
        return None
    quartile = samples[: max(1, len(samples) // 4)]
    return sum(quartile) / len(quartile)


def _fleet_workers(client: ServeClient, role: str) -> int:
    """Total worker slots behind the target (fleet-wide on a coordinator)."""
    try:
        stats = client.stats()
    except ServeError:
        return 1
    if role == "coordinator":
        return sum(
            node.get("workers", 1)
            for node in stats.get("nodes", [])
            if node.get("alive")
        ) or 1
    return stats.get("workers", {}).get("size", 1)


def config_from_args(args: argparse.Namespace) -> LoadtestConfig:
    sweep: Sequence[int] = ()
    if args.sweep:
        sweep = tuple(
            int(level) for level in args.sweep.split(",") if level.strip()
        )
    return LoadtestConfig(
        base_url=args.url,
        requests=args.requests,
        concurrency=args.concurrency,
        seed=args.seed,
        tenants=tuple(args.tenants.split(",")) if args.tenants
        else ("tenant-a", "tenant-b", "tenant-c"),
        duplicate_fraction=args.duplicate_fraction,
        sweep=sweep,
        sweep_requests=args.sweep_requests,
        wait_timeout_s=args.wait_timeout_s,
    )


def main(args: argparse.Namespace) -> int:
    config = config_from_args(args)
    report = run_loadtest(config)
    out_path = args.out
    if out_path is None:
        date = time.strftime("%Y-%m-%d", time.gmtime())
        out_path = f"LOADTEST_{date}.json"
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    results = report["results"]
    print(
        f"loadtest: {results['completed']}/{results['requests']} done, "
        f"{results['lost']} lost, {results['duplicated']} duplicated, "
        f"{results['cache_hits']} cache hits, "
        f"{results['throughput_rps']} req/s -> {out_path}",
        file=sys.stderr,
    )
    if report.get("knee_concurrency") is not None:
        print(
            f"loadtest: knee of curve at concurrency "
            f"{report['knee_concurrency']}",
            file=sys.stderr,
        )
    if results["lost"] or results["duplicated"]:
        return 1  # the fleet's core promise broke; fail loudly
    return 0
