"""A minimal asyncio JSON-over-HTTP client for intra-fleet calls.

The coordinator proxies submissions and polls to nodes, and nodes
register/heartbeat back to the coordinator — all from inside running
event loops, where ``urllib`` would block the loop for the duration of
a worker-bound request.  This module is the asyncio-streams
counterpart of the plumbing in :mod:`repro.serve.http`: HTTP/1.1, one
request per connection (``Connection: close``), JSON bodies only.

It is deliberately not a general HTTP client — no TLS, no redirects,
no chunked encoding — because fleet peers are the only servers it ever
talks to and they speak exactly this dialect.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit

DEFAULT_TIMEOUT_S = 10.0
_MAX_RESPONSE_BYTES = 8 << 20  # a full job doc with events fits easily


class TransportError(Exception):
    """Connection-level failure (refused, reset, timeout, bad HTTP)."""


async def async_request(
    method: str,
    url: str,
    doc: Optional[dict] = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], Optional[dict]]:
    """One JSON request; returns ``(status, headers, body_doc)``.

    ``body_doc`` is None for empty bodies; non-JSON bodies raise
    :class:`TransportError` (fleet peers always speak JSON).
    """
    parts = urlsplit(url)
    if parts.scheme != "http" or not parts.hostname:
        raise TransportError(f"unsupported url {url!r} (need http://host)")
    port = parts.port or 80
    target = parts.path or "/"
    if parts.query:
        target += "?" + parts.query
    body = b""
    if doc is not None:
        body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    request_lines = [
        f"{method} {target} HTTP/1.1",
        f"Host: {parts.hostname}:{port}",
        "Connection: close",
        f"Content-Length: {len(body)}",
    ]
    if doc is not None:
        request_lines.append("Content-Type: application/json")
    for name, value in (headers or {}).items():
        request_lines.append(f"{name}: {value}")
    wire = ("\r\n".join(request_lines) + "\r\n\r\n").encode("ascii") + body

    try:
        return await asyncio.wait_for(
            _roundtrip(parts.hostname, port, wire), timeout=timeout_s
        )
    except asyncio.TimeoutError:
        raise TransportError(
            f"timeout after {timeout_s}s talking to {parts.netloc}"
        ) from None
    except (ConnectionError, OSError) as exc:
        raise TransportError(f"{type(exc).__name__}: {exc}") from None


async def _roundtrip(
    host: str, port: int, wire: bytes
) -> Tuple[int, Dict[str, str], Optional[dict]]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(wire)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("ascii", "replace").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise TransportError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            raw = await reader.readexactly(min(int(length), _MAX_RESPONSE_BYTES))
        else:
            raw = await reader.read(_MAX_RESPONSE_BYTES)
        body: Optional[dict] = None
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TransportError(f"non-JSON response body: {exc}") from None
        return status, headers, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
