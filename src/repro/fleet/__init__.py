"""``repro.fleet`` — the sharded multi-node control plane.

Where :mod:`repro.serve` is one process (one queue, one worker fleet,
one cache), this package scales it out:

* :mod:`repro.fleet.routing` — a consistent-hash ring that maps
  ``RunRequest.cache_key``\\ s onto serve nodes, stable under node
  join/leave.
* :mod:`repro.fleet.ratelimit` — per-tenant token buckets with
  priority-class costs, enforced at admission (HTTP 429 +
  ``Retry-After``).
* :mod:`repro.fleet.coordinator` — the process serve nodes register
  with and heartbeat to; it tracks liveness, evicts dead nodes,
  routes submissions by content address, and resubmits the in-flight
  jobs of an evicted node.
* :mod:`repro.fleet.node` — a :class:`~repro.serve.http.SimulationServer`
  plus the registration/heartbeat loop that makes it a fleet member.
* :mod:`repro.fleet.loadtest` — ``repro loadtest``: replays synthetic
  ``RunRequest`` mixes against a coordinator or single node and emits
  a schema-versioned ``LOADTEST_<date>.json`` artifact cross-checked
  against an M/M/k processor-sharing queue model.

Everything is stdlib-only, like the serve plane it grows out of.
Submodules are imported lazily by their users so ``import repro.fleet``
stays cheap and cycle-free (the coordinator reuses the serve plane's
HTTP plumbing, while the serve plane borrows this package's rate
limiter).
"""
