"""Per-tenant token-bucket rate limits with priority-class costs.

Admission control for the fleet's front door: every tenant owns a
token bucket that refills continuously at ``rate_per_s`` up to
``burst`` tokens, and each submission spends tokens according to its
priority class before it may touch the queue.  A submission that finds
the bucket short is rejected with the exact number of seconds until
enough tokens exist — the HTTP layer turns that into a 429 with a
``Retry-After`` header, so well-behaved clients back off for precisely
as long as the bucket needs and no longer.

Priority classes map to token *costs*, not separate buckets: ``high``
traffic spends fewer tokens per request than ``low``, so under
pressure a tenant's budget naturally tilts toward its urgent work
while one shared bucket still bounds the tenant's total footprint.
(Two buckets per tenant would let a tenant saturate both classes at
once, which is the exact aggregate this limiter exists to cap.)

Time is injectable — tests drive a fake clock and get bit-exact token
arithmetic without sleeping — and the default clock is
``time.monotonic`` so wall-clock steps can never mint or burn tokens.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

DEFAULT_RATE_PER_S = 50.0
DEFAULT_BURST = 100.0

# Token cost per priority class.  `high` is deliberately cheaper than
# `normal`: an interactive probe should survive a tenant's own batch
# flood.  `low` pays double so bulk traffic drains the budget fastest.
DEFAULT_CLASS_COSTS = {"high": 0.5, "normal": 1.0, "low": 2.0}


@dataclass
class Decision:
    """One admission verdict, with everything the HTTP layer needs."""

    allowed: bool
    tenant: str
    priority_class: str
    cost: float
    tokens_left: float
    # Seconds until the bucket holds `cost` tokens again; 0 when
    # admitted.  This is the 429 Retry-After value.
    retry_after_s: float = 0.0


class TokenBucket:
    """One continuously refilling bucket (float tokens, no timers)."""

    __slots__ = ("rate_per_s", "burst", "_tokens", "_updated", "_clock")

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._tokens = float(burst)  # a fresh tenant starts full
        self._clock = clock
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate_per_s
            )
        self._updated = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Spend ``cost`` tokens; returns ``(allowed, retry_after_s)``.

        A rejection does not spend anything (no partial debits), so a
        rejected client retrying after the advertised interval finds
        the tokens it was promised.
        """
        if cost < 0:
            raise ValueError("cost must be >= 0")
        self._refill()
        if cost <= self._tokens:
            self._tokens -= cost
            return True, 0.0
        return False, (cost - self._tokens) / self.rate_per_s


@dataclass
class _TenantLedger:
    bucket: TokenBucket
    admitted: int = 0
    rejected: int = 0
    rejected_by_class: Dict[str, int] = field(default_factory=dict)


class TenantRateLimiter:
    """Per-tenant buckets behind one ``admit()`` call.

    ``overrides`` grants specific tenants their own (rate, burst) —
    a paid tier, or a deliberately throttled batch account — while
    every other tenant shares the default shape (each still gets its
    *own* bucket; only the parameters are shared).
    """

    def __init__(
        self,
        rate_per_s: float = DEFAULT_RATE_PER_S,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        class_costs: Optional[Dict[str, float]] = None,
        overrides: Optional[Dict[str, Tuple[float, float]]] = None,
    ):
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst) if burst is not None else 2.0 * self.rate_per_s
        self._clock = clock
        self.class_costs = dict(class_costs or DEFAULT_CLASS_COSTS)
        self.overrides = dict(overrides or {})
        self._tenants: Dict[str, _TenantLedger] = {}
        self.admitted_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------
    def _ledger(self, tenant: str) -> _TenantLedger:
        ledger = self._tenants.get(tenant)
        if ledger is None:
            rate, burst = self.overrides.get(
                tenant, (self.rate_per_s, self.burst)
            )
            ledger = self._tenants[tenant] = _TenantLedger(
                bucket=TokenBucket(rate, burst, clock=self._clock)
            )
        return ledger

    def admit(self, tenant: str, priority_class: str = "normal") -> Decision:
        """Charge one submission against ``tenant``'s bucket."""
        cost = self.class_costs.get(priority_class, 1.0)
        ledger = self._ledger(tenant)
        allowed, retry_after = ledger.bucket.try_take(cost)
        if allowed:
            ledger.admitted += 1
            self.admitted_total += 1
        else:
            ledger.rejected += 1
            ledger.rejected_by_class[priority_class] = (
                ledger.rejected_by_class.get(priority_class, 0) + 1
            )
            self.rejected_total += 1
        return Decision(
            allowed=allowed,
            tenant=tenant,
            priority_class=priority_class,
            cost=cost,
            tokens_left=ledger.bucket.tokens,
            retry_after_s=retry_after,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``ratelimit`` block `/v1/stats` serves."""
        return {
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
            "class_costs": dict(self.class_costs),
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "tenants": {
                tenant: {
                    "tokens": round(ledger.bucket.tokens, 4),
                    "rate_per_s": ledger.bucket.rate_per_s,
                    "burst": ledger.bucket.burst,
                    "admitted": ledger.admitted,
                    "rejected": ledger.rejected,
                    "rejected_by_class": dict(ledger.rejected_by_class),
                }
                for tenant, ledger in sorted(self._tenants.items())
            },
        }
