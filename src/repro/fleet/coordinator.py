"""The fleet coordinator: membership, liveness, routing, admission.

One :class:`Coordinator` process fronts any number of serve nodes.
Nodes announce themselves (``POST /v1/nodes``) and heartbeat
(``POST /v1/nodes/<id>/heartbeat``); a node that misses heartbeats for
``heartbeat_timeout_s`` is evicted from the consistent-hash ring and
its still-running jobs are resubmitted to the surviving nodes — the
content-addressed shared store makes that resubmission idempotent, so
a job is never lost *or* computed twice into different results.

Clients speak the exact same ``/v1/runs`` dialect to the coordinator
as to a single node; the coordinator admits each submission through
the per-tenant token-bucket limiter, routes it by
``RunRequest.cache_key`` on the ring (cache affinity — see
:mod:`repro.fleet.routing`), stamps it with the chosen node so the
node can count misroutes, and proxies asynchronously over
:mod:`repro.fleet.transport`.  Job ids returned to clients are the
node-issued ids, which are uuid-unique fleet-wide; the coordinator
keeps the id → node mapping so polls and cancels follow the job even
after a failover resubmission.

SSE streams are the one endpoint not proxied: followers are
long-lived and per-job, so ``GET /v1/runs/<id>/events`` answers 307
with the owning node's stream URL instead of pinning a coordinator
connection per follower.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.obs.metrics import EXPOSITION_CONTENT_TYPE, MetricsRegistry
from repro.serve.http import HttpBase, ROUTE_NODE_HEADER
from repro.serve.queue import priority_class
from repro.serve.spec import SPEC_VERSION, RunRequest
from repro.fleet.ratelimit import TenantRateLimiter
from repro.fleet.routing import DEFAULT_VNODES, HashRing
from repro.fleet.transport import TransportError, async_request

COORDINATOR_NAME = f"repro-fleet/{SPEC_VERSION}"

# Submission options the node parses but the cache key must not see
# (two tenants asking for the same run share one content address).
_OPTION_KEYS = ("priority", "timeout_s", "progress_interval_ms", "tenant")


@dataclass
class CoordinatorConfig:
    host: str = "127.0.0.1"
    port: int = 8090  # 0 = ephemeral (tests)
    vnodes: int = DEFAULT_VNODES
    # A node silent for longer than this is considered dead: evicted
    # from the ring, its in-flight jobs resubmitted elsewhere.
    heartbeat_timeout_s: float = 6.0
    # How often the liveness sweep runs.
    sweep_interval_s: float = 1.0
    # Per-tenant admission (None = no rate limiting at the front door).
    ratelimit_rps: Optional[float] = None
    ratelimit_burst: Optional[float] = None
    # Budget for one proxied node round-trip (submit/poll/cancel).
    proxy_timeout_s: float = 30.0


@dataclass
class NodeInfo:
    node_id: str
    url: str
    workers: int
    registered_at: float
    last_heartbeat: float
    alive: bool = True


@dataclass
class CoordJob:
    """The coordinator's view of one admitted run."""

    public_id: str      # the id clients hold (node-issued, uuid-unique)
    node_id: str        # current owner
    node_job_id: str    # id on the current owner (== public_id unless failed over)
    payload: dict       # original submission, replayed on failover
    cache_key: str
    tenant: str
    terminal: bool = False
    resubmits: int = 0


class Coordinator(HttpBase):
    """Fleet membership + routing behind the serve-plane HTTP dialect."""

    server_name = COORDINATOR_NAME

    def __init__(self, config: Optional[CoordinatorConfig] = None):
        self.config = config or CoordinatorConfig()
        self.registry = MetricsRegistry()
        super().__init__(self.registry)
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.limiter: Optional[TenantRateLimiter] = None
        if self.config.ratelimit_rps:
            self.limiter = TenantRateLimiter(
                rate_per_s=self.config.ratelimit_rps,
                burst=self.config.ratelimit_burst,
            )
        self.nodes: Dict[str, NodeInfo] = {}
        self.jobs: Dict[str, CoordJob] = {}
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweep_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        self._started_at: Optional[float] = None
        self.submitted_total = 0
        self.resubmitted_total = 0
        self.evicted_total = 0
        self._submissions_counter = self.registry.counter(
            "repro_fleet_submissions_total",
            "Submissions admitted and proxied to a node",
        )
        self._ratelimited_counter = self.registry.counter(
            "repro_fleet_ratelimited_total",
            "Submissions rejected by the per-tenant token bucket",
            labelnames=("tenant",),
        )
        self._proxy_errors_counter = self.registry.counter(
            "repro_fleet_proxy_errors_total",
            "Node round-trips that failed at the transport layer",
        )
        self._evicted_counter = self.registry.counter(
            "repro_fleet_nodes_evicted_total",
            "Nodes evicted after missing heartbeats",
        )
        self._resubmitted_counter = self.registry.counter(
            "repro_fleet_resubmitted_jobs_total",
            "In-flight jobs replayed onto surviving nodes after an eviction",
        )
        self._node_up_gauge = self.registry.gauge(
            "repro_fleet_node_up",
            "1 for each registered, live node (series removed on eviction)",
            labelnames=("node",),
        )
        self.registry.gauge(
            "repro_fleet_nodes_alive", "Live nodes on the ring",
            fn=lambda: float(len(self.ring)),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_event_loop()
        self._started_at = loop.time()
        self._sweep_task = asyncio.ensure_future(self._sweep_loop())
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        if not self._stopped.is_set():
            if self._sweep_task is not None:
                self._sweep_task.cancel()
            if self._server is not None:
                self._server.close()
            self._stopped.set()

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.sweep_interval_s)
            await self.sweep()

    async def sweep(self) -> None:
        """Evict every node whose heartbeat lapsed; failover its jobs."""
        loop = asyncio.get_event_loop()
        now = loop.time()
        lapsed = [
            node for node in self.nodes.values()
            if node.alive
            and now - node.last_heartbeat > self.config.heartbeat_timeout_s
        ]
        for node in lapsed:
            await self._evict(node)

    async def _evict(self, node: NodeInfo) -> None:
        node.alive = False
        self.ring.remove(node.node_id)
        self._node_up_gauge.remove(node.node_id)
        self.evicted_total += 1
        self._evicted_counter.inc()
        orphans = [
            job for job in self.jobs.values()
            if job.node_id == node.node_id and not job.terminal
        ]
        for job in orphans:
            await self._resubmit(job)

    async def _resubmit(self, job: CoordJob) -> None:
        """Replay an orphaned submission onto the ring's current owner.

        The payload hashes to the same content address, so if the dead
        node already finished the run (shared store) the new node
        answers from cache; otherwise it simply runs it again.  Either
        way the public id keeps resolving.
        """
        target = self._route(job.cache_key)
        if target is None:
            return  # no nodes left; the job id will 404 until one joins
        try:
            status, _, doc = await async_request(
                "POST", f"{target.url}/v1/runs", job.payload,
                timeout_s=self.config.proxy_timeout_s,
                headers={"X-Repro-Route-Node": target.node_id},
            )
        except TransportError:
            self._proxy_errors_counter.inc()
            return  # next sweep retries (the target may be dying too)
        if status in (200, 202) and doc:
            job.node_id = target.node_id
            job.node_job_id = doc["id"]
            job.resubmits += 1
            self.resubmitted_total += 1
            self._resubmitted_counter.inc()
            if status == 200:
                job.terminal = True  # answered from the shared store

    def _route(self, cache_key: str) -> Optional[NodeInfo]:
        owner = self.ring.route(cache_key)
        return self.nodes.get(owner) if owner else None

    # ------------------------------------------------------------------
    # Routing table
    # ------------------------------------------------------------------
    async def _dispatch(
        self, writer, method: str, path: str,
        query: Dict[str, str], headers: Dict[str, str], body: bytes,
    ) -> None:
        if path == "/v1/healthz" and method == "GET":
            self._write_json(writer, 200, self.healthz())
            return
        if path == "/v1/stats" and method == "GET":
            self._write_json(writer, 200, self.stats())
            return
        if path == "/metrics" and method == "GET":
            self._write_text(
                writer, 200, self.registry.render(),
                content_type=EXPOSITION_CONTENT_TYPE,
            )
            return
        if path == "/v1/nodes" and method == "POST":
            self._handle_register(writer, body)
            return
        if path == "/v1/nodes" and method == "GET":
            self._write_json(writer, 200, {"nodes": self._node_docs()})
            return
        if path.startswith("/v1/nodes/"):
            rest = path[len("/v1/nodes/"):]
            if rest.endswith("/heartbeat") and method == "POST":
                self._handle_heartbeat(writer, rest[: -len("/heartbeat")])
                return
            if "/" not in rest and method == "DELETE":
                self._handle_deregister(writer, rest)
                return
        if path == "/v1/runs" and method == "POST":
            await self._handle_submit(writer, body)
            return
        if path.startswith("/v1/runs/"):
            rest = path[len("/v1/runs/"):]
            if rest.endswith("/events") and method == "GET":
                self._handle_events_redirect(
                    writer, rest[: -len("/events")], query
                )
                return
            if "/" not in rest and method in ("GET", "DELETE"):
                await self._handle_proxy_job(writer, method, rest)
                return
        self._write_json(
            writer, 404, {"error": f"no route for {method} {path}"}
        )

    # ------------------------------------------------------------------
    # Membership endpoints
    # ------------------------------------------------------------------
    def _handle_register(self, writer, body: bytes) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._write_json(writer, 400, {"error": f"invalid JSON: {exc}"})
            return
        node_id = doc.get("node_id")
        url = doc.get("url")
        if not node_id or not isinstance(node_id, str):
            self._write_json(
                writer, 400, {"error": "node_id must be a non-empty string"}
            )
            return
        if not url or not isinstance(url, str) or not url.startswith("http://"):
            self._write_json(
                writer, 400, {"error": "url must be an http:// address"}
            )
            return
        loop = asyncio.get_event_loop()
        now = loop.time()
        # Re-registration (a restarted node, or one that outlived its
        # own eviction) refreshes everything and rejoins the ring.
        self.nodes[node_id] = NodeInfo(
            node_id=node_id,
            url=url.rstrip("/"),
            workers=int(doc.get("workers", 1)),
            registered_at=now,
            last_heartbeat=now,
        )
        self.ring.add(node_id)
        self._node_up_gauge.labels(node_id).set(1.0)
        self._write_json(writer, 200, {
            "node_id": node_id,
            "heartbeat_timeout_s": self.config.heartbeat_timeout_s,
            "nodes": len(self.ring),
        })

    def _handle_heartbeat(self, writer, node_id: str) -> None:
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            # 404 tells the node to re-register (it was evicted, or the
            # coordinator restarted and lost the membership table).
            self._write_json(
                writer, 404,
                {"error": f"unknown node {node_id!r}; re-register"},
            )
            return
        node.last_heartbeat = asyncio.get_event_loop().time()
        self._write_json(writer, 200, {"node_id": node_id, "ok": True})

    def _handle_deregister(self, writer, node_id: str) -> None:
        node = self.nodes.get(node_id)
        if node is None:
            self._write_json(
                writer, 404, {"error": f"unknown node {node_id!r}"}
            )
            return
        # Graceful leave: the node drains its own queue, so its jobs
        # finish where they are — only the ring membership changes.
        node.alive = False
        self.ring.remove(node_id)
        self._node_up_gauge.remove(node_id)
        self._write_json(writer, 200, {"node_id": node_id, "left": True})

    def _node_docs(self) -> list:
        loop = asyncio.get_event_loop()
        now = loop.time()
        return [
            {
                "node_id": node.node_id,
                "url": node.url,
                "workers": node.workers,
                "alive": node.alive,
                "age_s": round(now - node.registered_at, 3),
                "heartbeat_age_s": round(now - node.last_heartbeat, 3),
            }
            for node in sorted(self.nodes.values(), key=lambda n: n.node_id)
        ]

    # ------------------------------------------------------------------
    # Run endpoints (proxied)
    # ------------------------------------------------------------------
    async def _handle_submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._write_json(writer, 400, {"error": f"invalid JSON: {exc}"})
            return
        if not isinstance(payload, dict):
            self._write_json(
                writer, 400, {"error": "request body must be a JSON object"}
            )
            return
        tenant = payload.get("tenant") or "anonymous"
        try:
            priority = int(payload.get("priority", 10))
        except (TypeError, ValueError):
            priority = 10
        if self.limiter is not None:
            decision = self.limiter.admit(tenant, priority_class(priority))
            if not decision.allowed:
                self._ratelimited_counter.labels(tenant).inc()
                retry_after = max(1, math.ceil(decision.retry_after_s))
                self._write_json(
                    writer, 429,
                    {
                        "error": (
                            f"tenant {tenant!r} rate limited; retry in "
                            f"{decision.retry_after_s:.3f}s"
                        ),
                        "retry_after_s": round(decision.retry_after_s, 4),
                        "ratelimited": True,
                        "tenant": tenant,
                        "priority_class": decision.priority_class,
                    },
                    extra_headers=(("Retry-After", str(retry_after)),),
                )
                return
        # Routing needs the content address, which the submission
        # options must not perturb — strip them exactly as a node does.
        core = {
            k: v for k, v in payload.items() if k not in _OPTION_KEYS
        }
        try:
            cache_key = RunRequest.from_dict(core).cache_key()
        except (TypeError, ValueError) as exc:
            self._write_json(writer, 400, {"error": str(exc)})
            return
        # A node can die between routing and proxying; walk the ring
        # (eviction re-routes) a few times before giving up.
        for _ in range(3):
            target = self._route(cache_key)
            if target is None:
                break
            try:
                status, headers, doc = await async_request(
                    "POST", f"{target.url}/v1/runs", payload,
                    timeout_s=self.config.proxy_timeout_s,
                    headers={"X-Repro-Route-Node": target.node_id},
                )
            except TransportError:
                self._proxy_errors_counter.inc()
                await self._evict(self.nodes[target.node_id])
                continue
            if status in (200, 202) and doc:
                job = CoordJob(
                    public_id=doc["id"],
                    node_id=target.node_id,
                    node_job_id=doc["id"],
                    payload=payload,
                    cache_key=cache_key,
                    tenant=tenant,
                    terminal=(status == 200),  # cache hits are born done
                )
                self.jobs[job.public_id] = job
                self.submitted_total += 1
                self._submissions_counter.inc()
                doc["node"] = target.node_id
            extra = ()
            if "retry-after" in headers:
                extra = (("Retry-After", headers["retry-after"]),)
            self._write_json(writer, status, doc or {}, extra_headers=extra)
            return
        self._write_json(
            writer, 503, {"error": "no live nodes registered with the fleet"}
        )

    async def _handle_proxy_job(self, writer, method: str, job_id: str) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._write_json(writer, 404, {"error": f"unknown run {job_id!r}"})
            return
        node = self.nodes.get(job.node_id)
        if node is None:
            self._write_json(
                writer, 503,
                {"error": f"run {job_id!r} owner {job.node_id!r} is gone"},
            )
            return
        try:
            status, _, doc = await async_request(
                method, f"{node.url}/v1/runs/{job.node_job_id}",
                timeout_s=self.config.proxy_timeout_s,
            )
        except TransportError as exc:
            self._proxy_errors_counter.inc()
            self._write_json(
                writer, 503,
                {"error": f"node {job.node_id!r} unreachable: {exc}"},
            )
            return
        doc = doc or {}
        if status == 200 and doc:
            # Clients hold the public id; after a failover the node's id
            # differs, so rewrite before the doc leaves the fleet.
            doc["id"] = job.public_id
            doc["node"] = job.node_id
            if doc.get("state") in ("done", "failed", "cancelled", "expired"):
                job.terminal = True
        self._write_json(writer, status, doc)

    def _handle_events_redirect(
        self, writer, job_id: str, query: Dict[str, str]
    ) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._write_json(writer, 404, {"error": f"unknown run {job_id!r}"})
            return
        node = self.nodes.get(job.node_id)
        if node is None:
            self._write_json(
                writer, 503,
                {"error": f"run {job_id!r} owner {job.node_id!r} is gone"},
            )
            return
        location = f"{node.url}/v1/runs/{job.node_job_id}/events"
        if query.get("cursor"):
            location += f"?cursor={query['cursor']}"
        self._write_json(
            writer, 307, {"location": location, "node": job.node_id},
            extra_headers=(("Location", location),),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        loop = asyncio.get_event_loop()
        uptime = (
            loop.time() - self._started_at
            if self._started_at is not None else 0.0
        )
        return {
            "status": "ok",
            "server": COORDINATOR_NAME,
            "role": "coordinator",
            "uptime_s": round(uptime, 3),
            "nodes_alive": len(self.ring),
        }

    def stats(self) -> dict:
        tracked = len(self.jobs)
        terminal = sum(1 for job in self.jobs.values() if job.terminal)
        doc = self.healthz()
        doc.update({
            "ring": self.ring.stats(),
            "nodes": self._node_docs(),
            "jobs": {
                "submitted_total": self.submitted_total,
                "tracked": tracked,
                "terminal": terminal,
                "in_flight": tracked - terminal,
                "resubmitted_total": self.resubmitted_total,
            },
            "evictions": {
                "nodes_evicted_total": self.evicted_total,
                "heartbeat_timeout_s": self.config.heartbeat_timeout_s,
            },
        })
        if self.limiter is not None:
            doc["ratelimit"] = self.limiter.stats()
        return doc


async def run_coordinator(config: CoordinatorConfig, ready=None) -> None:
    """Start a coordinator, announce readiness, serve until stopped."""
    import signal

    coordinator = Coordinator(config)
    await coordinator.start()
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, coordinator.request_shutdown)
        except (NotImplementedError, ValueError, RuntimeError):
            break
    if ready is not None:
        ready(coordinator)
    await coordinator.serve_forever()
