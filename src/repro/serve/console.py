"""Live fleet pressure console: ``repro watch --serve URL``.

Renders a terminal dashboard over a running control plane from two
sources, the same way a human operator would watch it:

* periodic ``GET /v1/stats`` polls — queue depth, worker utilization,
  cache hit/eviction rates, per-priority-class latency percentiles, the
  RSS/tracemalloc/cache memory breakdown, and per-tenant rogue scores;
* the existing per-run SSE ``/events`` streams — background follower
  threads tail the most recent active runs and feed a rolling event
  ticker, so lifecycle transitions show up between stats polls.

Rendering is pure (``render_stats`` maps a stats document to a string)
so tests can assert on the output without a server, and the refresh
loop only needs ANSI clear-screen — no curses, no dependencies.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

_ANSI_CLEAR = "\x1b[2J\x1b[H"

# Job states whose SSE stream is still worth following.
_ACTIVE_STATES = ("queued", "running")

# Cap on concurrent SSE follower threads; each holds one connection.
_MAX_FOLLOWERS = 8


def _fmt_bytes(count: Optional[float]) -> str:
    if count is None:
        return "unbounded"
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover - loop always returns


def _bar(fraction: float, width: int = 20) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _latency_row(name: str, summary: Dict[str, dict]) -> List[str]:
    lines = []
    for cls in ("high", "normal", "low"):
        doc = summary.get(cls)
        if not doc or not doc.get("count"):
            continue
        lines.append(
            f"  {name:<12} {cls:<7} n={doc['count']:<6} "
            f"p50={doc['p50'] * 1000:8.1f}ms  p95={doc['p95'] * 1000:8.1f}ms  "
            f"p99={doc['p99'] * 1000:8.1f}ms  max={doc['max'] * 1000:8.1f}ms"
        )
    return lines


def render_stats(
    stats: dict,
    events: Iterable[Tuple[str, str, dict]] = (),
    base_url: str = "",
    event_tail: int = 8,
) -> str:
    """One full console frame from a ``/v1/stats`` document."""
    lines: List[str] = []
    status = stats.get("status", "?")
    uptime = stats.get("uptime_s", 0.0)
    lines.append(
        f"repro-serve fleet console {base_url}  "
        f"[{status}]  up {uptime:.0f}s"
    )
    lines.append("=" * 78)

    queue = stats.get("queue", {})
    depth, cap = queue.get("depth", 0), queue.get("capacity", 0)
    lines.append(
        f"queue    depth {depth}/{cap} [{_bar(depth / cap if cap else 0)}]  "
        f"enqueued {queue.get('enqueued_total', 0)}  "
        f"expired {queue.get('expired_total', 0)}  "
        f"cancelled {queue.get('cancelled_total', 0)}"
    )

    workers = stats.get("workers", {})
    busy, size = workers.get("busy", 0), workers.get("pool_size", 0)
    util = workers.get("utilization", 0.0)
    lines.append(
        f"workers  busy {busy}/{size} [{_bar(util)}] {util:.0%}  "
        f"done {workers.get('completed_total', 0)}  "
        f"failed {workers.get('failed_total', 0)}  "
        f"retries {workers.get('retries_total', 0)}  "
        f"crashes {workers.get('crashes_total', 0)}"
    )

    cache = stats.get("cache", {})
    lines.append(
        f"cache    entries {cache.get('entries', 0)}  "
        f"{_fmt_bytes(cache.get('memory_bytes', 0))}"
        f" / {_fmt_bytes(cache.get('memory_budget_bytes'))}  "
        f"hit {cache.get('hit_rate', 0.0):.1%} "
        f"(mem {cache.get('memory_hits', 0)} disk {cache.get('disk_hits', 0)} "
        f"miss {cache.get('misses', 0)})  "
        f"evictions {cache.get('evictions', 0)}"
    )

    memory = stats.get("memory", {})
    tm = memory.get("tracemalloc", {})
    tm_text = (
        f"tracemalloc {_fmt_bytes(tm.get('current_bytes', 0))} "
        f"(peak {_fmt_bytes(tm.get('peak_bytes', 0))})"
        if tm.get("enabled") else "tracemalloc off"
    )
    lines.append(
        f"memory   rss {_fmt_bytes(memory.get('rss_bytes', 0))}  {tm_text}  "
        f"cache {_fmt_bytes(memory.get('cache_memory_bytes', 0))}"
    )

    latency = stats.get("latency", {})
    latency_lines: List[str] = []
    for name in ("queue_wait_s", "exec_s", "e2e_s"):
        latency_lines.extend(_latency_row(name, latency.get(name, {})))
    if latency_lines:
        lines.append("latency  (per priority class)")
        lines.extend(latency_lines)

    tenants = stats.get("tenants", {})
    if tenants:
        lines.append("tenants  (rogue = 40% queue + 30% exec + 20% submit "
                     "+ 10% failures)")
        ranked = sorted(
            tenants.items(),
            key=lambda item: item[1].get("rogue_score", 0.0),
            reverse=True,
        )
        for tenant, doc in ranked[:10]:
            score = doc.get("rogue_score", 0.0)
            lines.append(
                f"  {tenant:<16} rogue {score:5.2f} [{_bar(score, 12)}]  "
                f"queued {doc.get('queued_now', 0):<3} "
                f"submitted {doc.get('submitted', 0):<5} "
                f"exec {doc.get('exec_s', 0.0):7.1f}s  "
                f"fail {doc.get('failure_rate', 0.0):.0%}"
            )

    recent = stats.get("recent", [])
    if recent:
        lines.append("runs     (most recent first)")
        for doc in recent[:event_tail]:
            lines.append(
                f"  {doc.get('id', '?'):<18} {doc.get('state', '?'):<9} "
                f"prio {doc.get('priority', '?'):<4} "
                f"{doc.get('tenant', '?'):<12} "
                f"{doc.get('scenario', '?')}/{doc.get('policy', '?')}"
                + ("  (cache)" if doc.get("cache_hit") else "")
            )

    tail = list(events)[-event_tail:]
    if tail:
        lines.append("events   (SSE tail)")
        for run_id, event, data in tail:
            detail = ""
            if event == "sample" and "fps" in data:
                detail = f"fps={data['fps']}"
            elif "error" in data:
                detail = str(data["error"])[:40]
            elif event == "done":
                detail = f"fps={data.get('fps')}"
            lines.append(f"  {run_id:<18} {event:<10} {detail}")

    return "\n".join(lines)


class FleetConsole:
    """Poll ``/v1/stats`` + tail recent runs' SSE streams, render live."""

    def __init__(
        self,
        client,
        every_s: float = 2.0,
        plain: bool = False,
        event_tail: int = 8,
        out=None,
    ):
        self.client = client
        self.every_s = max(0.1, every_s)
        self.plain = plain
        self.event_tail = event_tail
        self.out = out if out is not None else sys.stdout
        self.events: Deque[Tuple[str, str, dict]] = deque(maxlen=64)
        self._followed: set = set()
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    def _follow(self, run_id: str) -> None:
        try:
            for event, data in self.client.events(run_id, timeout_s=600.0):
                self.events.append((run_id, event, data))
        except Exception:
            pass  # follower death only stops the ticker, not the console

    def _spawn_followers(self, stats: dict) -> None:
        self._threads = [t for t in self._threads if t.is_alive()]
        for doc in stats.get("recent", []):
            run_id = doc.get("id")
            if (
                not run_id
                or run_id in self._followed
                or doc.get("state") not in _ACTIVE_STATES
                or len(self._threads) >= _MAX_FOLLOWERS
            ):
                continue
            self._followed.add(run_id)
            thread = threading.Thread(
                target=self._follow, args=(run_id,),
                name=f"console-follow-{run_id}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    def frame(self) -> str:
        stats = self.client.stats()
        self._spawn_followers(stats)
        base = f"http://{self.client.host}:{self.client.port}"
        return render_stats(
            stats, list(self.events), base_url=base,
            event_tail=self.event_tail,
        )

    def run(self, iterations: Optional[int] = None) -> int:
        """Refresh until interrupted (or for ``iterations`` frames)."""
        shown = 0
        while iterations is None or shown < iterations:
            try:
                frame = self.frame()
            except (ConnectionError, OSError) as exc:
                frame = f"(serve unreachable: {exc}; retrying...)"
            except Exception as exc:
                frame = f"(stats error: {exc}; retrying...)"
            if not self.plain:
                self.out.write(_ANSI_CLEAR)
            self.out.write(frame + "\n")
            self.out.flush()
            shown += 1
            if iterations is not None and shown >= iterations:
                break
            try:
                time.sleep(self.every_s)
            except KeyboardInterrupt:
                break
        return 0
