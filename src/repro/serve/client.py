"""Blocking HTTP client for the serve control plane.

Used by ``python -m repro submit``, the test suite, and anything else
that wants a simulation result without speaking HTTP by hand.  One
plain :mod:`http.client` connection per call keeps the client free of
state and safe to use from any thread.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.serve.spec import RunRequest

DEFAULT_BASE_URL = "http://127.0.0.1:8080"

# Event kinds after which the server ends the SSE stream.
TERMINAL_EVENTS = frozenset(("done", "failed", "cancelled", "expired"))


class ServeError(Exception):
    """A non-2xx control-plane response."""

    def __init__(self, status: int, body: dict):
        self.status = status
        self.body = body
        super().__init__(f"HTTP {status}: {body.get('error', body)}")


class QueueFullError(ServeError):
    """429 — the server applied backpressure; retry later."""


class ServeClient:
    """Thin blocking wrapper over the ``/v1`` API."""

    def __init__(self, base_url: str = DEFAULT_BASE_URL, timeout_s: float = 30.0):
        # urlsplit("localhost:8080") would read "localhost" as the
        # scheme, so bare "host:port" gets an explicit scheme first.
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http":
            raise ValueError(f"unsupported scheme {parsed.scheme!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port if parsed.port is not None else 80
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                doc = {"error": raw.decode("utf-8", "replace")}
            return response.status, doc
        finally:
            conn.close()

    def _checked(self, method: str, path: str, body=None) -> dict:
        status, doc = self._request(method, path, body)
        if status == 429:
            raise QueueFullError(status, doc)
        if status >= 400:
            raise ServeError(status, doc)
        return doc

    # ------------------------------------------------------------------
    def submit(
        self,
        request: Union[RunRequest, Dict[str, object]],
        priority: Optional[int] = None,
        timeout_s: Optional[float] = None,
        progress_interval_ms: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> dict:
        """POST the request; returns the job snapshot (maybe cached)."""
        body = dict(
            request.to_dict() if isinstance(request, RunRequest) else request
        )
        if priority is not None:
            body["priority"] = priority
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if progress_interval_ms is not None:
            body["progress_interval_ms"] = progress_interval_ms
        if tenant is not None:
            body["tenant"] = tenant
        return self._checked("POST", "/v1/runs", body)

    def get(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/runs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._checked("DELETE", f"/v1/runs/{job_id}")

    def healthz(self) -> dict:
        return self._checked("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """Scrape ``GET /metrics``: the Prometheus exposition document."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    doc = json.loads(raw)
                except json.JSONDecodeError:
                    doc = {"error": raw.decode("utf-8", "replace")}
                raise ServeError(response.status, doc)
            return raw.decode("utf-8")
        finally:
            conn.close()

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.1
    ) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.get(job_id)
            if job["state"] not in ("queued", "running"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {job_id} still {job['state']} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def run(
        self,
        request: Union[RunRequest, Dict[str, object]],
        timeout_s: float = 300.0,
        **submit_kwargs,
    ) -> dict:
        """Submit and wait; returns the terminal job snapshot."""
        job = self.submit(request, **submit_kwargs)
        if job["state"] not in ("queued", "running"):
            return job  # cache hit (or immediate failure)
        return self.wait(job["id"], timeout_s=timeout_s)

    # ------------------------------------------------------------------
    def events(
        self, job_id: str, timeout_s: float = 300.0
    ) -> Iterator[Tuple[str, dict]]:
        """Follow the job's SSE stream, yielding ``(event, data)``.

        The generator ends when the server closes the stream after a
        terminal event.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout_s
        )
        try:
            conn.request("GET", f"/v1/runs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    doc = json.loads(raw)
                except json.JSONDecodeError:
                    doc = {"error": raw.decode("utf-8", "replace")}
                raise ServeError(response.status, doc)
            event: Optional[str] = None
            data_lines = []
            while True:
                line = response.readline()
                if not line:
                    return  # stream closed
                line = line.decode("utf-8").rstrip("\n")
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif line == "":
                    if event is not None:
                        payload = "\n".join(data_lines) or "{}"
                        yield event, json.loads(payload)
                        if event in TERMINAL_EVENTS:
                            # Don't wait for EOF: a worker process forked
                            # while this connection was open can hold a
                            # duplicate of its fd, delaying the FIN.
                            return
                    event = None
                    data_lines = []
        finally:
            conn.close()
