"""Blocking HTTP client for the serve control plane.

Used by ``python -m repro submit``, the test suite, the fleet
loadtest generator, and anything else that wants a simulation result
without speaking HTTP by hand.  One plain :mod:`http.client`
connection per call keeps the client free of state and safe to use
from any thread.

Two failure modes are retryable and handled here so every caller
doesn't reinvent them:

* **Backpressure** — 429 (queue full or rate limited).  ``submit``
  can retry with bounded jittered exponential backoff, honoring the
  server's ``retry_after_s`` hint when it is longer than the backoff.
* **Dropped streams** — an SSE follower whose socket dies mid-run.
  Every event frame carries an absolute ``id:``; :meth:`follow`
  reconnects with ``?cursor=<last id + 1>`` and resumes exactly where
  the stream broke instead of replaying or losing history.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.parse
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.serve.spec import RunRequest

DEFAULT_BASE_URL = "http://127.0.0.1:8080"

# Event kinds after which the server ends the SSE stream.
TERMINAL_EVENTS = frozenset(("done", "failed", "cancelled", "expired"))

# Backoff shape for retried submissions and SSE reconnects: full
# jitter over an exponentially growing, capped window.
RETRY_BASE_S = 0.2
RETRY_CAP_S = 5.0
DEFAULT_RETRIES = 3

# Transport-level failures worth retrying: the connection died or was
# refused mid-conversation, not a server verdict about the request.
TRANSIENT_ERRORS = (ConnectionError, http.client.HTTPException, TimeoutError)


def backoff_delay(attempt: int, retry_after_s: float = 0.0) -> float:
    """Jittered exponential delay for retry ``attempt`` (1-based).

    Full jitter (0.5x-1x of the window) decorrelates a thundering herd
    of clients that all got backpressured at the same instant; a
    server-provided ``retry_after_s`` (the token bucket's exact refill
    time) acts as a floor, since retrying sooner is guaranteed futile.
    """
    window = min(RETRY_CAP_S, RETRY_BASE_S * (2 ** max(0, attempt - 1)))
    return max(retry_after_s, window * (0.5 + random.random() / 2))


class ServeError(Exception):
    """A non-2xx control-plane response."""

    def __init__(self, status: int, body: dict):
        self.status = status
        self.body = body
        super().__init__(f"HTTP {status}: {body.get('error', body)}")


class QueueFullError(ServeError):
    """429 — queue full or rate limited; retry later.

    ``retry_after_s`` is the server's own estimate (0 when it offered
    none): the token bucket's exact refill time for rate limits.
    """

    @property
    def retry_after_s(self) -> float:
        try:
            return float(self.body.get("retry_after_s", 0.0))
        except (TypeError, ValueError):
            return 0.0


class ServeClient:
    """Thin blocking wrapper over the ``/v1`` API."""

    def __init__(self, base_url: str = DEFAULT_BASE_URL, timeout_s: float = 30.0):
        # urlsplit("localhost:8080") would read "localhost" as the
        # scheme, so bare "host:port" gets an explicit scheme first.
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http":
            raise ValueError(f"unsupported scheme {parsed.scheme!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port if parsed.port is not None else 80
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                doc = {"error": raw.decode("utf-8", "replace")}
            return response.status, doc
        finally:
            conn.close()

    def _checked(self, method: str, path: str, body=None) -> dict:
        status, doc = self._request(method, path, body)
        if status == 429:
            raise QueueFullError(status, doc)
        if status >= 400:
            raise ServeError(status, doc)
        return doc

    # ------------------------------------------------------------------
    def submit(
        self,
        request: Union[RunRequest, Dict[str, object]],
        priority: Optional[int] = None,
        timeout_s: Optional[float] = None,
        progress_interval_ms: Optional[float] = None,
        tenant: Optional[str] = None,
        retries: int = 0,
    ) -> dict:
        """POST the request; returns the job snapshot (maybe cached).

        ``retries`` > 0 retries 429 backpressure and transient
        connection failures with jittered exponential backoff (the
        library default stays 0 so callers that *want* to observe
        backpressure — tests, the loadtest's knee sweep — see every
        429; the CLI passes 3).
        """
        body = dict(
            request.to_dict() if isinstance(request, RunRequest) else request
        )
        if priority is not None:
            body["priority"] = priority
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if progress_interval_ms is not None:
            body["progress_interval_ms"] = progress_interval_ms
        if tenant is not None:
            body["tenant"] = tenant
        attempt = 0
        while True:
            try:
                return self._checked("POST", "/v1/runs", body)
            except QueueFullError as exc:
                attempt += 1
                if attempt > retries:
                    raise
                time.sleep(backoff_delay(attempt, exc.retry_after_s))
            except TRANSIENT_ERRORS:
                attempt += 1
                if attempt > retries:
                    raise
                time.sleep(backoff_delay(attempt))

    def get(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/runs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._checked("DELETE", f"/v1/runs/{job_id}")

    def healthz(self) -> dict:
        return self._checked("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """Scrape ``GET /metrics``: the Prometheus exposition document."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    doc = json.loads(raw)
                except json.JSONDecodeError:
                    doc = {"error": raw.decode("utf-8", "replace")}
                raise ServeError(response.status, doc)
            return raw.decode("utf-8")
        finally:
            conn.close()

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.1
    ) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.get(job_id)
            if job["state"] not in ("queued", "running"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {job_id} still {job['state']} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def run(
        self,
        request: Union[RunRequest, Dict[str, object]],
        timeout_s: float = 300.0,
        **submit_kwargs,
    ) -> dict:
        """Submit and wait; returns the terminal job snapshot."""
        job = self.submit(request, **submit_kwargs)
        if job["state"] not in ("queued", "running"):
            return job  # cache hit (or immediate failure)
        return self.wait(job["id"], timeout_s=timeout_s)

    # ------------------------------------------------------------------
    def _events_once(
        self, job_id: str, cursor: int, timeout_s: float
    ) -> Iterator[Tuple[Optional[int], str, dict]]:
        """One SSE connection from ``cursor``; yields (id, event, data).

        Ends when the server closes the stream; raises the usual
        transient errors when the socket dies mid-stream.
        """
        host, port = self.host, self.port
        path = f"/v1/runs/{job_id}/events"
        if cursor:
            path += f"?cursor={cursor}"
        conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            # A fleet coordinator answers /events with a redirect to the
            # owning node's stream (it won't pin a connection per
            # follower) — chase it, once.
            if response.status in (301, 302, 307, 308):
                location = response.getheader("Location") or ""
                response.read()
                conn.close()
                parsed = urllib.parse.urlsplit(location)
                if parsed.scheme != "http" or not parsed.hostname:
                    raise ServeError(
                        502, {"error": f"bad events redirect {location!r}"}
                    )
                host = parsed.hostname
                port = parsed.port if parsed.port is not None else 80
                path = parsed.path + (
                    f"?{parsed.query}" if parsed.query else ""
                )
                conn = http.client.HTTPConnection(
                    host, port, timeout=timeout_s
                )
                conn.request("GET", path)
                response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    doc = json.loads(raw)
                except json.JSONDecodeError:
                    doc = {"error": raw.decode("utf-8", "replace")}
                raise ServeError(response.status, doc)
            event: Optional[str] = None
            event_id: Optional[int] = None
            data_lines = []
            while True:
                line = response.readline()
                if not line:
                    return  # stream closed
                line = line.decode("utf-8").rstrip("\n")
                if line.startswith("id:"):
                    try:
                        event_id = int(line[len("id:"):].strip())
                    except ValueError:
                        event_id = None
                elif line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif line == "":
                    if event is not None:
                        payload = "\n".join(data_lines) or "{}"
                        yield event_id, event, json.loads(payload)
                        if event in TERMINAL_EVENTS:
                            # Don't wait for EOF: a worker process forked
                            # while this connection was open can hold a
                            # duplicate of its fd, delaying the FIN.
                            return
                    event = None
                    event_id = None
                    data_lines = []
        finally:
            conn.close()

    def events(
        self, job_id: str, timeout_s: float = 300.0, cursor: int = 0
    ) -> Iterator[Tuple[str, dict]]:
        """Follow the job's SSE stream once, yielding ``(event, data)``.

        The generator ends when the server closes the stream after a
        terminal event.  For a stream that survives socket drops, use
        :meth:`follow`.
        """
        for _, event, data in self._events_once(job_id, cursor, timeout_s):
            yield event, data

    def follow(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        reconnect_retries: int = DEFAULT_RETRIES,
    ) -> Iterator[Tuple[str, dict]]:
        """Follow a job's events across dropped connections.

        Tracks the last absolute event id seen and, when the socket
        dies, reconnects with ``?cursor=<last id + 1>`` — no replayed
        and no silently skipped events.  ``reconnect_retries`` bounds
        *consecutive* failed reconnects; any delivered event resets the
        budget, so a long job tolerates many well-spaced drops.
        """
        deadline = time.monotonic() + timeout_s
        cursor = 0
        failures = 0
        while True:
            try:
                for event_id, event, data in self._events_once(
                    job_id, cursor, timeout_s
                ):
                    failures = 0
                    if event_id is not None:
                        cursor = event_id + 1
                    yield event, data
                    if event in TERMINAL_EVENTS:
                        return
                # Clean close without a terminal event (server drained
                # mid-stream): if the job is already terminal we are
                # done; otherwise reconnect and keep following.
                job = self.get(job_id)
                if job["state"] not in ("queued", "running"):
                    return
            except TRANSIENT_ERRORS:
                failures += 1
                if failures > reconnect_retries:
                    raise
                time.sleep(backoff_delay(failures))
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {job_id} events not terminal after {timeout_s}s"
                )
