"""The serve plane's state core, split from its HTTP surface.

:class:`ServerState` owns everything a serve node *is* — the bounded
priority queue, the supervised worker fleet, the two-tier result
cache, the byte-budgeted job table, per-tenant accounting, the
admission rate limiter, and the drain protocol — while
:class:`repro.serve.http.SimulationServer` owns only how that state is
*reached* (request parsing, routing, SSE streaming, response
encoding).

The split exists because the fleet control plane needs the two halves
independently: the coordinator reuses the HTTP plumbing with entirely
different state behind it, and tests/loadtests drive a
:class:`ServerState` through ``submit()`` without a socket in sight.
Every accounting invariant the serve plane promises (one finalize path
per job, stats totals exactly equal to /metrics counters) lives here,
in one place, regardless of which transport delivered the request.
"""

from __future__ import annotations

import asyncio
import tracemalloc
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apps.catalog import APP_CATALOG
from repro.devices.specs import DEVICES
from repro.fleet.ratelimit import TenantRateLimiter
from repro.obs.metrics import (
    MetricsRegistry,
    latency_summary,
    memory_snapshot,
)
from repro.policies.registry import available_policies
from repro.serve.cache import DEFAULT_MEMORY_BUDGET_BYTES, ResultCache
from repro.serve.queue import (
    DEFAULT_TENANT,
    MAX_PRIORITY,
    MIN_PRIORITY,
    Job,
    JobQueue,
    JobState,
    QueueFull,
)
from repro.serve.retention import (
    DEFAULT_JOB_BUDGET_BYTES,
    DEFAULT_MAX_EVENTS_PER_JOB,
    DEFAULT_MIN_RETENTION_S,
    DEFAULT_TOMBSTONE_LIMIT,
    JobTable,
)
from repro.serve.spec import RunRequest
from repro.serve.workers import WorkerFleet


@dataclass
class ServeConfig:
    """One server instance's knobs."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 = ephemeral (tests)
    workers: int = 2
    queue_depth: int = 64
    max_retries: int = 1
    cache_dir: Optional[str] = None
    drain_grace_s: float = 60.0
    # Applied when a submission carries no timeout_s of its own
    # (None = jobs may wait/run forever).
    default_timeout_s: Optional[float] = None
    # Memory-tier byte budget for the result cache (None = unbounded).
    cache_budget_bytes: Optional[int] = DEFAULT_MEMORY_BUDGET_BYTES
    # How often the RSS/tracemalloc gauges are re-sampled.
    mem_sample_interval_s: float = 10.0
    # Start tracemalloc at server start (costs ~2x on allocations but
    # attributes the Python heap precisely).
    enable_tracemalloc: bool = False
    # Idle SSE followers get a `: ping` comment frame at this interval
    # so read-timeout clients can tell a quiet stream from a dead one.
    sse_keepalive_s: float = 15.0
    # How many recently submitted runs /v1/stats lists (fleet console).
    recent_jobs: int = 20
    # Terminal-job retention: canonical-JSON byte budget for finished
    # jobs (None = retain forever, the pre-retention behavior), the
    # window inside which a finished job is never evicted, and the
    # bound on eviction tombstones (410 Gone summaries).
    job_budget_bytes: Optional[int] = DEFAULT_JOB_BUDGET_BYTES
    job_min_retention_s: float = DEFAULT_MIN_RETENTION_S
    job_tombstone_limit: int = DEFAULT_TOMBSTONE_LIMIT
    # Per-job event-list cap; SSE followers see a `dropped_events`
    # marker where history was lost (None = unbounded).
    max_events_per_job: Optional[int] = DEFAULT_MAX_EVENTS_PER_JOB
    # Fleet membership: set when this server runs as a registered node
    # behind a coordinator.  The coordinator stamps proxied submissions
    # with the node it routed to; a mismatch bumps
    # repro_fleet_misrouted_total (the request is still served — the
    # shared store makes any node able to answer).
    node_id: Optional[str] = None
    # Per-tenant token-bucket admission (None = no rate limiting).
    # Rejections are 429 with a Retry-After derived from the bucket.
    ratelimit_rps: Optional[float] = None
    ratelimit_burst: Optional[float] = None


class BadSubmission(Exception):
    """Malformed submission; the HTTP layer maps it to a 400."""


class RateLimited(Exception):
    """Tenant bucket empty; maps to 429 + Retry-After.

    Carries the limiter's decision so the transport can surface the
    exact wait (header and body) instead of a generic backoff hint.
    """

    def __init__(self, decision):
        self.decision = decision
        super().__init__(
            f"tenant {decision.tenant!r} rate limited; retry in "
            f"{decision.retry_after_s:.3f}s"
        )


class ServerState:
    """Queue + fleet + cache + accounting, transport-agnostic."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        # Per-instance registry: two servers in one process (tests)
        # must not collide on family names or blend their counters.
        self.registry = MetricsRegistry()
        self.cache = ResultCache(
            self.config.cache_dir,
            memory_budget_bytes=self.config.cache_budget_bytes,
            registry=self.registry,
        )
        self.queue = JobQueue(
            maxsize=self.config.queue_depth, registry=self.registry
        )
        self.fleet = WorkerFleet(
            size=self.config.workers,
            max_retries=self.config.max_retries,
            on_progress=self._on_progress,
            registry=self.registry,
        )
        self.table = JobTable(
            budget_bytes=self.config.job_budget_bytes,
            min_retention_s=self.config.job_min_retention_s,
            tombstone_limit=self.config.job_tombstone_limit,
            registry=self.registry,
        )
        # Dequeue-time expiries never surface from queue.pop(); the
        # callback folds them into tenant/retention accounting anyway.
        self.queue.on_expired = self._finalize_job
        self.limiter: Optional[TenantRateLimiter] = None
        if self.config.ratelimit_rps:
            self.limiter = TenantRateLimiter(
                rate_per_s=self.config.ratelimit_rps,
                burst=self.config.ratelimit_burst,
            )
        self.submitted_total = 0
        self.cache_hit_jobs = 0
        self.draining = False
        self._supervisor_task: Optional[asyncio.Task] = None
        self._job_tasks: set = set()
        self._slots: Optional[asyncio.Semaphore] = None
        self._started_at: Optional[float] = None
        self._mem_task: Optional[asyncio.Task] = None
        self._memory_sample = memory_snapshot()
        # Per-tenant accumulators for the fleet console's rogue scores.
        self.tenants: Dict[str, dict] = {}
        self._recent: deque = deque(maxlen=max(1, self.config.recent_jobs))
        self._submitted_counter = self.registry.counter(
            "repro_serve_jobs_submitted_total",
            "Submissions admitted (including cache hits)",
        )
        self._cache_hit_jobs_counter = self.registry.counter(
            "repro_serve_cache_hit_jobs_total",
            "Submissions answered from the result cache without queueing",
        )
        self._events_dropped_counter = self.registry.counter(
            "repro_serve_job_events_dropped_total",
            "Per-job lifecycle events dropped by the max_events_per_job cap",
        )
        self._e2e_hist = self.registry.histogram(
            "repro_serve_e2e_seconds",
            "Submit-to-done latency per priority class "
            "(includes cache hits)",
            labelnames=("priority_class",),
            min_value=0.001,
        )
        self._rss_gauge = self.registry.gauge(
            "repro_process_rss_bytes",
            "Resident set size sampled every mem_sample_interval_s",
        )
        self._tm_current_gauge = self.registry.gauge(
            "repro_process_tracemalloc_bytes",
            "tracemalloc-traced Python heap (0 when not tracing)",
        )
        self._tm_peak_gauge = self.registry.gauge(
            "repro_process_tracemalloc_peak_bytes",
            "tracemalloc peak traced heap (0 when not tracing)",
        )
        self.registry.gauge(
            "repro_serve_uptime_seconds", "Seconds since server start",
            fn=lambda: self.healthz()["uptime_s"],
        )
        # Fleet-facing observability, registered only in fleet mode so
        # a plain single-node scrape stays free of dead families.
        self._ratelimited_counter = None
        if self.limiter is not None:
            self._ratelimited_counter = self.registry.counter(
                "repro_fleet_ratelimited_total",
                "Submissions rejected by the per-tenant token bucket",
                labelnames=("tenant",),
            )
        self._misrouted_counter = None
        if self.config.node_id is not None:
            self._misrouted_counter = self.registry.counter(
                "repro_fleet_misrouted_total",
                "Submissions the coordinator routed to a different node "
                "than the one that served them",
            )

    @property
    def jobs(self) -> Dict[str, Job]:
        """Live + retained-terminal jobs (the job table's registry)."""
        return self.table.jobs

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the fleet and background tasks on the running loop."""
        loop = asyncio.get_event_loop()
        self._started_at = loop.time()
        if self.config.enable_tracemalloc and not tracemalloc.is_tracing():
            tracemalloc.start()
        self.fleet.start(loop)
        self._slots = asyncio.Semaphore(self.config.workers)
        self._supervisor_task = asyncio.ensure_future(self._supervise())
        self.sample_memory()
        self._mem_task = asyncio.ensure_future(self._memory_sampler())

    async def drain(self, grace_s: Optional[float] = None) -> None:
        """Graceful drain: settle in-flight work, then stop the fleet."""
        self.draining = True
        self.queue.close()

        async def settle() -> None:
            if self._supervisor_task is not None:
                await self._supervisor_task
            if self._job_tasks:
                await asyncio.gather(
                    *list(self._job_tasks), return_exceptions=True
                )

        grace = grace_s if grace_s is not None else self.config.drain_grace_s
        try:
            await asyncio.wait_for(settle(), timeout=grace)
        except asyncio.TimeoutError:
            # Grace expired: drop what's left.  The swept jobs go
            # through the same terminal accounting as a DELETE cancel,
            # so tenant docs and queue totals agree after a hard drain.
            for job in self.queue.cancel_all():
                self._finalize_job(job)
            for task in list(self._job_tasks):
                task.cancel()
            await asyncio.gather(*list(self._job_tasks), return_exceptions=True)
        if self._mem_task is not None:
            self._mem_task.cancel()
        self.fleet.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def sample_memory(self) -> dict:
        sample = memory_snapshot()
        self._memory_sample = sample
        self._rss_gauge.set(sample["rss_bytes"])
        self._tm_current_gauge.set(sample["tracemalloc"]["current_bytes"])
        self._tm_peak_gauge.set(sample["tracemalloc"]["peak_bytes"])
        return sample

    async def _memory_sampler(self) -> None:
        """Refresh the RSS/tracemalloc gauges on a fixed interval.

        The same tick re-runs the job-table GC: a burst of results can
        leave the table over budget but inside the min-retention
        window, and with no further submissions nothing else would
        re-enforce the budget once the window passes.
        """
        interval = max(0.05, self.config.mem_sample_interval_s)
        while True:
            await asyncio.sleep(interval)
            self.sample_memory()
            self.table.gc()

    # ------------------------------------------------------------------
    # Supervision: queue -> fleet
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        """Feed the fleet one job per free worker slot, forever.

        Acquiring a slot *before* popping keeps waiting jobs inside the
        priority queue (where deadlines and cancellation still apply)
        instead of parking them in the pool's opaque internal queue.
        """
        while True:
            await self._slots.acquire()
            job = await self.queue.pop()
            if job is None:  # closed and drained
                self._slots.release()
                return
            task = asyncio.ensure_future(self._run_job(job))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_event_loop()
        try:
            remaining: Optional[float] = None
            if job.deadline_at is not None:
                remaining = job.deadline_at - loop.time()
                if remaining <= 0:
                    # One accounting path with dequeue-time expiry:
                    # queue.expire moves the stats total AND the
                    # Prometheus counter (they used to diverge here).
                    self.queue.expire(
                        job,
                        reason="deadline exceeded before a worker was free",
                    )
                    return
            job.state = JobState.RUNNING
            job.started_at = loop.time()
            job.add_event("started", {
                "queued_s": round(job.started_at - job.submitted_at, 4),
                "attempt": job.attempts + 1,
            })
            try:
                run = self.fleet.run(job)
                if remaining is not None:
                    outcome = await asyncio.wait_for(run, timeout=remaining)
                else:
                    outcome = await run
            except asyncio.TimeoutError:
                job.state = JobState.FAILED
                job.error = (
                    f"deadline exceeded after "
                    f"{loop.time() - job.submitted_at:.3f}s"
                )
                job.add_event("failed", {"error": job.error})
                return  # slot release deferred if the attempt lives on
            except asyncio.CancelledError:
                job.state = JobState.CANCELLED
                job.error = "server shut down before the job finished"
                job.add_event("cancelled", {"error": job.error})
                raise
            except Exception as exc:  # WorkerCrashed, sim errors, pickling
                job.state = JobState.FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.add_event("failed", {"error": job.error})
                return
            job.result = outcome["result"]
            job.state = JobState.DONE
            job.finished_at = loop.time()
            self.cache.put(
                job.cache_key, job.result, request=job.request.to_dict()
            )
            job.stored_at = loop.time()
            job.add_event("done", {
                "cache_hit": False,
                "worker_pid": outcome.get("worker_pid"),
                "fps": job.result.get("fps"),
                "refault": job.result.get("refault"),
            })
        finally:
            if job.finished_at is None:
                job.finished_at = loop.time()
            self._finalize_job(job)
            # A deadline timeout cancels the awaiting coroutine but a
            # pool process cannot be interrupted mid-call: the worker
            # keeps executing, so releasing the slot now would let the
            # supervisor dispatch more jobs than there are free
            # workers.  Hold the slot until the abandoned attempt
            # actually returns.
            drain = self.fleet.abandoned_drain(job.id)
            if drain is None:
                self._slots.release()
            else:
                task = asyncio.ensure_future(self._release_slot_after(drain))
                self._job_tasks.add(task)
                task.add_done_callback(self._job_tasks.discard)

    async def _release_slot_after(self, drain) -> None:
        try:
            await drain
        finally:
            self._slots.release()

    def _tenant_acc(self, tenant: str) -> dict:
        acc = self.tenants.get(tenant)
        if acc is None:
            acc = self.tenants[tenant] = {
                "submitted": 0, "cache_hits": 0, "done": 0, "failed": 0,
                "expired": 0, "cancelled": 0,
                "exec_s": 0.0, "queue_wait_s": 0.0,
            }
        return acc

    def _finalize_job(self, job: Job) -> None:
        """Fold a newly terminal job into every accumulator — once.

        Jobs reach terminal states down several paths (worker return,
        cache hit, DELETE cancel, queue expiry, forced drain); this is
        the single place tenant accounting, latency histograms, and
        job-table retention happen, and the ``finalized`` flag makes a
        second arrival a no-op.
        """
        if job.finalized or not job.terminal:
            return
        job.finalized = True
        acc = self._tenant_acc(job.tenant)
        spans = job.spans()
        if spans["queue_wait_s"] is not None:
            acc["queue_wait_s"] += spans["queue_wait_s"]
        if job.state == JobState.DONE:
            acc["done"] += 1
            if spans["exec_s"] is not None:
                acc["exec_s"] += spans["exec_s"]
            if spans["e2e_s"] is not None:
                self._e2e_hist.labels(job.priority_class).observe(
                    spans["e2e_s"]
                )
        elif job.state == JobState.FAILED:
            acc["failed"] += 1
            if spans["exec_s"] is not None:
                acc["exec_s"] += spans["exec_s"]
        elif job.state == JobState.EXPIRED:
            acc["expired"] += 1
        elif job.state == JobState.CANCELLED:
            acc["cancelled"] += 1
        self.table.note_terminal(job)

    def _on_progress(self, message: dict) -> None:
        job = self.jobs.get(message.get("job_id", ""))
        if job is not None and not job.terminal:
            job.add_event(message["event"], message["data"])

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> Tuple[int, Job]:
        """Admit one request; returns ``(http_status, job)``.

        Raises :class:`BadSubmission` for malformed payloads,
        :class:`RateLimited` when the tenant's bucket is empty, and
        :class:`QueueFull` for backpressure.
        """
        if self.draining:
            raise BadSubmission("server is draining")  # callers map to 503
        options, request = self._parse_submission(payload)
        if self.limiter is not None:
            from repro.serve.queue import priority_class

            decision = self.limiter.admit(
                options["tenant"], priority_class(options["priority"])
            )
            if not decision.allowed:
                if self._ratelimited_counter is not None:
                    self._ratelimited_counter.labels(options["tenant"]).inc()
                raise RateLimited(decision)
        loop = asyncio.get_event_loop()
        job = Job(
            id=f"run-{uuid.uuid4().hex[:12]}",
            request=request,
            priority=options["priority"],
            tenant=options["tenant"],
            submitted_at=loop.time(),
            progress_interval_ms=options["progress_interval_ms"],
            max_events=self.config.max_events_per_job,
            on_event_dropped=self._events_dropped_counter.inc,
        )
        timeout_s = options["timeout_s"]
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        if timeout_s is not None:
            job.deadline_at = job.submitted_at + timeout_s

        self.submitted_total += 1
        self._submitted_counter.inc()
        acc = self._tenant_acc(job.tenant)
        acc["submitted"] += 1
        cached = self.cache.get(job.cache_key)
        if cached is not None:
            # Served straight from the content address: no queueing, no
            # worker, terminal immediately.
            job.cache_hit = True
            job.result = cached
            job.state = JobState.DONE
            job.finished_at = loop.time()
            self.cache_hit_jobs += 1
            self._cache_hit_jobs_counter.inc()
            acc["cache_hits"] += 1
            self.table.add(job)
            self._recent.append(job.id)
            job.add_event("done", {
                "cache_hit": True,
                "fps": cached.get("fps"),
                "refault": cached.get("refault"),
            })
            self._finalize_job(job)  # done count, e2e latency, retention
            return 200, job
        self.queue.push(job)  # may raise QueueFull -> 429
        self.table.add(job)
        self._recent.append(job.id)
        return 202, job

    def note_misrouted(self) -> None:
        """Record a submission the coordinator aimed at another node."""
        if self._misrouted_counter is not None:
            self._misrouted_counter.inc()

    @property
    def misrouted_total(self) -> int:
        if self._misrouted_counter is None:
            return 0
        return int(self._misrouted_counter.value)

    def _parse_submission(self, payload: dict) -> Tuple[dict, RunRequest]:
        if not isinstance(payload, dict):
            raise BadSubmission("request body must be a JSON object")
        payload = dict(payload)
        options = {
            "priority": payload.pop("priority", None),
            "timeout_s": payload.pop("timeout_s", None),
            "progress_interval_ms": payload.pop("progress_interval_ms", None),
            "tenant": payload.pop("tenant", None),
        }
        if options["priority"] is None:
            options["priority"] = 10
        if options["tenant"] is None:
            options["tenant"] = DEFAULT_TENANT
        if (
            not isinstance(options["tenant"], str)
            or not options["tenant"]
            or len(options["tenant"]) > 64
        ):
            raise BadSubmission(
                "tenant must be a non-empty string (<= 64 chars)"
            )
        try:
            options["priority"] = int(options["priority"])
            if not MIN_PRIORITY <= options["priority"] <= MAX_PRIORITY:
                raise ValueError(
                    f"priority must be between {MIN_PRIORITY} and "
                    f"{MAX_PRIORITY} (lower runs first; default 10)"
                )
            if options["timeout_s"] is not None:
                options["timeout_s"] = float(options["timeout_s"])
                if options["timeout_s"] <= 0:
                    raise ValueError("timeout_s must be positive")
            if options["progress_interval_ms"] is not None:
                options["progress_interval_ms"] = float(
                    options["progress_interval_ms"]
                )
                if options["progress_interval_ms"] <= 0:
                    raise ValueError("progress_interval_ms must be positive")
            request = RunRequest.from_dict(payload)
        except (TypeError, ValueError) as exc:
            raise BadSubmission(str(exc)) from None
        if request.policy not in available_policies():
            raise BadSubmission(
                f"unknown policy {request.policy!r}; "
                f"valid: {', '.join(available_policies())}"
            )
        if request.scenario not in APP_CATALOG and not request.known_scenario():
            raise BadSubmission(
                f"unknown scenario {request.scenario!r}; "
                f"valid scenario ids S-A..S-D or a catalog package name"
            )
        if request.device not in DEVICES:
            raise BadSubmission(
                f"unknown device {request.device!r}; "
                f"valid: {', '.join(sorted(DEVICES))}"
            )
        return options, request

    # ------------------------------------------------------------------
    # Introspection documents
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        loop = asyncio.get_event_loop()
        uptime = (
            loop.time() - self._started_at if self._started_at is not None
            else 0.0
        )
        doc = {
            "status": "draining" if self.draining else "ok",
            "server": self.server_name(),
            "uptime_s": round(uptime, 3),
        }
        if self.config.node_id is not None:
            doc["node_id"] = self.config.node_id
        return doc

    def server_name(self) -> str:
        from repro.serve.http import SERVER_NAME

        return SERVER_NAME

    def stats(self) -> dict:
        states = self.table.state_counts()
        queue_stats = self.queue.stats()
        fleet_stats = self.fleet.stats()
        cache_stats = self.cache.stats()
        doc = self.healthz()
        doc.update({
            "jobs": {
                "submitted_total": self.submitted_total,
                "cache_hits": self.cache_hit_jobs,
                "events_dropped_total": int(
                    self._events_dropped_counter.value
                ),
                **states,
            },
            "queue": queue_stats,
            "retention": self.table.stats(),
            "cache": cache_stats,
            "workers": fleet_stats,
            "latency": {
                "queue_wait_s": queue_stats["queue_wait_s"],
                "exec_s": fleet_stats["exec_s"],
                "e2e_s": latency_summary(self._e2e_hist),
            },
            "memory": {
                **self._memory_sample,
                "cache_memory_bytes": self.cache.memory_bytes,
                "cache_budget_bytes": self.cache.memory_budget_bytes,
            },
            "tenants": self._tenant_docs(),
            "recent": [
                self._recent_doc(job_id) for job_id in reversed(self._recent)
            ],
        })
        if self.limiter is not None:
            doc["ratelimit"] = self.limiter.stats()
        if self.config.node_id is not None:
            doc["fleet"] = {
                "node_id": self.config.node_id,
                "misrouted_total": self.misrouted_total,
            }
        return doc

    def _recent_doc(self, job_id: str) -> dict:
        # A tight retention budget can evict a run while it is still in
        # the recent ring; the console row survives via its tombstone.
        job, tombstone = self.table.lookup(job_id)
        if job is None:
            doc = tombstone or {"id": job_id, "state": "evicted"}
            return {
                "id": doc.get("id", job_id),
                "tenant": doc.get("tenant"),
                "state": doc.get("state"),
                "priority": doc.get("priority"),
                "cache_hit": doc.get("cache_hit"),
                "scenario": doc.get("scenario"),
                "policy": doc.get("policy"),
                "evicted": True,
            }
        return {
            "id": job.id,
            "tenant": job.tenant,
            "state": job.state,
            "priority": job.priority,
            "cache_hit": job.cache_hit,
            "scenario": job.request.scenario,
            "policy": job.request.policy,
        }

    def _tenant_docs(self) -> Dict[str, dict]:
        """Per-tenant shares and a blended rogue score.

        The score maps the SNIPPETS "rogue hunter" dimensions onto
        queue behavior: blocking (40%) = share of jobs currently
        parked in the queue, contention (30%) = share of all worker
        execution seconds consumed, pressure (20%) = share of total
        submissions, inefficiency (10%) = own failure rate.  1.0 means
        one tenant owns the whole fleet's pain.
        """
        queued_by_tenant: Dict[str, int] = {}
        for job in self.jobs.values():
            if job.state == JobState.QUEUED:
                queued_by_tenant[job.tenant] = (
                    queued_by_tenant.get(job.tenant, 0) + 1
                )
        total_queued = sum(queued_by_tenant.values())
        total_exec = sum(acc["exec_s"] for acc in self.tenants.values())
        total_submitted = sum(
            acc["submitted"] for acc in self.tenants.values()
        )
        docs: Dict[str, dict] = {}
        for tenant, acc in sorted(self.tenants.items()):
            queued = queued_by_tenant.get(tenant, 0)
            queue_share = queued / total_queued if total_queued else 0.0
            exec_share = (
                acc["exec_s"] / total_exec if total_exec else 0.0
            )
            submit_share = (
                acc["submitted"] / total_submitted if total_submitted else 0.0
            )
            attempts = acc["done"] + acc["failed"]
            failure_rate = acc["failed"] / attempts if attempts else 0.0
            rogue = (
                0.4 * queue_share
                + 0.3 * exec_share
                + 0.2 * submit_share
                + 0.1 * failure_rate
            )
            docs[tenant] = {
                **{k: round(v, 4) if isinstance(v, float) else v
                   for k, v in acc.items()},
                "queued_now": queued,
                "queue_share": round(queue_share, 4),
                "exec_share": round(exec_share, 4),
                "submit_share": round(submit_share, 4),
                "failure_rate": round(failure_rate, 4),
                "rogue_score": round(rogue, 4),
            }
        return docs
