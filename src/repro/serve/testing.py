"""In-process server harness for tests and embedded use.

Runs a :class:`SimulationServer` on its own event loop in a daemon
thread so blocking test code (pytest, :class:`ServeClient`) can talk to
a real listening socket — the same code path production traffic takes,
ephemeral port and all.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.serve.http import ServeConfig, SimulationServer


class ServerThread:
    """``with ServerThread(config) as handle: ...`` — a live server."""

    def __init__(self, config: Optional[ServeConfig] = None, startup_timeout_s: float = 30.0):
        self.config = config or ServeConfig(port=0, workers=1)
        self.startup_timeout_s = startup_timeout_s
        self.server: Optional[SimulationServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-test", daemon=True
        )

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # ------------------------------------------------------------------
    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface startup/runtime failures
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_event_loop()
        self.server = SimulationServer(self.config)
        await self.server.start()
        self._ready.set()
        await self.server.serve_forever()

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=self.startup_timeout_s):
            raise TimeoutError("server did not start in time")
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
