"""Terminal-job retention: a byte-budgeted table with tombstones.

The job table is the serve plane's last unbounded structure: every
submission creates a :class:`~repro.serve.queue.Job` that used to live
in ``SimulationServer.jobs`` forever so pollers and SSE followers could
read terminal states.  On a long-lived server that is a slow leak —
each terminal job retains its full result document, request, and event
list, so ten thousand submissions quietly cost tens of MB of RSS that
never come back.

:class:`JobTable` applies the same canonical-size budgeting the
:class:`~repro.serve.cache.ResultCache` memory tier uses:

* **Byte-costed GC** — when a job reaches a terminal state it is
  charged the canonical-JSON size of its snapshot plus its event list
  (computed once; terminal jobs never grow), and the table evicts the
  oldest terminal jobs while the total exceeds ``budget_bytes``.
* **Min-retention window** — a job is never evicted within
  ``min_retention_s`` of finishing, so a client that just submitted
  can always poll its result; the budget is therefore enforced once
  the window has passed (and re-checked by the periodic GC tick).
* **Tombstones, not 404s** — eviction leaves behind a small summary
  document, so ``GET /v1/runs/<id>`` answers 410 Gone with the job's
  final state instead of pretending the run never existed.  Tombstones
  are themselves bounded (``tombstone_limit``, oldest dropped first).

Running jobs and queued jobs are never evicted — only terminal ones —
so the GC can never orphan the supervisor's in-flight work.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.serve.queue import Job, JobState
from repro.serve.spec import canonical_size_bytes

# Terminal jobs retained under ~16 MB by default: enough for thousands
# of small-result runs, bounded for a server that lives for days.
DEFAULT_JOB_BUDGET_BYTES = 16 * 1024 * 1024
DEFAULT_MIN_RETENTION_S = 30.0
DEFAULT_TOMBSTONE_LIMIT = 4096
# Per-job event-list bound applied by the server at submission.
DEFAULT_MAX_EVENTS_PER_JOB = 512


class JobTable:
    """Job registry with byte-budgeted terminal-job garbage collection."""

    def __init__(
        self,
        budget_bytes: Optional[int] = DEFAULT_JOB_BUDGET_BYTES,
        min_retention_s: float = DEFAULT_MIN_RETENTION_S,
        tombstone_limit: int = DEFAULT_TOMBSTONE_LIMIT,
        clock=None,
        registry=None,
    ):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("job budget_bytes must be positive or None")
        if min_retention_s < 0:
            raise ValueError("min_retention_s must be >= 0")
        if tombstone_limit < 0:
            raise ValueError("tombstone_limit must be >= 0")
        self.budget_bytes = budget_bytes
        self.min_retention_s = min_retention_s
        self.tombstone_limit = tombstone_limit
        self._clock = clock
        # All live + retained-terminal jobs, by id.
        self.jobs: Dict[str, Job] = {}
        # Terminal jobs in completion order (the GC's eviction order)
        # mapped to the loop time they were folded in.
        self._terminal: "OrderedDict[str, float]" = OrderedDict()
        self._costs: Dict[str, int] = {}
        self.terminal_bytes = 0
        self._tombstones: "OrderedDict[str, dict]" = OrderedDict()
        self.evicted_total = 0
        self.tombstones_dropped_total = 0
        self._evicted_counter = None
        if registry is not None:
            self._evicted_counter = registry.counter(
                "repro_serve_jobs_evicted_total",
                "Terminal jobs evicted from the job table to honor the "
                "byte budget (each leaves a tombstone)",
            )
            registry.gauge(
                "repro_serve_jobs_retained",
                "Jobs (live + terminal) currently held by the job table",
                fn=lambda: len(self.jobs),
            )
            registry.gauge(
                "repro_serve_job_table_bytes",
                "Canonical-JSON bytes charged to retained terminal jobs",
                fn=lambda: self.terminal_bytes,
            )
            registry.gauge(
                "repro_serve_job_table_budget_bytes",
                "Terminal-job retention budget (0 = unbounded)",
                fn=lambda: self.budget_bytes or 0,
            )
            registry.gauge(
                "repro_serve_job_tombstones",
                "Eviction tombstones currently answering 410 Gone",
                fn=lambda: len(self._tombstones),
            )

    # ------------------------------------------------------------------
    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_event_loop().time()

    def __len__(self) -> int:
        return len(self.jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self.jobs

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def add(self, job: Job) -> None:
        """Register a freshly admitted job (live, uncharged)."""
        self.jobs[job.id] = job

    def lookup(self, job_id: str) -> Tuple[Optional[Job], Optional[dict]]:
        """``(job, None)``, ``(None, tombstone)``, or ``(None, None)``."""
        job = self.jobs.get(job_id)
        if job is not None:
            return job, None
        return None, self._tombstones.get(job_id)

    # ------------------------------------------------------------------
    # Terminal accounting + GC
    # ------------------------------------------------------------------
    def note_terminal(self, job: Job) -> None:
        """Charge a newly terminal job its retention cost (idempotent)."""
        if job.id in self._costs or job.id not in self.jobs:
            return
        if not job.terminal:
            return
        # Terminal jobs never mutate, so the cost is computed exactly
        # once.  Events are charged too: a progress-sampled run's event
        # list can dwarf its snapshot.
        cost = canonical_size_bytes(job.snapshot()) + canonical_size_bytes(
            job.events
        )
        self._costs[job.id] = cost
        self._terminal[job.id] = self._now()
        self.terminal_bytes += cost
        self.gc()

    def gc(self, now: Optional[float] = None) -> int:
        """Evict oldest terminal jobs until the budget holds.

        Jobs younger than ``min_retention_s`` are never evicted, so the
        budget can be transiently exceeded by a burst of fresh results;
        the periodic GC tick re-enforces it once the window passes.
        Returns the number of jobs evicted.
        """
        if self.budget_bytes is None:
            return 0
        now = self._now() if now is None else now
        evicted = 0
        while self.terminal_bytes > self.budget_bytes and self._terminal:
            job_id, finished = next(iter(self._terminal.items()))
            if now - finished < self.min_retention_s:
                break  # everything older was already evicted
            self._evict(job_id, now)
            evicted += 1
        return evicted

    def _evict(self, job_id: str, now: float) -> None:
        del self._terminal[job_id]
        self.terminal_bytes -= self._costs.pop(job_id)
        job = self.jobs.pop(job_id)
        self.evicted_total += 1
        if self._evicted_counter is not None:
            self._evicted_counter.inc()
        if self.tombstone_limit <= 0:
            return
        self._tombstones[job_id] = self._tombstone_doc(job, now)
        while len(self._tombstones) > self.tombstone_limit:
            self._tombstones.popitem(last=False)
            self.tombstones_dropped_total += 1

    @staticmethod
    def _tombstone_doc(job: Job, now: float) -> dict:
        """The small fixed-shape summary a 410 response serves."""
        return {
            "id": job.id,
            "state": job.state,
            "evicted": True,
            "evicted_at": now,
            "tenant": job.tenant,
            "priority": job.priority,
            "priority_class": job.priority_class,
            "cache_hit": job.cache_hit,
            "cache_key": job.cache_key,
            "scenario": job.request.scenario,
            "policy": job.request.policy,
            "error": job.error,
            "submitted_at": job.submitted_at,
            "finished_at": job.finished_at,
        }

    # ------------------------------------------------------------------
    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JobState.ALL}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts

    def stats(self) -> dict:
        return {
            "retained": len(self.jobs),
            "terminal_retained": len(self._terminal),
            "terminal_bytes": self.terminal_bytes,
            "budget_bytes": self.budget_bytes,
            "min_retention_s": self.min_retention_s,
            "evicted_total": self.evicted_total,
            "tombstones": len(self._tombstones),
            "tombstone_limit": self.tombstone_limit,
            "tombstones_dropped_total": self.tombstones_dropped_total,
        }
