"""`repro.serve` — simulation-as-a-service control plane.

Turns one-shot CLI runs into addressable, deduplicated requests:

* :mod:`repro.serve.spec`    — canonical :class:`RunRequest` + cache key
* :mod:`repro.serve.queue`   — bounded priority queue (backpressure,
  deadlines, cancellation, FIFO fairness)
* :mod:`repro.serve.workers` — supervised process-pool fleet with crash
  retry and sampler-fed progress streaming
* :mod:`repro.serve.cache`   — content-addressed result store
* :mod:`repro.serve.retention` — byte-budgeted terminal-job table with
  eviction tombstones (410 Gone)
* :mod:`repro.serve.http`    — asyncio HTTP/JSON + SSE API
* :mod:`repro.serve.client`  — blocking client (`repro submit`)
* :mod:`repro.serve.testing` — in-process server harness
"""

from repro.serve.cache import ResultCache
from repro.serve.client import QueueFullError, ServeClient, ServeError
from repro.serve.http import ServeConfig, SimulationServer, run_server
from repro.serve.queue import Job, JobQueue, JobState, QueueFull
from repro.serve.retention import JobTable
from repro.serve.spec import RunRequest
from repro.serve.workers import WorkerCrashed, WorkerFleet

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "JobTable",
    "QueueFull",
    "QueueFullError",
    "ResultCache",
    "RunRequest",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "SimulationServer",
    "WorkerCrashed",
    "WorkerFleet",
    "run_server",
]
