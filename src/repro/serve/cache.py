"""Content-addressed result store: memory tier + optional disk tier.

Results are keyed by :meth:`RunRequest.cache_key` — a hash of the
request's canonical form — so the key *is* the proof that a stored
result answers the incoming request: the simulator is deterministic,
equal inputs hash equally, and unequal inputs cannot collide into each
other's entries (modulo sha256).  Duplicate submissions are therefore
served without spawning a worker at all.

The memory tier is a plain dict (fast path, always on).  The disk tier
is optional (``cache_dir``): one JSON file per key, written atomically
(temp file + ``os.replace``) so a killed server never leaves a torn
entry, and re-read lazily so a restarted server warms itself from disk
as requests arrive.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Optional

CACHE_SCHEMA_VERSION = 1


class ResultCache:
    """Two-tier (memory + optional JSON-on-disk) result store."""

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir
        self._memory: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.disk_loads = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        """The cached result document, or None (counts a hit/miss)."""
        entry = self._memory.get(key)
        if entry is None and self.cache_dir:
            entry = self._load_from_disk(key)
            if entry is not None:
                self._memory[key] = entry
                self.disk_loads += 1
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def _load_from_disk(self, key: str) -> Optional[dict]:
        try:
            with open(self._path(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            # Missing or torn/corrupt file: treat as a miss; a fresh
            # run will overwrite it atomically.
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or "result" not in entry
        ):
            return None
        return entry

    def put(self, key: str, result: dict, request: Optional[dict] = None) -> None:
        """Store a result under its content address (idempotent)."""
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "cached_at": time.time(),
            "request": request,
            "result": result,
        }
        self._memory[key] = entry
        if self.cache_dir:
            self._write_to_disk(key, entry)

    def _write_to_disk(self, key: str, entry: dict) -> None:
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp_path, self._path(key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        """Presence probe that does NOT move the hit/miss counters."""
        if key in self._memory:
            return True
        return bool(self.cache_dir) and os.path.exists(self._path(key))

    @property
    def entries(self) -> int:
        return len(self._memory)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "disk_loads": self.disk_loads,
            "disk_dir": self.cache_dir,
        }
