"""Content-addressed result store: budgeted memory tier + disk tier.

Results are keyed by :meth:`RunRequest.cache_key` — a hash of the
request's canonical form — so the key *is* the proof that a stored
result answers the incoming request: the simulator is deterministic,
equal inputs hash equally, and unequal inputs cannot collide into each
other's entries (modulo sha256).  Duplicate submissions are therefore
served without spawning a worker at all.

The memory tier is a size-aware LRU under a byte budget.  An unbounded
dict here is the classic slow leak — tens of entries can quietly cost
hundreds of MB of RSS on a long-lived server — so every entry is
charged its canonical-JSON size on admission, reads refresh recency,
and admission evicts from the cold end until the budget holds again.
The budget is a hard cap: an entry larger than the entire budget is
never admitted to memory (it still lands on disk).  Eviction only
forgets the *memory* copy; the content address makes that safe — an
evicted result is either re-read from the disk tier or deterministically
recomputed.

The disk tier is optional (``cache_dir``): one JSON file per key,
written atomically (temp file + ``os.replace``) so a killed server
never leaves a torn entry, and re-read lazily so a restarted server
warms itself from disk as requests arrive.

Hit/miss counters are split by tier — a single blended ``hits`` number
hides whether the disk tier is earning its I/O — and every counter is
optionally mirrored into a :class:`~repro.obs.metrics.MetricsRegistry`
for ``GET /metrics`` scrapes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from typing import Dict, Optional

from repro.serve.spec import canonical_size_bytes

CACHE_SCHEMA_VERSION = 1

# Default memory-tier budget used by the serve plane (overridable via
# `repro serve --cache-budget-mb`).  Direct constructions default to
# unbounded for backward compatibility.
DEFAULT_MEMORY_BUDGET_BYTES = 64 * 1024 * 1024


class ResultCache:
    """Two-tier (budgeted-LRU memory + optional JSON-on-disk) store."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        memory_budget_bytes: Optional[int] = None,
        registry=None,
    ):
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive or None")
        self.cache_dir = cache_dir
        self.memory_budget_bytes = memory_budget_bytes
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self.memory_bytes = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_loads = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
        self._hits_counter = None
        self._misses_counter = None
        self._evictions_counter = None
        if registry is not None:
            self._hits_counter = registry.counter(
                "repro_serve_cache_hits_total",
                "Result-cache hits by tier", labelnames=("tier",),
            )
            # Touch both tier children so the scrape shows them at 0.
            self._hits_counter.labels("memory")
            self._hits_counter.labels("disk")
            self._misses_counter = registry.counter(
                "repro_serve_cache_misses_total", "Result-cache misses",
            )
            self._evictions_counter = registry.counter(
                "repro_serve_cache_evictions_total",
                "Memory-tier entries evicted to honor the byte budget",
            )
            registry.gauge(
                "repro_serve_cache_memory_bytes",
                "Canonical-JSON bytes held by the memory tier",
                fn=lambda: self.memory_bytes,
            )
            registry.gauge(
                "repro_serve_cache_entries",
                "Entries resident in the memory tier",
                fn=lambda: len(self._memory),
            )

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        """The cached result document, or None (counts a hit/miss)."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)  # refresh LRU recency
            self.memory_hits += 1
            if self._hits_counter is not None:
                self._hits_counter.labels("memory").inc()
            return entry["result"]
        if self.cache_dir:
            entry = self._load_from_disk(key)
            if entry is not None:
                self.disk_loads += 1
                self._admit(key, entry)
                self.disk_hits += 1
                if self._hits_counter is not None:
                    self._hits_counter.labels("disk").inc()
                return entry["result"]
        self.misses += 1
        if self._misses_counter is not None:
            self._misses_counter.inc()
        return None

    def _load_from_disk(self, key: str) -> Optional[dict]:
        try:
            with open(self._path(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            # Missing or torn/corrupt file: treat as a miss; a fresh
            # run will overwrite it atomically.
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or "result" not in entry
        ):
            return None
        return entry

    def put(self, key: str, result: dict, request: Optional[dict] = None) -> None:
        """Store a result under its content address (idempotent)."""
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "cached_at": time.time(),
            "request": request,
            "result": result,
        }
        self._admit(key, entry)
        if self.cache_dir:
            self._write_to_disk(key, entry)

    # ------------------------------------------------------------------
    # Memory tier: size-aware LRU under the byte budget
    # ------------------------------------------------------------------
    def _admit(self, key: str, entry: dict) -> None:
        cost = canonical_size_bytes(entry)
        if key in self._memory:
            self.memory_bytes -= self._sizes.pop(key)
            del self._memory[key]
        budget = self.memory_budget_bytes
        if budget is not None and cost > budget:
            # Larger than the whole budget: admitting it would evict
            # everything *and* still bust the cap, so it lives on disk
            # (or gets recomputed) instead.
            self.evictions += 1
            if self._evictions_counter is not None:
                self._evictions_counter.inc()
            return
        self._memory[key] = entry
        self._sizes[key] = cost
        self.memory_bytes += cost
        if budget is not None:
            while self.memory_bytes > budget and len(self._memory) > 1:
                cold_key, _ = self._memory.popitem(last=False)
                self.memory_bytes -= self._sizes.pop(cold_key)
                self.evictions += 1
                if self._evictions_counter is not None:
                    self._evictions_counter.inc()

    def _write_to_disk(self, key: str, entry: dict) -> None:
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp_path, self._path(key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        """Presence probe that does NOT move the hit/miss counters."""
        if key in self._memory:
            return True
        return bool(self.cache_dir) and os.path.exists(self._path(key))

    @property
    def entries(self) -> int:
        return len(self._memory)

    @property
    def hits(self) -> int:
        """Total hits across tiers (memory + disk)."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": self.entries,
            "memory_bytes": self.memory_bytes,
            "memory_budget_bytes": self.memory_budget_bytes,
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "disk_loads": self.disk_loads,
            "disk_dir": self.cache_dir,
        }
