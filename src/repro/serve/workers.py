"""The worker fleet: simulations fan out to a process pool.

Simulations are CPU-bound pure-Python work, so the fleet runs them in a
``ProcessPoolExecutor`` — the same fan-out mechanism as ``repro bench
--jobs`` — and leans on the same determinism discipline:
``run_scenario`` resets the global page/task/pid id sequences at entry,
so a run executed 5th in a pool worker is bit-identical to the same
request run directly from the CLI.  That property is what makes the
content-addressed cache sound.

Supervision details:

* **Crash detection** — a worker that dies (OOM-kill, segfault,
  ``os._exit``) surfaces as ``BrokenProcessPool``; the fleet rebuilds
  the pool and retries the job up to ``max_retries`` times before
  failing it.  Simulation errors (unknown scenario/policy, bad
  config) are *not* retried: they are deterministic and would fail
  identically every time.
* **Progress streaming** — workers cannot touch the server's event
  loop, so each pool process inherits one shared ``multiprocessing``
  queue (via the pool initializer); when a job asks for progress the
  worker attaches a :class:`~repro.trace.sampler.Sampler` to its run
  and pushes a compact row per sample.  A drain thread forwards rows
  onto the loop, where they become SSE events.  Progress sampling adds
  sampler ticks to ``events_executed`` (paper metrics are unaffected),
  so it is off unless the submission requests it.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

from repro.serve.spec import RunRequest

# The subset of sampler columns worth streaming per progress tick —
# enough to draw a live FPS/pressure dashboard without shipping every
# series over SSE.
PROGRESS_SAMPLE_KEYS = (
    "fps",
    "free_pages",
    "available_pages",
    "refault_total",
    "pgsteal",
    "cpu_utilization",
    "psi_mem_some_avg10",
    "frozen_processes",
)


class WorkerCrashed(Exception):
    """A job's worker process died more times than ``max_retries``."""


# Set in each pool process by the initializer; the parent's drain
# thread reads the other end.
_PROGRESS_QUEUE = None


def _init_worker(progress_queue) -> None:
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = progress_queue


def _warmup() -> int:
    """Pre-import the simulator so the first real job starts hot."""
    import repro.experiments.scenarios  # noqa: F401  (import for side effect)

    return os.getpid()


def execute_request(payload) -> dict:
    """Pool entry point: run one request, return its scalar result.

    ``payload`` is ``(job_id, request_dict, progress_interval_ms)``;
    the request travels as a plain dict because the frozen dataclass is
    rebuilt worker-side anyway (cheap) and dicts survive any pickle
    protocol drift.
    """
    job_id, request_dict, progress_interval_ms = payload
    # Imported here so the parent's import graph stays light and the
    # worker pays the simulator import cost once per process, not once
    # per job.
    from repro.devices.specs import get_device
    from repro.experiments.scenarios import run_scenario

    request = RunRequest.from_dict(request_dict)
    on_sample = None
    if progress_interval_ms and _PROGRESS_QUEUE is not None:
        queue = _PROGRESS_QUEUE

        def on_sample(now_ms: float, row: dict) -> None:
            data = {"now_ms": now_ms}
            for key in PROGRESS_SAMPLE_KEYS:
                data[key] = round(float(row[key]), 3)
            queue.put({"job_id": job_id, "event": "sample", "data": data})

    result = run_scenario(
        request.scenario,
        policy=request.policy,
        spec=get_device(request.device),
        bg_case=request.bg_case,
        bg_count=request.bg_count,
        seconds=request.seconds,
        settle_s=request.settle_s,
        seed=request.seed,
        sample_interval_ms=(
            progress_interval_ms if progress_interval_ms else None
        ),
        on_sample=on_sample,
    )
    return {"result": result.to_dict(), "worker_pid": os.getpid()}


class WorkerFleet:
    """Supervised ``ProcessPoolExecutor`` with crash retry and stats."""

    def __init__(
        self,
        size: int = 2,
        max_retries: int = 1,
        on_progress: Optional[Callable[[dict], None]] = None,
        registry=None,
    ):
        if size <= 0:
            raise ValueError("fleet size must be positive")
        self.size = size
        self.max_retries = max_retries
        self.on_progress = on_progress
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._progress_queue = None
        self._drain_thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.busy = 0
        self.started_total = 0
        self.completed_total = 0
        self.failed_total = 0
        self.retries_total = 0
        self.crashes_total = 0
        # Attempts whose job gave up (deadline fired, caller cancelled)
        # while the pool process was still executing.  A pool worker
        # cannot be interrupted mid-call, so the attempt stays counted
        # busy until the process actually returns — releasing the slot
        # at cancel time would over-admit the fleet.
        self.abandoned = 0
        self.abandoned_total = 0
        self._abandoned_drains: dict = {}
        # Metrics (a private registry when none is shared, so exec
        # latency summaries work identically without a scrape endpoint).
        from repro.obs.metrics import MetricsRegistry

        registry = registry or MetricsRegistry()
        self._exec_hist = registry.histogram(
            "repro_serve_exec_seconds",
            "Worker wall-clock per successful attempt, per priority class",
            labelnames=("priority_class",),
            min_value=0.001,
        )
        self._counters = {
            name: registry.counter(f"repro_serve_worker_{name}_total", help_text)
            for name, help_text in (
                ("started", "Job attempts handed to the pool"),
                ("completed", "Attempts that returned a result"),
                ("failed", "Jobs failed after exhausting retries"),
                ("retries", "Attempts retried after a worker crash"),
                ("crashes", "BrokenProcessPool events observed"),
                ("abandoned", "Attempts abandoned by a deadline while "
                              "still executing on a pool process"),
            )
        }
        registry.gauge(
            "repro_serve_workers_busy",
            "Attempts currently executing on the pool "
            "(includes abandoned attempts still running)",
            fn=lambda: self.busy,
        )
        registry.gauge(
            "repro_serve_workers_abandoned",
            "Abandoned attempts still executing on a pool process",
            fn=lambda: self.abandoned,
        )
        registry.gauge(
            "repro_serve_workers_size",
            "Configured pool size", fn=lambda: self.size,
        )
        registry.gauge(
            "repro_serve_worker_utilization",
            "busy / pool size", fn=lambda: self.utilization,
        )

    # ------------------------------------------------------------------
    def start(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        if self._pool is not None:
            return
        self._loop = loop or asyncio.get_event_loop()
        self._progress_queue = multiprocessing.Queue()
        self._build_pool()
        self._drain_thread = threading.Thread(
            target=self._drain_progress, name="serve-progress-drain",
            daemon=True,
        )
        self._drain_thread.start()

    def _build_pool(self) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=self.size,
            initializer=_init_worker,
            initargs=(self._progress_queue,),
        )
        # Spawn the whole fleet NOW, before the HTTP listener accepts
        # traffic: the executor otherwise forks lazily at first submit,
        # and a fork duplicates every open fd — a worker forked while a
        # client connection is live would hold that socket open forever
        # after the server closes its copy (the peer never sees EOF).
        # Eager warmup also pre-imports the simulator per worker.
        _futures_wait([self._pool.submit(_warmup) for _ in range(self.size)])

    def _rebuild_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace a broken pool exactly once, however many jobs saw
        the same ``BrokenProcessPool``."""
        with self._pool_lock:
            if self._pool is broken:
                broken.shutdown(wait=False)
                self._build_pool()

    def _drain_progress(self) -> None:
        while True:
            message = self._progress_queue.get()
            if message is None:
                return
            if self.on_progress is not None and self._loop is not None:
                try:
                    self._loop.call_soon_threadsafe(self.on_progress, message)
                except RuntimeError:
                    return  # loop already closed during shutdown

    # ------------------------------------------------------------------
    async def run(self, job) -> dict:
        """Run one job to completion on the fleet.

        Retries only pool breakage; raises the simulation's own
        exception unchanged otherwise.  ``asyncio.TimeoutError``
        propagates to the caller if the job's deadline fires mid-run
        (the caller applies the deadline via ``wait_for``).
        """
        if self._pool is None:
            raise RuntimeError("fleet not started")
        loop = asyncio.get_event_loop()
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            pool = self._pool
            job.attempts += 1
            self.started_total += 1
            self._counters["started"].inc()
            self.busy += 1
            attempt_started = loop.time()
            future = None
            abandoned = False
            try:
                future = pool.submit(
                    execute_request,
                    (job.id, job.request.to_dict(), job.progress_interval_ms),
                )
                outcome = await asyncio.wrap_future(future)
            except BrokenProcessPool as exc:
                self.crashes_total += 1
                self._counters["crashes"].inc()
                last_error = exc
                self._rebuild_pool(pool)
                if attempt < self.max_retries:
                    self.retries_total += 1
                    self._counters["retries"].inc()
                    job.add_event("retry", {
                        "attempt": job.attempts,
                        "reason": "worker process died",
                    })
                    continue
            except asyncio.CancelledError:
                # wrap_future already tried to cancel the pool future.
                # If it was still pending the cancel stuck and the slot
                # really is free; if the worker is mid-call it cannot
                # be stopped, so the attempt stays accounted busy until
                # the process returns (`abandoned_drain` resolves then).
                if future is not None and not future.cancelled():
                    abandoned = True
                    self._abandon(job.id, future)
                raise
            except Exception:
                self.failed_total += 1
                self._counters["failed"].inc()
                raise
            else:
                self.completed_total += 1
                self._counters["completed"].inc()
                self._exec_hist.labels(job.priority_class).observe(
                    loop.time() - attempt_started
                )
                return outcome
            finally:
                if not abandoned:
                    self.busy -= 1
        self.failed_total += 1
        self._counters["failed"].inc()
        raise WorkerCrashed(
            f"worker died {job.attempts} time(s) running {job.id}"
        ) from last_error

    # ------------------------------------------------------------------
    # Abandoned attempts: deadline fired, worker still executing
    # ------------------------------------------------------------------
    def _abandon(self, job_id: str, future) -> None:
        self.abandoned += 1
        self.abandoned_total += 1
        self._counters["abandoned"].inc()
        drain = self._loop.create_future()
        self._abandoned_drains[job_id] = drain
        # The pool future completes on an executor thread; hop back to
        # the loop before touching fleet state or resolving the drain.
        def _done(_f, job_id=job_id) -> None:
            try:
                self._loop.call_soon_threadsafe(self._abandoned_done, job_id)
            except RuntimeError:
                pass  # loop already closed during shutdown
        future.add_done_callback(_done)

    def _abandoned_done(self, job_id: str) -> None:
        self.busy -= 1
        self.abandoned -= 1
        drain = self._abandoned_drains.pop(job_id, None)
        if drain is not None and not drain.done():
            drain.set_result(None)

    def abandoned_drain(self, job_id: str):
        """Awaitable resolved when the job's abandoned attempt returns.

        ``None`` when the job has no attempt still executing — the
        common case, where the caller may free the worker slot at once.
        """
        return self._abandoned_drains.get(job_id)

    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        return self.busy / self.size if self.size else 0.0

    def stats(self) -> dict:
        from repro.obs.metrics import latency_summary

        return {
            "pool_size": self.size,
            "busy": self.busy,
            "utilization": round(self.utilization, 4),
            "started_total": self.started_total,
            "completed_total": self.completed_total,
            "failed_total": self.failed_total,
            "retries_total": self.retries_total,
            "crashes_total": self.crashes_total,
            "abandoned": self.abandoned,
            "abandoned_total": self.abandoned_total,
            "exec_s": latency_summary(self._exec_hist),
        }

    def shutdown(self, wait: bool = True) -> None:
        if self._progress_queue is not None:
            try:
                self._progress_queue.put(None)  # stop the drain thread
            except (OSError, ValueError):
                pass
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=2.0)
            self._drain_thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None
        if self._progress_queue is not None:
            self._progress_queue.close()
            self._progress_queue = None
