"""Admission control: a bounded priority queue of simulation jobs.

The queue is the server's only admission point, and it implements the
properties a serving stack needs at the front door:

* **Backpressure** — depth is bounded; :meth:`JobQueue.push` raises
  :class:`QueueFull` when the bound is hit and the HTTP layer turns
  that into a 429 so clients back off instead of piling on.
* **Priorities with FIFO fairness** — lower ``priority`` values run
  first; within a priority class jobs run in arrival order (a
  monotonically increasing sequence number breaks heap ties).
* **Deadlines** — a job may carry a queue deadline; if it is still
  waiting when the deadline passes it is *expired* at dequeue time and
  never wastes a worker.
* **Cancellation** — queued jobs can be cancelled; they are dropped
  lazily when the heap surfaces them.

Coordination is asyncio-native (the HTTP server and the worker
supervisor share one event loop), with no threads or locks of its own.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, latency_summary
from repro.serve.spec import RunRequest

DEFAULT_PRIORITY = 10
DEFAULT_TENANT = "default"

# Submission priorities are bounded: an open-ended integer range would
# let one absurd submission (priority=2**63) sort ahead of or behind
# everything forever, and the per-class metric labels assume a sane
# numeric neighborhood around DEFAULT_PRIORITY.
MIN_PRIORITY = 0
MAX_PRIORITY = 99


def priority_class(priority: int) -> str:
    """Label space for per-class latency metrics.

    Three stable classes instead of one label value per raw integer:
    an open-ended integer range would mint unbounded metric series.
    """
    if priority < DEFAULT_PRIORITY:
        return "high"
    if priority == DEFAULT_PRIORITY:
        return "normal"
    return "low"


class QueueFull(Exception):
    """Raised by :meth:`JobQueue.push` when the depth bound is hit."""


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"

    TERMINAL = (DONE, FAILED, CANCELLED, EXPIRED)
    ALL = (QUEUED, RUNNING) + TERMINAL


@dataclass
class Job:
    """One submission's full lifecycle record.

    The job table keeps these around after completion so pollers and
    SSE streams can read terminal states; ``events`` accumulates the
    stream every ``GET /v1/runs/<id>/events`` replays and follows.

    ``events`` is bounded when ``max_events`` is set: the oldest events
    are dropped first (the terminal event is always the newest, so it
    survives), ``events_base`` records the absolute index of
    ``events[0]`` so SSE followers can tell replay loss from a fresh
    stream, and ``events_dropped`` counts the loss.  An unbounded event
    list is the same slow leak as an unbounded job table — one
    long-running job with progress sampling can accumulate tens of
    thousands of rows.
    """

    id: str
    request: RunRequest
    priority: int = DEFAULT_PRIORITY
    tenant: str = DEFAULT_TENANT
    # Monotonic loop time of submission; deadline is absolute loop time
    # (None = wait forever in queue).
    submitted_at: float = 0.0
    deadline_at: Optional[float] = None
    progress_interval_ms: Optional[float] = None
    state: str = JobState.QUEUED
    cache_hit: bool = False
    attempts: int = 0
    result: Optional[dict] = None
    error: Optional[str] = None
    # Request-lifecycle span timestamps (monotonic loop/queue-clock
    # time): enqueue → dispatch (popped for a free worker) → execute
    # (started_at/finished_at) → cache-store.
    enqueued_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    stored_at: Optional[float] = None
    events: List[dict] = field(default_factory=list)
    # Event-list retention (None = unbounded, for direct constructions).
    max_events: Optional[int] = None
    events_base: int = 0
    events_dropped: int = 0
    # Optional hook the server wires to its metrics counter so every
    # dropped event is visible on /metrics without the Job knowing
    # about registries.
    on_event_dropped: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    # Set once the server has folded this job into its terminal
    # accumulators (tenant accounting, latency histograms, retention);
    # guards the several paths a job can take to a terminal state from
    # double-counting it.
    finalized: bool = field(default=False, repr=False, compare=False)

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def cache_key(self) -> str:
        return self.request.cache_key()

    @property
    def priority_class(self) -> str:
        return priority_class(self.priority)

    def spans(self) -> dict:
        """Derived per-phase durations (None while a phase is open)."""

        def delta(start, end):
            if start is None or end is None:
                return None
            return round(end - start, 6)

        return {
            "queue_wait_s": delta(self.enqueued_at, self.dispatched_at),
            "exec_s": delta(self.started_at, self.finished_at),
            "store_s": delta(self.finished_at, self.stored_at),
            "e2e_s": delta(self.submitted_at, self.finished_at),
        }

    def add_event(self, kind: str, data: Optional[dict] = None) -> None:
        """Append to the stream SSE followers replay and poll.

        When ``max_events`` is set the oldest events fall off the front
        of the list; followers detect the gap via ``events_base``.
        """
        self.events.append({"event": kind, "data": data or {}})
        if self.max_events is not None:
            while len(self.events) > max(1, self.max_events):
                self.events.pop(0)
                self.events_base += 1
                self.events_dropped += 1
                if self.on_event_dropped is not None:
                    self.on_event_dropped()

    def snapshot(self) -> dict:
        """The JSON document ``GET /v1/runs/<id>`` serves."""
        return {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "priority_class": self.priority_class,
            "tenant": self.tenant,
            "cache_hit": self.cache_hit,
            "cache_key": self.cache_key,
            "attempts": self.attempts,
            "request": self.request.to_dict(),
            "result": self.result,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "enqueued_at": self.enqueued_at,
            "dispatched_at": self.dispatched_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "stored_at": self.stored_at,
            "spans": self.spans(),
            "events_dropped": self.events_dropped,
        }


async def _notify(cond: asyncio.Condition) -> None:
    async with cond:
        cond.notify_all()


class JobQueue:
    """Bounded, priority-ordered, deadline-aware asyncio job queue."""

    def __init__(self, maxsize: int = 64, clock=None, registry=None):
        if maxsize <= 0:
            raise ValueError("queue maxsize must be positive")
        self.maxsize = maxsize
        # Injectable clock (defaults to the running loop's monotonic
        # time) so deadline tests don't sleep real seconds.
        self._clock = clock
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._not_empty = asyncio.Condition()
        self._queued: Dict[str, Job] = {}
        self.enqueued_total = 0
        self.expired_total = 0
        self.cancelled_total = 0
        self._closed = False
        # Fired for every job the queue expires (dequeue-time or via
        # :meth:`expire`), so the server can fold the job into tenant
        # and retention accounting — jobs expired inside the heap never
        # surface from :meth:`pop` and would otherwise be invisible.
        self.on_expired: Optional[Callable[[Job], None]] = None
        # Metrics: a private registry when none is shared keeps the
        # span accounting identical whether or not a scrape endpoint
        # exists (unit tests read stats() from the same histograms).
        registry = registry or MetricsRegistry()
        self._wait_hist = registry.histogram(
            "repro_serve_queue_wait_seconds",
            "Time between enqueue and dispatch to a worker slot, "
            "per priority class",
            labelnames=("priority_class",),
            min_value=0.001,
        )
        self._enqueued_counter = registry.counter(
            "repro_serve_queue_enqueued_total",
            "Jobs admitted to the queue", labelnames=("priority_class",),
        )
        self._expired_counter = registry.counter(
            "repro_serve_queue_expired_total",
            "Jobs whose deadline passed while still queued",
        )
        self._cancelled_counter = registry.counter(
            "repro_serve_queue_cancelled_total",
            "Queued jobs cancelled before dispatch",
        )
        registry.gauge(
            "repro_serve_queue_depth",
            "Jobs admitted and still waiting", fn=lambda: self.depth,
        )
        registry.gauge(
            "repro_serve_queue_capacity",
            "Depth bound before 429 backpressure", fn=lambda: self.maxsize,
        )

    # ------------------------------------------------------------------
    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_event_loop().time()

    @property
    def depth(self) -> int:
        """Jobs admitted and still waiting (excludes lazy tombstones)."""
        return len(self._queued)

    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Admit a job or raise :class:`QueueFull` (HTTP 429)."""
        if self.depth >= self.maxsize:
            raise QueueFull(
                f"queue full ({self.depth}/{self.maxsize} jobs waiting)"
            )
        job.state = JobState.QUEUED
        job.enqueued_at = self._now()
        heapq.heappush(self._heap, (job.priority, next(self._seq), job))
        self._queued[job.id] = job
        self.enqueued_total += 1
        self._enqueued_counter.labels(job.priority_class).inc()
        job.add_event("queued", {
            "priority": job.priority, "depth": self.depth,
        })
        asyncio.ensure_future(_notify(self._not_empty))

    def expire(self, job: Job, reason: Optional[str] = None) -> None:
        """Expire a job through the one shared accounting path.

        Every deadline expiry — at dequeue time or pre-dispatch in the
        server's run loop — funnels here so ``expired_total`` and the
        ``repro_serve_queue_expired_total`` Prometheus counter can
        never diverge (they used to: the pre-dispatch path bumped only
        the plain attribute).  Idempotent: a job that already expired
        (or otherwise reached a terminal state) is left untouched.
        """
        if job.terminal:
            return
        now = self._now()
        job.state = JobState.EXPIRED
        job.finished_at = now
        job.error = reason or (
            f"queue deadline exceeded after "
            f"{now - job.submitted_at:.3f}s waiting"
        )
        self.expired_total += 1
        self._expired_counter.inc()
        job.add_event("expired", {"error": job.error})
        if self.on_expired is not None:
            self.on_expired(job)

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; returns False if it is not waiting."""
        job = self._queued.pop(job_id, None)
        if job is None:
            return False
        # The heap entry stays behind as a tombstone; pop() skips it.
        job.state = JobState.CANCELLED
        job.finished_at = self._now()
        self.cancelled_total += 1
        self._cancelled_counter.inc()
        job.add_event("cancelled", {})
        return True

    async def pop(self) -> Optional[Job]:
        """Next runnable job in (priority, FIFO) order.

        Expired and cancelled entries are discarded as they surface.
        Returns ``None`` once the queue is closed and drained.
        """
        while True:
            job = self._pop_runnable()
            if job is not None:
                return job
            if self._closed:
                return None
            async with self._not_empty:
                await self._not_empty.wait_for(
                    lambda: bool(self._heap) or self._closed
                )

    def _pop_runnable(self) -> Optional[Job]:
        now = self._now()
        while self._heap:
            _prio, _seq, job = heapq.heappop(self._heap)
            if job.id not in self._queued:
                continue  # cancelled tombstone: never observed as latency
            del self._queued[job.id]
            if job.deadline_at is not None and now > job.deadline_at:
                self.expire(job)
                continue
            # Only genuinely dispatched jobs contribute to the wait
            # histograms; tombstones and expiries would skew p99 with
            # durations no worker ever saw.
            job.dispatched_at = now
            if job.enqueued_at is not None:
                self._wait_hist.labels(job.priority_class).observe(
                    now - job.enqueued_at
                )
            return job
        return None

    def close(self) -> None:
        """Stop blocking poppers (drain path); queued jobs still pop."""
        self._closed = True
        asyncio.ensure_future(_notify(self._not_empty))

    def cancel_all(self) -> List[Job]:
        """Cancel every waiting job (forced shutdown).

        Returns the cancelled jobs so the caller can fold them into the
        same per-tenant/terminal accounting the DELETE handler applies —
        a hard drain used to skip those accumulators entirely, leaving
        tenant docs and queue totals disagreeing after shutdown.
        """
        cancelled: List[Job] = []
        for job_id in list(self._queued):
            job = self._queued.get(job_id)
            if job is not None and self.cancel(job_id):
                cancelled.append(job)
        return cancelled

    def stats(self) -> dict:
        return {
            "depth": self.depth,
            "capacity": self.maxsize,
            "enqueued_total": self.enqueued_total,
            "expired_total": self.expired_total,
            "cancelled_total": self.cancelled_total,
            "queue_wait_s": latency_summary(self._wait_hist),
        }
