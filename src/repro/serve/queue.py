"""Admission control: a bounded priority queue of simulation jobs.

The queue is the server's only admission point, and it implements the
properties a serving stack needs at the front door:

* **Backpressure** — depth is bounded; :meth:`JobQueue.push` raises
  :class:`QueueFull` when the bound is hit and the HTTP layer turns
  that into a 429 so clients back off instead of piling on.
* **Priorities with FIFO fairness** — lower ``priority`` values run
  first; within a priority class jobs run in arrival order (a
  monotonically increasing sequence number breaks heap ties).
* **Deadlines** — a job may carry a queue deadline; if it is still
  waiting when the deadline passes it is *expired* at dequeue time and
  never wastes a worker.
* **Cancellation** — queued jobs can be cancelled; they are dropped
  lazily when the heap surfaces them.

Coordination is asyncio-native (the HTTP server and the worker
supervisor share one event loop), with no threads or locks of its own.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serve.spec import RunRequest

DEFAULT_PRIORITY = 10


class QueueFull(Exception):
    """Raised by :meth:`JobQueue.push` when the depth bound is hit."""


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"

    TERMINAL = (DONE, FAILED, CANCELLED, EXPIRED)
    ALL = (QUEUED, RUNNING) + TERMINAL


@dataclass
class Job:
    """One submission's full lifecycle record.

    The job table keeps these around after completion so pollers and
    SSE streams can read terminal states; ``events`` accumulates the
    stream every ``GET /v1/runs/<id>/events`` replays and follows.
    """

    id: str
    request: RunRequest
    priority: int = DEFAULT_PRIORITY
    # Monotonic loop time of submission; deadline is absolute loop time
    # (None = wait forever in queue).
    submitted_at: float = 0.0
    deadline_at: Optional[float] = None
    progress_interval_ms: Optional[float] = None
    state: str = JobState.QUEUED
    cache_hit: bool = False
    attempts: int = 0
    result: Optional[dict] = None
    error: Optional[str] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    events: List[dict] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def cache_key(self) -> str:
        return self.request.cache_key()

    def add_event(self, kind: str, data: Optional[dict] = None) -> None:
        """Append to the stream SSE followers replay and poll."""
        self.events.append({"event": kind, "data": data or {}})

    def snapshot(self) -> dict:
        """The JSON document ``GET /v1/runs/<id>`` serves."""
        return {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "cache_hit": self.cache_hit,
            "cache_key": self.cache_key,
            "attempts": self.attempts,
            "request": self.request.to_dict(),
            "result": self.result,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


async def _notify(cond: asyncio.Condition) -> None:
    async with cond:
        cond.notify_all()


class JobQueue:
    """Bounded, priority-ordered, deadline-aware asyncio job queue."""

    def __init__(self, maxsize: int = 64, clock=None):
        if maxsize <= 0:
            raise ValueError("queue maxsize must be positive")
        self.maxsize = maxsize
        # Injectable clock (defaults to the running loop's monotonic
        # time) so deadline tests don't sleep real seconds.
        self._clock = clock
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._not_empty = asyncio.Condition()
        self._queued: Dict[str, Job] = {}
        self.enqueued_total = 0
        self.expired_total = 0
        self.cancelled_total = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_event_loop().time()

    @property
    def depth(self) -> int:
        """Jobs admitted and still waiting (excludes lazy tombstones)."""
        return len(self._queued)

    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Admit a job or raise :class:`QueueFull` (HTTP 429)."""
        if self.depth >= self.maxsize:
            raise QueueFull(
                f"queue full ({self.depth}/{self.maxsize} jobs waiting)"
            )
        job.state = JobState.QUEUED
        heapq.heappush(self._heap, (job.priority, next(self._seq), job))
        self._queued[job.id] = job
        self.enqueued_total += 1
        job.add_event("queued", {
            "priority": job.priority, "depth": self.depth,
        })
        asyncio.ensure_future(_notify(self._not_empty))

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; returns False if it is not waiting."""
        job = self._queued.pop(job_id, None)
        if job is None:
            return False
        # The heap entry stays behind as a tombstone; pop() skips it.
        job.state = JobState.CANCELLED
        job.finished_at = self._now()
        self.cancelled_total += 1
        job.add_event("cancelled", {})
        return True

    async def pop(self) -> Optional[Job]:
        """Next runnable job in (priority, FIFO) order.

        Expired and cancelled entries are discarded as they surface.
        Returns ``None`` once the queue is closed and drained.
        """
        while True:
            job = self._pop_runnable()
            if job is not None:
                return job
            if self._closed:
                return None
            async with self._not_empty:
                await self._not_empty.wait_for(
                    lambda: bool(self._heap) or self._closed
                )

    def _pop_runnable(self) -> Optional[Job]:
        now = self._now()
        while self._heap:
            _prio, _seq, job = heapq.heappop(self._heap)
            if job.id not in self._queued:
                continue  # cancelled tombstone
            del self._queued[job.id]
            if job.deadline_at is not None and now > job.deadline_at:
                job.state = JobState.EXPIRED
                job.finished_at = now
                job.error = (
                    f"queue deadline exceeded after "
                    f"{now - job.submitted_at:.3f}s waiting"
                )
                self.expired_total += 1
                job.add_event("expired", {"error": job.error})
                continue
            return job
        return None

    def close(self) -> None:
        """Stop blocking poppers (drain path); queued jobs still pop."""
        self._closed = True
        asyncio.ensure_future(_notify(self._not_empty))

    def cancel_all(self) -> int:
        """Cancel every waiting job (forced shutdown); returns count."""
        count = 0
        for job_id in list(self._queued):
            if self.cancel(job_id):
                count += 1
        return count

    def stats(self) -> dict:
        return {
            "depth": self.depth,
            "capacity": self.maxsize,
            "enqueued_total": self.enqueued_total,
            "expired_total": self.expired_total,
            "cancelled_total": self.cancelled_total,
        }
