"""The control plane's HTTP/JSON surface (stdlib asyncio only).

Endpoints (all under ``/v1``):

* ``POST   /v1/runs``          — submit a :class:`RunRequest` (JSON body;
  optional ``priority``, ``timeout_s``, ``progress_interval_ms``
  submission options).  202 queued, 200 cache hit, 429 queue full,
  503 draining, 400 malformed.
* ``GET    /v1/runs/<id>``        — job snapshot (state, result, error).
* ``GET    /v1/runs/<id>/events`` — Server-Sent Events: replays the
  job's lifecycle (``queued``/``started``/``sample``/``retry``/
  ``done``/``failed``/``cancelled``/``expired``) and follows it live;
  ``sample`` events carry sampler rows when the submission asked for
  progress.
* ``DELETE /v1/runs/<id>``        — cancel a queued job (409 once running).
* ``GET    /v1/healthz``          — liveness + drain state.
* ``GET    /v1/stats``            — queue depth, cache hit rate, worker
  utilization, job state counts, per-priority-class latency
  percentiles, an RSS/tracemalloc/cache memory breakdown, per-tenant
  rogue scores, and the most recent runs.
* ``GET    /metrics``             — Prometheus text exposition from the
  server's metrics registry (counters, gauges, latency histograms).

On SIGTERM (or :meth:`SimulationServer.request_shutdown`) the server
drains gracefully: new submissions get 503 while polls keep working,
queued and running jobs finish within a grace period, then the fleet
and the listener shut down.
"""

from __future__ import annotations

import asyncio
import json
import signal
import tracemalloc
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apps.catalog import APP_CATALOG
from repro.devices.specs import DEVICES
from repro.obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    latency_summary,
    memory_snapshot,
)
from repro.policies.registry import available_policies
from repro.serve.cache import DEFAULT_MEMORY_BUDGET_BYTES, ResultCache
from repro.serve.queue import (
    DEFAULT_TENANT,
    MAX_PRIORITY,
    MIN_PRIORITY,
    Job,
    JobQueue,
    JobState,
    QueueFull,
)
from repro.serve.retention import (
    DEFAULT_JOB_BUDGET_BYTES,
    DEFAULT_MAX_EVENTS_PER_JOB,
    DEFAULT_MIN_RETENTION_S,
    DEFAULT_TOMBSTONE_LIMIT,
    JobTable,
)
from repro.serve.spec import RunRequest, SPEC_VERSION
from repro.serve.workers import WorkerFleet

SERVER_NAME = f"repro-serve/{SPEC_VERSION}"

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_TERMINAL_EVENTS = frozenset(
    ("done", "failed", "cancelled", "expired")
)

_MAX_BODY_BYTES = 1 << 20

# How often an SSE follower re-checks a job for fresh events.
_SSE_POLL_S = 0.05


@dataclass
class ServeConfig:
    """One server instance's knobs."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 = ephemeral (tests)
    workers: int = 2
    queue_depth: int = 64
    max_retries: int = 1
    cache_dir: Optional[str] = None
    drain_grace_s: float = 60.0
    # Applied when a submission carries no timeout_s of its own
    # (None = jobs may wait/run forever).
    default_timeout_s: Optional[float] = None
    # Memory-tier byte budget for the result cache (None = unbounded).
    cache_budget_bytes: Optional[int] = DEFAULT_MEMORY_BUDGET_BYTES
    # How often the RSS/tracemalloc gauges are re-sampled.
    mem_sample_interval_s: float = 10.0
    # Start tracemalloc at server start (costs ~2x on allocations but
    # attributes the Python heap precisely).
    enable_tracemalloc: bool = False
    # Idle SSE followers get a `: ping` comment frame at this interval
    # so read-timeout clients can tell a quiet stream from a dead one.
    sse_keepalive_s: float = 15.0
    # How many recently submitted runs /v1/stats lists (fleet console).
    recent_jobs: int = 20
    # Terminal-job retention: canonical-JSON byte budget for finished
    # jobs (None = retain forever, the pre-retention behavior), the
    # window inside which a finished job is never evicted, and the
    # bound on eviction tombstones (410 Gone summaries).
    job_budget_bytes: Optional[int] = DEFAULT_JOB_BUDGET_BYTES
    job_min_retention_s: float = DEFAULT_MIN_RETENTION_S
    job_tombstone_limit: int = DEFAULT_TOMBSTONE_LIMIT
    # Per-job event-list cap; SSE followers see a `dropped_events`
    # marker where history was lost (None = unbounded).
    max_events_per_job: Optional[int] = DEFAULT_MAX_EVENTS_PER_JOB


class _BadRequest(Exception):
    """Maps to a 400 with the exception text as the error body."""


class _PayloadTooLarge(Exception):
    """Maps to a 413 with the exception text as the error body."""


class SimulationServer:
    """Queue + fleet + cache behind an asyncio HTTP listener."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        # Per-instance registry: two servers in one process (tests)
        # must not collide on family names or blend their counters.
        self.registry = MetricsRegistry()
        self.cache = ResultCache(
            self.config.cache_dir,
            memory_budget_bytes=self.config.cache_budget_bytes,
            registry=self.registry,
        )
        self.queue = JobQueue(
            maxsize=self.config.queue_depth, registry=self.registry
        )
        self.fleet = WorkerFleet(
            size=self.config.workers,
            max_retries=self.config.max_retries,
            on_progress=self._on_progress,
            registry=self.registry,
        )
        self.table = JobTable(
            budget_bytes=self.config.job_budget_bytes,
            min_retention_s=self.config.job_min_retention_s,
            tombstone_limit=self.config.job_tombstone_limit,
            registry=self.registry,
        )
        # Dequeue-time expiries never surface from queue.pop(); the
        # callback folds them into tenant/retention accounting anyway.
        self.queue.on_expired = self._finalize_job
        self.submitted_total = 0
        self.cache_hit_jobs = 0
        self.draining = False
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._supervisor_task: Optional[asyncio.Task] = None
        self._job_tasks: set = set()
        self._slots: Optional[asyncio.Semaphore] = None
        self._stopped = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None
        self._started_at: Optional[float] = None
        self._mem_task: Optional[asyncio.Task] = None
        self._memory_sample = memory_snapshot()
        # Per-tenant accumulators for the fleet console's rogue scores.
        self.tenants: Dict[str, dict] = {}
        self._recent: deque = deque(maxlen=max(1, self.config.recent_jobs))
        self._submitted_counter = self.registry.counter(
            "repro_serve_jobs_submitted_total",
            "Submissions admitted (including cache hits)",
        )
        self._cache_hit_jobs_counter = self.registry.counter(
            "repro_serve_cache_hit_jobs_total",
            "Submissions answered from the result cache without queueing",
        )
        self._responses_counter = self.registry.counter(
            "repro_serve_http_responses_total",
            "HTTP responses by status code", labelnames=("status",),
        )
        self._keepalive_counter = self.registry.counter(
            "repro_serve_sse_keepalives_total",
            "SSE `: ping` comment frames written to idle followers",
        )
        self._events_dropped_counter = self.registry.counter(
            "repro_serve_job_events_dropped_total",
            "Per-job lifecycle events dropped by the max_events_per_job cap",
        )
        self._e2e_hist = self.registry.histogram(
            "repro_serve_e2e_seconds",
            "Submit-to-done latency per priority class "
            "(includes cache hits)",
            labelnames=("priority_class",),
            min_value=0.001,
        )
        self._rss_gauge = self.registry.gauge(
            "repro_process_rss_bytes",
            "Resident set size sampled every mem_sample_interval_s",
        )
        self._tm_current_gauge = self.registry.gauge(
            "repro_process_tracemalloc_bytes",
            "tracemalloc-traced Python heap (0 when not tracing)",
        )
        self._tm_peak_gauge = self.registry.gauge(
            "repro_process_tracemalloc_peak_bytes",
            "tracemalloc peak traced heap (0 when not tracing)",
        )
        self.registry.gauge(
            "repro_serve_uptime_seconds", "Seconds since server start",
            fn=lambda: self.healthz()["uptime_s"],
        )

    @property
    def jobs(self) -> Dict[str, Job]:
        """Live + retained-terminal jobs (the job table's registry)."""
        return self.table.jobs

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_event_loop()
        self._started_at = loop.time()
        if self.config.enable_tracemalloc and not tracemalloc.is_tracing():
            tracemalloc.start()
        self.fleet.start(loop)
        self._slots = asyncio.Semaphore(self.config.workers)
        self._supervisor_task = asyncio.ensure_future(self._supervise())
        self._sample_memory()
        self._mem_task = asyncio.ensure_future(self._memory_sampler())
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def _sample_memory(self) -> dict:
        sample = memory_snapshot()
        self._memory_sample = sample
        self._rss_gauge.set(sample["rss_bytes"])
        self._tm_current_gauge.set(sample["tracemalloc"]["current_bytes"])
        self._tm_peak_gauge.set(sample["tracemalloc"]["peak_bytes"])
        return sample

    async def _memory_sampler(self) -> None:
        """Refresh the RSS/tracemalloc gauges on a fixed interval.

        The same tick re-runs the job-table GC: a burst of results can
        leave the table over budget but inside the min-retention
        window, and with no further submissions nothing else would
        re-enforce the budget once the window passes.
        """
        interval = max(0.05, self.config.mem_sample_interval_s)
        while True:
            await asyncio.sleep(interval)
            self._sample_memory()
            self.table.gc()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main-thread loops only)."""
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, ValueError, RuntimeError):
                return  # not the main thread / unsupported platform

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent, signal-handler safe)."""
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        self.draining = True
        self.queue.close()

        async def settle() -> None:
            if self._supervisor_task is not None:
                await self._supervisor_task
            if self._job_tasks:
                await asyncio.gather(
                    *list(self._job_tasks), return_exceptions=True
                )

        try:
            await asyncio.wait_for(settle(), timeout=self.config.drain_grace_s)
        except asyncio.TimeoutError:
            # Grace expired: drop what's left.  The swept jobs go
            # through the same terminal accounting as a DELETE cancel,
            # so tenant docs and queue totals agree after a hard drain.
            for job in self.queue.cancel_all():
                self._finalize_job(job)
            for task in list(self._job_tasks):
                task.cancel()
            await asyncio.gather(*list(self._job_tasks), return_exceptions=True)
        if self._mem_task is not None:
            self._mem_task.cancel()
        self.fleet.shutdown(wait=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Supervision: queue -> fleet
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        """Feed the fleet one job per free worker slot, forever.

        Acquiring a slot *before* popping keeps waiting jobs inside the
        priority queue (where deadlines and cancellation still apply)
        instead of parking them in the pool's opaque internal queue.
        """
        while True:
            await self._slots.acquire()
            job = await self.queue.pop()
            if job is None:  # closed and drained
                self._slots.release()
                return
            task = asyncio.ensure_future(self._run_job(job))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_event_loop()
        try:
            remaining: Optional[float] = None
            if job.deadline_at is not None:
                remaining = job.deadline_at - loop.time()
                if remaining <= 0:
                    # One accounting path with dequeue-time expiry:
                    # queue.expire moves the stats total AND the
                    # Prometheus counter (they used to diverge here).
                    self.queue.expire(
                        job,
                        reason="deadline exceeded before a worker was free",
                    )
                    return
            job.state = JobState.RUNNING
            job.started_at = loop.time()
            job.add_event("started", {
                "queued_s": round(job.started_at - job.submitted_at, 4),
                "attempt": job.attempts + 1,
            })
            try:
                run = self.fleet.run(job)
                if remaining is not None:
                    outcome = await asyncio.wait_for(run, timeout=remaining)
                else:
                    outcome = await run
            except asyncio.TimeoutError:
                job.state = JobState.FAILED
                job.error = (
                    f"deadline exceeded after "
                    f"{loop.time() - job.submitted_at:.3f}s"
                )
                job.add_event("failed", {"error": job.error})
                return  # slot release deferred if the attempt lives on
            except asyncio.CancelledError:
                job.state = JobState.CANCELLED
                job.error = "server shut down before the job finished"
                job.add_event("cancelled", {"error": job.error})
                raise
            except Exception as exc:  # WorkerCrashed, sim errors, pickling
                job.state = JobState.FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.add_event("failed", {"error": job.error})
                return
            job.result = outcome["result"]
            job.state = JobState.DONE
            job.finished_at = loop.time()
            self.cache.put(
                job.cache_key, job.result, request=job.request.to_dict()
            )
            job.stored_at = loop.time()
            job.add_event("done", {
                "cache_hit": False,
                "worker_pid": outcome.get("worker_pid"),
                "fps": job.result.get("fps"),
                "refault": job.result.get("refault"),
            })
        finally:
            if job.finished_at is None:
                job.finished_at = loop.time()
            self._finalize_job(job)
            # A deadline timeout cancels the awaiting coroutine but a
            # pool process cannot be interrupted mid-call: the worker
            # keeps executing, so releasing the slot now would let the
            # supervisor dispatch more jobs than there are free
            # workers.  Hold the slot until the abandoned attempt
            # actually returns.
            drain = self.fleet.abandoned_drain(job.id)
            if drain is None:
                self._slots.release()
            else:
                task = asyncio.ensure_future(self._release_slot_after(drain))
                self._job_tasks.add(task)
                task.add_done_callback(self._job_tasks.discard)

    async def _release_slot_after(self, drain) -> None:
        try:
            await drain
        finally:
            self._slots.release()

    def _tenant_acc(self, tenant: str) -> dict:
        acc = self.tenants.get(tenant)
        if acc is None:
            acc = self.tenants[tenant] = {
                "submitted": 0, "cache_hits": 0, "done": 0, "failed": 0,
                "expired": 0, "cancelled": 0,
                "exec_s": 0.0, "queue_wait_s": 0.0,
            }
        return acc

    def _finalize_job(self, job: Job) -> None:
        """Fold a newly terminal job into every accumulator — once.

        Jobs reach terminal states down several paths (worker return,
        cache hit, DELETE cancel, queue expiry, forced drain); this is
        the single place tenant accounting, latency histograms, and
        job-table retention happen, and the ``finalized`` flag makes a
        second arrival a no-op.
        """
        if job.finalized or not job.terminal:
            return
        job.finalized = True
        acc = self._tenant_acc(job.tenant)
        spans = job.spans()
        if spans["queue_wait_s"] is not None:
            acc["queue_wait_s"] += spans["queue_wait_s"]
        if job.state == JobState.DONE:
            acc["done"] += 1
            if spans["exec_s"] is not None:
                acc["exec_s"] += spans["exec_s"]
            if spans["e2e_s"] is not None:
                self._e2e_hist.labels(job.priority_class).observe(
                    spans["e2e_s"]
                )
        elif job.state == JobState.FAILED:
            acc["failed"] += 1
            if spans["exec_s"] is not None:
                acc["exec_s"] += spans["exec_s"]
        elif job.state == JobState.EXPIRED:
            acc["expired"] += 1
        elif job.state == JobState.CANCELLED:
            acc["cancelled"] += 1
        self.table.note_terminal(job)

    def _on_progress(self, message: dict) -> None:
        job = self.jobs.get(message.get("job_id", ""))
        if job is not None and not job.terminal:
            job.add_event(message["event"], message["data"])

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> Tuple[int, Job]:
        """Admit one request; returns ``(http_status, job)``.

        Raises :class:`_BadRequest` for malformed payloads and
        :class:`QueueFull` for backpressure.
        """
        if self.draining:
            raise _BadRequest("server is draining")  # callers map to 503
        options, request = self._parse_submission(payload)
        loop = asyncio.get_event_loop()
        job = Job(
            id=f"run-{uuid.uuid4().hex[:12]}",
            request=request,
            priority=options["priority"],
            tenant=options["tenant"],
            submitted_at=loop.time(),
            progress_interval_ms=options["progress_interval_ms"],
            max_events=self.config.max_events_per_job,
            on_event_dropped=self._events_dropped_counter.inc,
        )
        timeout_s = options["timeout_s"]
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        if timeout_s is not None:
            job.deadline_at = job.submitted_at + timeout_s

        self.submitted_total += 1
        self._submitted_counter.inc()
        acc = self._tenant_acc(job.tenant)
        acc["submitted"] += 1
        cached = self.cache.get(job.cache_key)
        if cached is not None:
            # Served straight from the content address: no queueing, no
            # worker, terminal immediately.
            job.cache_hit = True
            job.result = cached
            job.state = JobState.DONE
            job.finished_at = loop.time()
            self.cache_hit_jobs += 1
            self._cache_hit_jobs_counter.inc()
            acc["cache_hits"] += 1
            self.table.add(job)
            self._recent.append(job.id)
            job.add_event("done", {
                "cache_hit": True,
                "fps": cached.get("fps"),
                "refault": cached.get("refault"),
            })
            self._finalize_job(job)  # done count, e2e latency, retention
            return 200, job
        self.queue.push(job)  # may raise QueueFull -> 429
        self.table.add(job)
        self._recent.append(job.id)
        return 202, job

    def _parse_submission(self, payload: dict) -> Tuple[dict, RunRequest]:
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        payload = dict(payload)
        options = {
            "priority": payload.pop("priority", None),
            "timeout_s": payload.pop("timeout_s", None),
            "progress_interval_ms": payload.pop("progress_interval_ms", None),
            "tenant": payload.pop("tenant", None),
        }
        if options["priority"] is None:
            options["priority"] = 10
        if options["tenant"] is None:
            options["tenant"] = DEFAULT_TENANT
        if (
            not isinstance(options["tenant"], str)
            or not options["tenant"]
            or len(options["tenant"]) > 64
        ):
            raise _BadRequest("tenant must be a non-empty string (<= 64 chars)")
        try:
            options["priority"] = int(options["priority"])
            if not MIN_PRIORITY <= options["priority"] <= MAX_PRIORITY:
                raise ValueError(
                    f"priority must be between {MIN_PRIORITY} and "
                    f"{MAX_PRIORITY} (lower runs first; default 10)"
                )
            if options["timeout_s"] is not None:
                options["timeout_s"] = float(options["timeout_s"])
                if options["timeout_s"] <= 0:
                    raise ValueError("timeout_s must be positive")
            if options["progress_interval_ms"] is not None:
                options["progress_interval_ms"] = float(
                    options["progress_interval_ms"]
                )
                if options["progress_interval_ms"] <= 0:
                    raise ValueError("progress_interval_ms must be positive")
            request = RunRequest.from_dict(payload)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(str(exc)) from None
        if request.policy not in available_policies():
            raise _BadRequest(
                f"unknown policy {request.policy!r}; "
                f"valid: {', '.join(available_policies())}"
            )
        if request.scenario not in APP_CATALOG and not request.known_scenario():
            raise _BadRequest(
                f"unknown scenario {request.scenario!r}; "
                f"valid scenario ids S-A..S-D or a catalog package name"
            )
        if request.device not in DEVICES:
            raise _BadRequest(
                f"unknown device {request.device!r}; "
                f"valid: {', '.join(sorted(DEVICES))}"
            )
        return options, request

    # ------------------------------------------------------------------
    # Introspection documents
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        loop = asyncio.get_event_loop()
        uptime = (
            loop.time() - self._started_at if self._started_at is not None
            else 0.0
        )
        return {
            "status": "draining" if self.draining else "ok",
            "server": SERVER_NAME,
            "uptime_s": round(uptime, 3),
        }

    def stats(self) -> dict:
        states = self.table.state_counts()
        queue_stats = self.queue.stats()
        fleet_stats = self.fleet.stats()
        cache_stats = self.cache.stats()
        doc = self.healthz()
        doc.update({
            "jobs": {
                "submitted_total": self.submitted_total,
                "cache_hits": self.cache_hit_jobs,
                "events_dropped_total": int(
                    self._events_dropped_counter.value
                ),
                **states,
            },
            "queue": queue_stats,
            "retention": self.table.stats(),
            "cache": cache_stats,
            "workers": fleet_stats,
            "latency": {
                "queue_wait_s": queue_stats["queue_wait_s"],
                "exec_s": fleet_stats["exec_s"],
                "e2e_s": latency_summary(self._e2e_hist),
            },
            "memory": {
                **self._memory_sample,
                "cache_memory_bytes": self.cache.memory_bytes,
                "cache_budget_bytes": self.cache.memory_budget_bytes,
            },
            "tenants": self._tenant_docs(),
            "recent": [
                self._recent_doc(job_id) for job_id in reversed(self._recent)
            ],
        })
        return doc

    def _recent_doc(self, job_id: str) -> dict:
        # A tight retention budget can evict a run while it is still in
        # the recent ring; the console row survives via its tombstone.
        job, tombstone = self.table.lookup(job_id)
        if job is None:
            doc = tombstone or {"id": job_id, "state": "evicted"}
            return {
                "id": doc.get("id", job_id),
                "tenant": doc.get("tenant"),
                "state": doc.get("state"),
                "priority": doc.get("priority"),
                "cache_hit": doc.get("cache_hit"),
                "scenario": doc.get("scenario"),
                "policy": doc.get("policy"),
                "evicted": True,
            }
        return {
            "id": job.id,
            "tenant": job.tenant,
            "state": job.state,
            "priority": job.priority,
            "cache_hit": job.cache_hit,
            "scenario": job.request.scenario,
            "policy": job.request.policy,
        }

    def _tenant_docs(self) -> Dict[str, dict]:
        """Per-tenant shares and a blended rogue score.

        The score maps the SNIPPETS "rogue hunter" dimensions onto
        queue behavior: blocking (40%) = share of jobs currently
        parked in the queue, contention (30%) = share of all worker
        execution seconds consumed, pressure (20%) = share of total
        submissions, inefficiency (10%) = own failure rate.  1.0 means
        one tenant owns the whole fleet's pain.
        """
        queued_by_tenant: Dict[str, int] = {}
        for job in self.jobs.values():
            if job.state == JobState.QUEUED:
                queued_by_tenant[job.tenant] = (
                    queued_by_tenant.get(job.tenant, 0) + 1
                )
        total_queued = sum(queued_by_tenant.values())
        total_exec = sum(acc["exec_s"] for acc in self.tenants.values())
        total_submitted = sum(
            acc["submitted"] for acc in self.tenants.values()
        )
        docs: Dict[str, dict] = {}
        for tenant, acc in sorted(self.tenants.items()):
            queued = queued_by_tenant.get(tenant, 0)
            queue_share = queued / total_queued if total_queued else 0.0
            exec_share = (
                acc["exec_s"] / total_exec if total_exec else 0.0
            )
            submit_share = (
                acc["submitted"] / total_submitted if total_submitted else 0.0
            )
            attempts = acc["done"] + acc["failed"]
            failure_rate = acc["failed"] / attempts if attempts else 0.0
            rogue = (
                0.4 * queue_share
                + 0.3 * exec_share
                + 0.2 * submit_share
                + 0.1 * failure_rate
            )
            docs[tenant] = {
                **{k: round(v, 4) if isinstance(v, float) else v
                   for k, v in acc.items()},
                "queued_now": queued,
                "queue_share": round(queue_share, 4),
                "exec_share": round(exec_share, 4),
                "submit_share": round(submit_share, 4),
                "failure_rate": round(failure_rate, 4),
                "rogue_score": round(rogue, 4),
            }
        return docs

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            await self._dispatch(writer, method, path, body)
        except _BadRequest as exc:
            try:
                self._write_json(writer, 400, {"error": str(exc)})
                await self._discard_input(reader)
            except ConnectionError:
                pass
        except _PayloadTooLarge as exc:
            try:
                self._write_json(writer, 413, {"error": str(exc)})
                await self._discard_input(reader)
            except ConnectionError:
                pass
        except ConnectionError:
            pass
        except Exception as exc:  # never kill the accept loop
            try:
                self._write_json(writer, 500, {"error": str(exc)})
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()

    @staticmethod
    async def _discard_input(reader, limit: int = 8 << 20) -> None:
        """Best-effort drain of a rejected request's remaining bytes.

        Closing with unread input still queued makes the kernel send an
        RST, which can destroy the error response before the client
        reads it.  Bounded by ``limit`` and a short timeout so a client
        that never stops sending cannot pin the handler.
        """
        drained = 0
        while drained < limit:
            try:
                chunk = await asyncio.wait_for(
                    reader.read(65536), timeout=1.0
                )
            except (asyncio.TimeoutError, ConnectionError, ValueError):
                return
            if not chunk:
                return
            drained += len(chunk)

    @staticmethod
    async def _read_request(reader) -> Optional[Tuple[str, str, bytes]]:
        # StreamReader.readline raises ValueError past the stream's
        # buffer limit; an attacker's kilometer-long header line is a
        # malformed request (400), not a server bug (500).
        try:
            request_line = await reader.readline()
        except ValueError:
            raise _BadRequest("request line too long") from None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                raise _BadRequest("header line too long") from None
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest(
                        f"malformed Content-Length {value.strip()!r}"
                    ) from None
                if content_length < 0:
                    raise _BadRequest("Content-Length must be >= 0")
        if content_length > _MAX_BODY_BYTES:
            raise _PayloadTooLarge(
                f"request body of {content_length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        try:
            body = (
                await reader.readexactly(content_length)
                if content_length else b""
            )
        except asyncio.IncompleteReadError:
            raise _BadRequest(
                "request body shorter than Content-Length"
            ) from None
        path = target.split("?", 1)[0]
        return method, path, body

    async def _dispatch(
        self, writer, method: str, path: str, body: bytes
    ) -> None:
        if path == "/v1/healthz" and method == "GET":
            self._write_json(writer, 200, self.healthz())
            return
        if path == "/v1/stats" and method == "GET":
            self._write_json(writer, 200, self.stats())
            return
        if path == "/metrics" and method == "GET":
            # Refresh the sampled gauges so a scrape is never staler
            # than the exposition it reads.
            self._sample_memory()
            self._write_text(
                writer, 200, self.registry.render(),
                content_type=EXPOSITION_CONTENT_TYPE,
            )
            return
        if path == "/v1/runs" and method == "POST":
            self._handle_submit(writer, body)
            return
        if path.startswith("/v1/runs/"):
            rest = path[len("/v1/runs/"):]
            if rest.endswith("/events"):
                if method != "GET":
                    # The route exists; the method is wrong (was 404).
                    self._write_json(
                        writer, 405, {"error": "method not allowed"}
                    )
                    return
                await self._handle_events(writer, rest[: -len("/events")])
                return
            if "/" not in rest:
                if method == "GET":
                    self._handle_get_job(writer, rest)
                    return
                if method == "DELETE":
                    self._handle_cancel(writer, rest)
                    return
                self._write_json(writer, 405, {"error": "method not allowed"})
                return
        self._write_json(writer, 404, {"error": f"no route for {method} {path}"})

    def _handle_submit(self, writer, body: bytes) -> None:
        if self.draining:
            self._write_json(
                writer, 503,
                {"error": "server is draining; not accepting new runs"},
            )
            return
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._write_json(writer, 400, {"error": f"invalid JSON: {exc}"})
            return
        try:
            status, job = self.submit(payload)
        except _BadRequest as exc:
            self._write_json(writer, 400, {"error": str(exc)})
            return
        except QueueFull as exc:
            self._write_json(writer, 429, {
                "error": str(exc),
                "queue": self.queue.stats(),
            })
            return
        doc = job.snapshot()
        doc["cached"] = job.cache_hit
        self._write_json(writer, status, doc)

    def _lookup_or_respond(self, writer, job_id: str) -> Optional[Job]:
        """Resolve a job id, answering 410/404 for evicted/unknown runs.

        An evicted run is *gone*, not unknown: the 410 body carries the
        tombstone summary (final state, tenant, cache key, timestamps)
        so a late poller still learns how its run ended.
        """
        job, tombstone = self.table.lookup(job_id)
        if job is not None:
            return job
        if tombstone is not None:
            doc = dict(tombstone)
            # The job's own failure reason moves aside so "error" can
            # carry the HTTP-level explanation, like every error body.
            doc["job_error"] = doc.pop("error", None)
            doc["error"] = (
                f"run {job_id!r} finished and was evicted from the "
                "retention window"
            )
            self._write_json(writer, 410, doc)
            return None
        self._write_json(writer, 404, {"error": f"unknown run {job_id!r}"})
        return None

    def _handle_get_job(self, writer, job_id: str) -> None:
        job = self._lookup_or_respond(writer, job_id)
        if job is None:
            return
        self._write_json(writer, 200, job.snapshot())

    def _handle_cancel(self, writer, job_id: str) -> None:
        job = self._lookup_or_respond(writer, job_id)
        if job is None:
            return
        if self.queue.cancel(job_id):
            self._tenant_acc(job.tenant)["cancelled"] += 1
            self._write_json(writer, 200, job.snapshot())
            return
        self._write_json(writer, 409, {
            "error": f"run {job_id!r} is {job.state} and cannot be cancelled",
            "state": job.state,
        })

    async def _handle_events(self, writer, job_id: str) -> None:
        job = self._lookup_or_respond(writer, job_id)
        if job is None:
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        self._responses_counter.labels("200").inc()
        loop = asyncio.get_event_loop()
        last_write = loop.time()
        # Absolute position in the job's event history.  The retained
        # window is [events_base, events_base + len(events)): whenever
        # the cursor falls behind the base (the cap dropped history,
        # possibly while we were parked on a drain), the follower gets
        # an explicit `dropped_events` marker instead of a silent gap.
        cursor = 0
        while True:
            dropped = job.events_base - cursor
            if dropped > 0:
                cursor = job.events_base
                frame = (
                    "event: dropped_events\n"
                    f"data: {json.dumps({'dropped': dropped, 'total_dropped': job.events_dropped})}\n\n"
                )
                writer.write(frame.encode("utf-8"))
                await writer.drain()
                last_write = loop.time()
                continue
            if cursor < job.events_base + len(job.events):
                # One event per iteration: every drain is an await, and
                # the cap may advance events_base underneath it.
                event = job.events[cursor - job.events_base]
                cursor += 1
                frame = (
                    f"event: {event['event']}\n"
                    f"data: {json.dumps(event['data'])}\n\n"
                )
                writer.write(frame.encode("utf-8"))
                await writer.drain()
                last_write = loop.time()
                if event["event"] in _TERMINAL_EVENTS:
                    return
                continue
            if job.terminal:
                return  # terminal state with no more events to send
            await asyncio.sleep(_SSE_POLL_S)
            # A long-idle follower (queued behind a deep backlog, or a
            # slow run with no progress sampling) looks exactly like a
            # dead connection to a client with a read timeout; comment
            # frames are the SSE-standard heartbeat.
            if loop.time() - last_write >= self.config.sse_keepalive_s:
                writer.write(b": ping\n\n")
                await writer.drain()
                last_write = loop.time()
                self._keepalive_counter.inc()

    def _write_json(self, writer, status: int, doc: dict) -> None:
        self._write_bytes(
            writer, status, json.dumps(doc).encode("utf-8"),
            "application/json",
        )

    def _write_text(self, writer, status: int, text: str,
                    content_type: str = "text/plain; charset=utf-8") -> None:
        self._write_bytes(writer, status, text.encode("utf-8"), content_type)

    def _write_bytes(self, writer, status: int, body: bytes,
                     content_type: str) -> None:
        self._responses_counter.labels(str(status)).inc()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Server: {SERVER_NAME}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)


async def run_server(config: ServeConfig, ready=None) -> None:
    """Start a server, announce readiness, and serve until drained."""
    server = SimulationServer(config)
    await server.start()
    server.install_signal_handlers()
    if ready is not None:
        ready(server)
    await server.serve_forever()
