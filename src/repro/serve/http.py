"""The control plane's HTTP/JSON surface (stdlib asyncio only).

Endpoints (all under ``/v1``):

* ``POST   /v1/runs``          — submit a :class:`RunRequest` (JSON body;
  optional ``priority``, ``timeout_s``, ``progress_interval_ms``,
  ``tenant`` submission options).  202 queued, 200 cache hit, 429
  queue full or rate limited (the latter with a ``Retry-After``
  header), 503 draining, 400 malformed.
* ``GET    /v1/runs/<id>``        — job snapshot (state, result, error).
* ``GET    /v1/runs/<id>/events`` — Server-Sent Events: replays the
  job's lifecycle (``queued``/``started``/``sample``/``retry``/
  ``done``/``failed``/``cancelled``/``expired``) and follows it live.
  Every event frame carries an ``id:`` line with its absolute position
  in the job's history, and ``?cursor=N`` resumes from position N — a
  client whose socket dropped reconnects where it left off instead of
  replaying (or losing) history.
* ``DELETE /v1/runs/<id>``        — cancel a queued job (409 once running).
* ``GET    /v1/healthz``          — liveness + drain state.
* ``GET    /v1/stats``            — queue depth, cache hit rate, worker
  utilization, job state counts, per-priority-class latency
  percentiles, an RSS/tracemalloc/cache memory breakdown, per-tenant
  rogue scores, rate-limit budgets, and the most recent runs.
* ``GET    /metrics``             — Prometheus text exposition from the
  server's metrics registry (counters, gauges, latency histograms).

The request/response plumbing lives in :class:`HttpBase` so the fleet
coordinator can reuse it verbatim; everything the serve plane *is*
(queue, workers, caches, accounting) lives in
:class:`repro.serve.state.ServerState`.  :class:`SimulationServer`
is the composition of the two.

On SIGTERM (or :meth:`SimulationServer.request_shutdown`) the server
drains gracefully: new submissions get 503 while polls keep working,
queued and running jobs finish within a grace period, then the fleet
and the listener shut down.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl

from repro.obs.metrics import EXPOSITION_CONTENT_TYPE, MetricsRegistry
from repro.serve.queue import Job, QueueFull
from repro.serve.spec import SPEC_VERSION
from repro.serve.state import (  # re-exported; they predate the split
    BadSubmission,
    RateLimited,
    ServeConfig,
    ServerState,
)

__all__ = [
    "ServeConfig", "ServerState", "SimulationServer", "HttpBase",
    "BadSubmission", "RateLimited", "run_server", "SERVER_NAME",
]

SERVER_NAME = f"repro-serve/{SPEC_VERSION}"

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_TERMINAL_EVENTS = frozenset(
    ("done", "failed", "cancelled", "expired")
)

_MAX_BODY_BYTES = 1 << 20

# How often an SSE follower re-checks a job for fresh events.
_SSE_POLL_S = 0.05

# Stamped by the coordinator on proxied submissions so the receiving
# node can detect (and count) routing mistakes.
ROUTE_NODE_HEADER = "x-repro-route-node"


class _BadRequest(Exception):
    """Maps to a 400 with the exception text as the error body."""


class _PayloadTooLarge(Exception):
    """Maps to a 413 with the exception text as the error body."""


class HttpBase:
    """Reusable asyncio HTTP plumbing: parse, dispatch, encode.

    Subclasses implement :meth:`_dispatch` and may override
    ``server_name``.  One request per connection, JSON everywhere,
    bounded bodies — the same dialect
    :mod:`repro.fleet.transport` speaks from the client side.
    """

    server_name = SERVER_NAME

    def __init__(self, registry: MetricsRegistry):
        self._responses_counter = registry.counter(
            "repro_serve_http_responses_total",
            "HTTP responses by status code", labelnames=("status",),
        )

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, query, headers, body = parsed
            await self._dispatch(writer, method, path, query, headers, body)
        except _BadRequest as exc:
            try:
                self._write_json(writer, 400, {"error": str(exc)})
                await self._discard_input(reader)
            except ConnectionError:
                pass
        except _PayloadTooLarge as exc:
            try:
                self._write_json(writer, 413, {"error": str(exc)})
                await self._discard_input(reader)
            except ConnectionError:
                pass
        except ConnectionError:
            pass
        except Exception as exc:  # never kill the accept loop
            try:
                self._write_json(writer, 500, {"error": str(exc)})
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()

    @staticmethod
    async def _discard_input(reader, limit: int = 8 << 20) -> None:
        """Best-effort drain of a rejected request's remaining bytes.

        Closing with unread input still queued makes the kernel send an
        RST, which can destroy the error response before the client
        reads it.  Bounded by ``limit`` and a short timeout so a client
        that never stops sending cannot pin the handler.
        """
        drained = 0
        while drained < limit:
            try:
                chunk = await asyncio.wait_for(
                    reader.read(65536), timeout=1.0
                )
            except (asyncio.TimeoutError, ConnectionError, ValueError):
                return
            if not chunk:
                return
            drained += len(chunk)

    @staticmethod
    async def _read_request(
        reader,
    ) -> Optional[Tuple[str, str, Dict[str, str], Dict[str, str], bytes]]:
        """Parse one request into (method, path, query, headers, body)."""
        # StreamReader.readline raises ValueError past the stream's
        # buffer limit; an attacker's kilometer-long header line is a
        # malformed request (400), not a server bug (500).
        try:
            request_line = await reader.readline()
        except ValueError:
            raise _BadRequest("request line too long") from None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        content_length = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                raise _BadRequest("header line too long") from None
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            headers[name] = value.strip()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest(
                        f"malformed Content-Length {value.strip()!r}"
                    ) from None
                if content_length < 0:
                    raise _BadRequest("Content-Length must be >= 0")
        if content_length > _MAX_BODY_BYTES:
            raise _PayloadTooLarge(
                f"request body of {content_length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        try:
            body = (
                await reader.readexactly(content_length)
                if content_length else b""
            )
        except asyncio.IncompleteReadError:
            raise _BadRequest(
                "request body shorter than Content-Length"
            ) from None
        path, _, query_string = target.partition("?")
        query = dict(parse_qsl(query_string)) if query_string else {}
        return method, path, query, headers, body

    async def _dispatch(
        self, writer, method: str, path: str,
        query: Dict[str, str], headers: Dict[str, str], body: bytes,
    ) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _write_json(
        self, writer, status: int, doc: dict,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self._write_bytes(
            writer, status, json.dumps(doc).encode("utf-8"),
            "application/json", extra_headers,
        )

    def _write_text(self, writer, status: int, text: str,
                    content_type: str = "text/plain; charset=utf-8") -> None:
        self._write_bytes(writer, status, text.encode("utf-8"), content_type)

    def _write_bytes(
        self, writer, status: int, body: bytes, content_type: str,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self._responses_counter.labels(str(status)).inc()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Server: {self.server_name}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in extra_headers:
            lines.append(f"{name}: {value}")
        lines.append("Connection: close")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)


class SimulationServer(HttpBase):
    """A :class:`ServerState` behind an asyncio HTTP listener."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.state = ServerState(config)
        super().__init__(self.state.registry)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None
        self._keepalive_counter = self.registry.counter(
            "repro_serve_sse_keepalives_total",
            "SSE `: ping` comment frames written to idle followers",
        )

    # The state's collaborators were public attributes before the
    # state/transport split; keep them reachable (tests, bench, CLI).
    @property
    def config(self) -> ServeConfig:
        return self.state.config

    @property
    def registry(self):
        return self.state.registry

    @property
    def cache(self):
        return self.state.cache

    @property
    def queue(self):
        return self.state.queue

    @property
    def fleet(self):
        return self.state.fleet

    @property
    def table(self):
        return self.state.table

    @property
    def jobs(self) -> Dict[str, Job]:
        return self.state.jobs

    @property
    def tenants(self) -> Dict[str, dict]:
        return self.state.tenants

    @property
    def submitted_total(self) -> int:
        return self.state.submitted_total

    @property
    def cache_hit_jobs(self) -> int:
        return self.state.cache_hit_jobs

    @property
    def draining(self) -> bool:
        return self.state.draining

    def submit(self, payload: dict) -> Tuple[int, Job]:
        return self.state.submit(payload)

    def healthz(self) -> dict:
        return self.state.healthz()

    def stats(self) -> dict:
        return self.state.stats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.state.start()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main-thread loops only)."""
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, ValueError, RuntimeError):
                return  # not the main thread / unsupported platform

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent, signal-handler safe)."""
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        await self.state.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, writer, method: str, path: str,
        query: Dict[str, str], headers: Dict[str, str], body: bytes,
    ) -> None:
        if path == "/v1/healthz" and method == "GET":
            self._write_json(writer, 200, self.healthz())
            return
        if path == "/v1/stats" and method == "GET":
            self._write_json(writer, 200, self.stats())
            return
        if path == "/metrics" and method == "GET":
            # Refresh the sampled gauges so a scrape is never staler
            # than the exposition it reads.
            self.state.sample_memory()
            self._write_text(
                writer, 200, self.registry.render(),
                content_type=EXPOSITION_CONTENT_TYPE,
            )
            return
        if path == "/v1/runs" and method == "POST":
            self._handle_submit(writer, headers, body)
            return
        if path.startswith("/v1/runs/"):
            rest = path[len("/v1/runs/"):]
            if rest.endswith("/events"):
                if method != "GET":
                    # The route exists; the method is wrong (was 404).
                    self._write_json(
                        writer, 405, {"error": "method not allowed"}
                    )
                    return
                await self._handle_events(
                    writer, rest[: -len("/events")], query
                )
                return
            if "/" not in rest:
                if method == "GET":
                    self._handle_get_job(writer, rest)
                    return
                if method == "DELETE":
                    self._handle_cancel(writer, rest)
                    return
                self._write_json(writer, 405, {"error": "method not allowed"})
                return
        self._write_json(writer, 404, {"error": f"no route for {method} {path}"})

    def _handle_submit(
        self, writer, headers: Dict[str, str], body: bytes
    ) -> None:
        if self.draining:
            self._write_json(
                writer, 503,
                {"error": "server is draining; not accepting new runs"},
            )
            return
        routed_to = headers.get(ROUTE_NODE_HEADER)
        if (
            routed_to is not None
            and self.config.node_id is not None
            and routed_to != self.config.node_id
        ):
            # Count the coordinator's mistake but serve anyway: the
            # shared store means a misrouted request is a cold cache,
            # not a wrong answer.
            self.state.note_misrouted()
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._write_json(writer, 400, {"error": f"invalid JSON: {exc}"})
            return
        try:
            status, job = self.submit(payload)
        except BadSubmission as exc:
            self._write_json(writer, 400, {"error": str(exc)})
            return
        except RateLimited as exc:
            decision = exc.decision
            # Retry-After is delta-seconds (an integer per RFC 9110);
            # the body carries the exact float for clients that parse.
            retry_after = max(1, math.ceil(decision.retry_after_s))
            self._write_json(
                writer, 429,
                {
                    "error": str(exc),
                    "retry_after_s": round(decision.retry_after_s, 4),
                    "ratelimited": True,
                    "tenant": decision.tenant,
                    "priority_class": decision.priority_class,
                },
                extra_headers=(("Retry-After", str(retry_after)),),
            )
            return
        except QueueFull as exc:
            self._write_json(writer, 429, {
                "error": str(exc),
                "queue": self.queue.stats(),
            })
            return
        doc = job.snapshot()
        doc["cached"] = job.cache_hit
        self._write_json(writer, status, doc)

    def _lookup_or_respond(self, writer, job_id: str) -> Optional[Job]:
        """Resolve a job id, answering 410/404 for evicted/unknown runs.

        An evicted run is *gone*, not unknown: the 410 body carries the
        tombstone summary (final state, tenant, cache key, timestamps)
        so a late poller still learns how its run ended.
        """
        job, tombstone = self.table.lookup(job_id)
        if job is not None:
            return job
        if tombstone is not None:
            doc = dict(tombstone)
            # The job's own failure reason moves aside so "error" can
            # carry the HTTP-level explanation, like every error body.
            doc["job_error"] = doc.pop("error", None)
            doc["error"] = (
                f"run {job_id!r} finished and was evicted from the "
                "retention window"
            )
            self._write_json(writer, 410, doc)
            return None
        self._write_json(writer, 404, {"error": f"unknown run {job_id!r}"})
        return None

    def _handle_get_job(self, writer, job_id: str) -> None:
        job = self._lookup_or_respond(writer, job_id)
        if job is None:
            return
        self._write_json(writer, 200, job.snapshot())

    def _handle_cancel(self, writer, job_id: str) -> None:
        job = self._lookup_or_respond(writer, job_id)
        if job is None:
            return
        if self.queue.cancel(job_id):
            self.state._tenant_acc(job.tenant)["cancelled"] += 1
            self._write_json(writer, 200, job.snapshot())
            return
        self._write_json(writer, 409, {
            "error": f"run {job_id!r} is {job.state} and cannot be cancelled",
            "state": job.state,
        })

    async def _handle_events(
        self, writer, job_id: str, query: Dict[str, str]
    ) -> None:
        job = self._lookup_or_respond(writer, job_id)
        if job is None:
            return
        # Absolute position in the job's event history.  ?cursor=N is a
        # reconnecting follower resuming where its last socket died (it
        # saw event N-1's `id:` line); a fresh follower starts at 0.
        try:
            cursor = int(query.get("cursor", "0"))
            if cursor < 0:
                raise ValueError
        except ValueError:
            self._write_json(
                writer, 400,
                {"error": "cursor must be a non-negative integer"},
            )
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        self._responses_counter.labels("200").inc()
        loop = asyncio.get_event_loop()
        last_write = loop.time()
        # The retained window is [events_base, events_base +
        # len(events)): whenever the cursor falls behind the base (the
        # cap dropped history, possibly while we were parked on a
        # drain), the follower gets an explicit `dropped_events` marker
        # instead of a silent gap.
        while True:
            dropped = job.events_base - cursor
            if dropped > 0:
                cursor = job.events_base
                payload = json.dumps({
                    "dropped": dropped,
                    "total_dropped": job.events_dropped,
                })
                # The marker stands in for positions [cursor-dropped,
                # events_base); its id points at the last of them so a
                # resume lands exactly on events_base.
                frame = (
                    f"id: {job.events_base - 1}\n"
                    "event: dropped_events\n"
                    f"data: {payload}\n\n"
                )
                writer.write(frame.encode("utf-8"))
                await writer.drain()
                last_write = loop.time()
                continue
            if cursor < job.events_base + len(job.events):
                # One event per iteration: every drain is an await, and
                # the cap may advance events_base underneath it.
                event = job.events[cursor - job.events_base]
                frame = (
                    f"id: {cursor}\n"
                    f"event: {event['event']}\n"
                    f"data: {json.dumps(event['data'])}\n\n"
                )
                cursor += 1
                writer.write(frame.encode("utf-8"))
                await writer.drain()
                last_write = loop.time()
                if event["event"] in _TERMINAL_EVENTS:
                    return
                continue
            if job.terminal:
                return  # terminal state with no more events to send
            await asyncio.sleep(_SSE_POLL_S)
            # A long-idle follower (queued behind a deep backlog, or a
            # slow run with no progress sampling) looks exactly like a
            # dead connection to a client with a read timeout; comment
            # frames are the SSE-standard heartbeat.
            if loop.time() - last_write >= self.config.sse_keepalive_s:
                writer.write(b": ping\n\n")
                await writer.drain()
                last_write = loop.time()
                self._keepalive_counter.inc()


async def run_server(config: ServeConfig, ready=None) -> None:
    """Start a server, announce readiness, and serve until drained."""
    server = SimulationServer(config)
    await server.start()
    server.install_signal_handlers()
    if ready is not None:
        ready(server)
    await server.serve_forever()
