"""The service's unit of work: a canonical, content-addressed run request.

A :class:`RunRequest` captures *everything* that determines a
simulation's outcome — scenario, policy, device, background case and
count, measured/settle windows, seed — and nothing that doesn't (job
priority, deadlines and progress streaming are properties of the
*submission*, not of the simulation, and live on the job instead).

Because the simulator is fully deterministic given these inputs, two
requests with equal fields produce bit-identical results.  The request
therefore canonicalizes to a stable JSON form (sorted keys, normalized
number types) and hashes to a :meth:`cache_key` that the result cache
uses as a content address: submit the same request twice and the second
answer comes from the cache without simulating.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, Optional

from repro.experiments.scenarios import BgCase, SCENARIOS

# Bump when the request shape or its semantics change: old cache
# entries must never be served for a request they no longer describe.
SPEC_VERSION = 1

_KEY_PREFIX = f"repro-run-v{SPEC_VERSION}:"


def canonical_dumps(doc: object) -> str:
    """Stable JSON form: sorted keys, no whitespace.

    Used both for the request's content address and for costing cache
    entries (the byte budget charges each entry its canonical-JSON
    size, so the accounting is deterministic and platform-independent
    rather than an estimate of interpreter object overhead).
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def canonical_size_bytes(doc: object) -> int:
    """UTF-8 byte length of the canonical JSON form of ``doc``."""
    return len(canonical_dumps(doc).encode("utf-8"))


@dataclass(frozen=True)
class RunRequest:
    """One simulation's complete input set.

    ``scenario`` is a paper scenario id ("S-A".."S-D") or a catalog
    package name; everything after ``policy`` overrides the scenario's
    defaults (device, background population, windows, seed).
    """

    scenario: str
    policy: str = "LRU+CFS"
    device: str = "P20"
    bg_case: str = BgCase.APPS
    bg_count: Optional[int] = None
    seconds: float = 60.0
    settle_s: float = 5.0
    seed: int = 42

    def __post_init__(self) -> None:
        # Normalize numeric types so `seconds=2` and `seconds=2.0`
        # canonicalize (and therefore cache) identically.
        object.__setattr__(self, "seconds", float(self.seconds))
        object.__setattr__(self, "settle_s", float(self.settle_s))
        object.__setattr__(self, "seed", int(self.seed))
        if self.bg_count is not None:
            object.__setattr__(self, "bg_count", int(self.bg_count))
        if not self.scenario or not isinstance(self.scenario, str):
            raise ValueError("scenario must be a non-empty string")
        if not self.policy or not isinstance(self.policy, str):
            raise ValueError("policy must be a non-empty string")
        if self.bg_case not in BgCase.ALL:
            raise ValueError(
                f"unknown bg case {self.bg_case!r}; valid: {list(BgCase.ALL)}"
            )
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")
        if self.settle_s < 0:
            raise ValueError("settle_s must be >= 0")
        if self.bg_count is not None and self.bg_count < 0:
            raise ValueError("bg_count must be >= 0")

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRequest":
        """Build from a JSON body, rejecting unknown keys.

        Silently dropping a misspelled field ("secnds") would run a
        simulation the caller did not ask for *and* cache it under the
        wrong key, so unknown keys are a hard error.
        """
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown request field(s): {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(known))}"
            )
        if "scenario" not in payload:
            raise ValueError("request field 'scenario' is required")
        return cls(**payload)

    def canonical_json(self) -> str:
        """The stable serialized form the cache key is derived from."""
        return canonical_dumps(self.to_dict())

    def cache_key(self) -> str:
        """Content address: sha256 over the versioned canonical JSON."""
        digest = hashlib.sha256(
            (_KEY_PREFIX + self.canonical_json()).encode("utf-8")
        )
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Short human tag for logs and progress lines."""
        return (
            f"{self.scenario}/{self.policy} on {self.device} "
            f"({self.bg_case}, {self.seconds:g}s, seed {self.seed})"
        )

    def known_scenario(self) -> bool:
        return self.scenario in SCENARIOS
