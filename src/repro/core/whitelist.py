"""The safety whitelist (§4.4).

Perceptible applications must never be frozen: the foreground app
(adj 0), background apps doing perceptible work such as music playback
or downloads (adj 200), and any vendor-pinned UIDs (antivirus, phone,
messaging).  The whitelist is evaluated against the mapping table's
recorded adj scores — scores are pushed down from the framework when
they change, so the check itself is a kernel-space lookup.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.mapping_table import MappingTable


class Whitelist:
    """adj-score plus vendor-list freezing exemptions."""

    def __init__(self, mapping_table: MappingTable, adj_threshold: int = 200):
        self.mapping_table = mapping_table
        self.adj_threshold = adj_threshold
        self._vendor_uids: Set[int] = set()
        self.checks: int = 0
        self.hits: int = 0

    # ------------------------------------------------------------------
    # Offline management (vendor-pinned apps, §4.4)
    # ------------------------------------------------------------------
    def pin_uid(self, uid: int) -> None:
        """Vendor-pinned: this UID is never frozen."""
        self._vendor_uids.add(uid)

    def unpin_uid(self, uid: int) -> None:
        self._vendor_uids.discard(uid)

    @property
    def vendor_uids(self) -> Set[int]:
        return set(self._vendor_uids)

    # ------------------------------------------------------------------
    def is_whitelisted(self, uid: int) -> bool:
        """True when the application must not be frozen."""
        self.checks += 1
        if uid in self._vendor_uids:
            self.hits += 1
            return True
        adj: Optional[int] = self.mapping_table.adj_of_uid(uid)
        if adj is None:
            # Unknown to the table (kernel/service process): never freeze.
            self.hits += 1
            return True
        if adj <= self.adj_threshold:
            self.hits += 1
            return True
        return False
