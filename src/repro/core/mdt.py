"""MDT: memory-aware dynamic thawing (§4.3).

MDT maintains a single heartbeat regardless of how many applications
are frozen.  Each epoch is a freezing period of ``E_f`` seconds
followed by a thawing period of ``E_t`` seconds.  The freezing
intensity ``R = E_f / E_t`` follows the paper's formula::

    R = δ · 2^ceil(H_wm / S_am)

where ``H_wm`` is the high watermark and ``S_am`` the available memory,
re-evaluated at the end of each epoch: shrinking availability raises R
exponentially; with ``E_t`` fixed at one second, tuning R is simply
tuning ``E_f``.

An application frozen by RPF during the freezing period stays frozen
until that period's end; one frozen during the thawing period waits for
the *next* epoch's thawing period (§4.3).  When memory pressure
disappears entirely, MDT releases its registrations (frozen apps return
to normal scheduling until they refault again).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.config import IceConfig


@dataclass
class EpochRecord:
    """One heartbeat epoch, for inspection and tests."""

    start_ms: float
    freeze_s: float
    thaw_s: float
    available_pages: int
    frozen_apps: int


class MemoryAwareThawing:
    """The heartbeat that periodically thaws frozen applications."""

    def __init__(
        self,
        config: IceConfig,
        sim,
        high_watermark_pages: int,
        available_pages_fn: Callable[[], int],
        freeze_uid: Callable[[int], None],
        thaw_uid: Callable[[int], None],
    ):
        self.config = config
        self.sim = sim
        self.high_watermark_pages = high_watermark_pages
        self.available_pages_fn = available_pages_fn
        self.freeze_uid = freeze_uid
        self.thaw_uid = thaw_uid
        self.managed_uids: Set[int] = set()
        self.in_thaw_period = False
        self.current_freeze_s = self.compute_freeze_period_s()
        self.epochs: List[EpochRecord] = []
        self.started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # The paper's intensity formula
    # ------------------------------------------------------------------
    def compute_ratio(self) -> float:
        """R = δ · 2^ceil(H_wm / S_am), Eq. (1)."""
        available = max(1, self.available_pages_fn())
        exponent = math.ceil(self.high_watermark_pages / available)
        exponent = min(exponent, 16)  # numeric guard; documented in config
        return self.config.delta * (2.0 ** exponent)

    def compute_freeze_period_s(self) -> float:
        """E_f = R · E_t, bounded by the configured maximum."""
        freeze_s = self.compute_ratio() * self.config.thaw_period_s
        return min(freeze_s, self.config.max_freeze_s)

    # ------------------------------------------------------------------
    # Registration (RPF hands frozen apps over here)
    # ------------------------------------------------------------------
    def register(self, uid: int) -> None:
        self.managed_uids.add(uid)
        if not self.started:
            self.start()

    def deregister(self, uid: int) -> None:
        self.managed_uids.discard(uid)

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the heartbeat (first epoch starts now)."""
        if self.started:
            return
        self.started = True
        self._begin_epoch()

    def stop(self) -> None:
        self._stopped = True

    def _begin_epoch(self) -> None:
        if self._stopped:
            return
        self.in_thaw_period = False
        self.current_freeze_s = self.compute_freeze_period_s()
        self.epochs.append(
            EpochRecord(
                start_ms=self.sim.now,
                freeze_s=self.current_freeze_s,
                thaw_s=self.config.thaw_period_s,
                available_pages=self.available_pages_fn(),
                frozen_apps=len(self.managed_uids),
            )
        )
        # Freeze period: (re)freeze every managed application.
        for uid in list(self.managed_uids):
            self.freeze_uid(uid)
        self.sim.schedule(self.current_freeze_s * 1000.0, self._begin_thaw)

    def _begin_thaw(self) -> None:
        if self._stopped:
            return
        self.in_thaw_period = True
        self._maybe_release_all()
        for uid in list(self.managed_uids):
            self.thaw_uid(uid)
        self.sim.schedule(self.config.thaw_period_s * 1000.0, self._begin_epoch)

    def _maybe_release_all(self) -> None:
        """Release (thaw + deregister) every app when pressure vanished.

        The paper's heartbeat cycles forever; this release path is an
        extension for truly idle systems (e.g. after the user cleared
        all apps) so nothing stays in freeze/thaw cycling needlessly.
        """
        threshold = self.high_watermark_pages * self.config.release_pressure_factor
        if self.available_pages_fn() > threshold:
            for uid in list(self.managed_uids):
                self.thaw_uid(uid)
            self.managed_uids.clear()
