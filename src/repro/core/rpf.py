"""RPF: refault-driven process freezing (§4.2).

RPF follows the event-condition-action (ECA) rule:

* **Event** — a refault detected in the kernel (the workingset shadow-
  entry bus publishes them in near real time).
* **Condition** — the faulting process is a background application
  process, it is known to the mapping table (kernel threads and Android
  services are sifted out), and its application is not whitelisted.
* **Action** — freeze the *whole application*: every process sharing
  the faulting process's UID receives the freeze signal
  (application-grain freezing, §4.2.2), and the application is handed
  to MDT for periodic thawing.

Freezing on the *first* refault is deliberate: the paper observes that
a process demands multiple pages at a time, so adjacent refaults come
from the same application — a lightweight alternative to prediction
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.mapping_table import MappingTable
from repro.core.whitelist import Whitelist
from repro.kernel.freezer import Freezer
from repro.kernel.workingset import RefaultEvent


@dataclass
class RpfStats:
    """Counters for the ECA pipeline."""

    events_seen: int = 0
    fg_skipped: int = 0
    sifted_unknown: int = 0  # kernel/service processes
    whitelisted: int = 0
    already_frozen: int = 0
    apps_frozen: int = 0
    processes_frozen: int = 0


@dataclass(frozen=True)
class FreezeAction:
    """One application-grain freeze decision."""

    time_ms: float
    uid: int
    trigger_pid: int
    frozen_pids: tuple


class RefaultDrivenFreezer:
    """The ECA engine subscribed to the refault-event bus."""

    def __init__(
        self,
        mapping_table: MappingTable,
        whitelist: Whitelist,
        freezer: Freezer,
        on_app_frozen: Optional[Callable[[int], None]] = None,
    ):
        self.mapping_table = mapping_table
        self.whitelist = whitelist
        self.freezer = freezer
        # MDT registration callback: uid of the newly-frozen app.
        self.on_app_frozen = on_app_frozen
        self.stats = RpfStats()
        self.actions: List[FreezeAction] = []
        self.enabled = True

    # ------------------------------------------------------------------
    def handle_refault(self, event: RefaultEvent) -> Optional[FreezeAction]:
        """ECA entry point: called for every refault event."""
        if not self.enabled:
            return None
        self.stats.events_seen += 1

        # Condition 1: only background refaults drive freezing.
        if event.foreground:
            self.stats.fg_skipped += 1
            return None

        # Condition 2: the process must belong to a known application —
        # kernel threads and Android services are sifted out here.
        uid = self.mapping_table.uid_of_pid(event.pid)
        if uid is None:
            self.stats.sifted_unknown += 1
            return None

        # Condition 3: whitelisted (perceptible / vendor-pinned) apps
        # are never frozen.
        if self.whitelist.is_whitelisted(uid):
            self.stats.whitelisted += 1
            return None

        # Action: application-grain freeze.
        pids = self.mapping_table.pids_of_uid(uid)
        to_freeze = [pid for pid in pids if not self.freezer.is_frozen(pid)]
        if not to_freeze:
            self.stats.already_frozen += 1
            return None
        for pid in to_freeze:
            self.freezer.freeze(pid)
            self.mapping_table.set_frozen(pid, True)
            self.stats.processes_frozen += 1
        self.stats.apps_frozen += 1
        action = FreezeAction(
            time_ms=event.time_ms,
            uid=uid,
            trigger_pid=event.pid,
            frozen_pids=tuple(to_freeze),
        )
        self.actions.append(action)
        if self.on_app_frozen is not None:
            self.on_app_frozen(uid)
        return action
