"""The Ice daemon: RPF + MDT wired into a mobile system (§4.1).

``IcePolicy`` is a management policy: attach it to a
:class:`~repro.system.MobileSystem` and it

1. subscribes RPF to the kernel's refault-event bus (control flow ①–③
   of Figure 5: detect refault → resolve PID → application-grain
   freeze),
2. runs MDT's memory-aware heartbeat (④–⑤: monitor pressure →
   periodic thawing),
3. maintains the kernel-space UID↔PID mapping table from framework
   lifecycle events (install / launch / kill / foreground switch), and
4. thaws frozen applications before they are displayed
   (thaw-on-launch, §4.4).
"""

from __future__ import annotations

from typing import Optional

from repro.android.app import Application
from repro.core.config import IceConfig
from repro.core.mapping_table import MappingTable
from repro.core.mdt import MemoryAwareThawing
from repro.core.predictor import NextAppPredictor
from repro.core.rpf import RefaultDrivenFreezer
from repro.core.whitelist import Whitelist
from repro.kernel.workingset import RefaultEvent
from repro.policies.base import ManagementPolicy


class IcePolicy(ManagementPolicy):
    """Collaborative memory and process management."""

    name = "Ice"
    description = "refault-driven process freezing + memory-aware dynamic thawing"

    def __init__(self, config: Optional[IceConfig] = None):
        super().__init__()
        self.config = config or IceConfig()
        self.mapping_table: Optional[MappingTable] = None
        self.whitelist: Optional[Whitelist] = None
        self.rpf: Optional[RefaultDrivenFreezer] = None
        self.mdt: Optional[MemoryAwareThawing] = None
        self.predictor: Optional[NextAppPredictor] = None
        self.thaw_on_launch_count = 0
        self.predictive_thaw_count = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        super().attach(system)
        config = self.config
        self.mapping_table = MappingTable(capacity_bytes=config.mapping_table_bytes)
        self.whitelist = Whitelist(self.mapping_table, adj_threshold=config.whitelist_adj)
        self.rpf = RefaultDrivenFreezer(
            mapping_table=self.mapping_table,
            whitelist=self.whitelist,
            freezer=system.freezer,
            on_app_frozen=self._on_app_frozen,
        )
        self.mdt = MemoryAwareThawing(
            config=config,
            sim=system.sim,
            high_watermark_pages=system.spec.high_watermark_pages,
            available_pages_fn=lambda: system.mm.available_pages,
            freeze_uid=self._freeze_uid,
            thaw_uid=self._thaw_uid,
        )
        if config.predictive_thaw:
            self.predictor = NextAppPredictor()
        system.mm.workingset.subscribe(self._on_refault)
        # Register any apps that are already alive (mid-run attachment).
        for app in system.apps.values():
            if app.alive:
                self._register_app(app)

    def detach(self) -> None:
        if self.system is not None:
            self.system.mm.workingset.unsubscribe(self._on_refault)
        if self.mdt is not None:
            self.mdt.stop()
        super().detach()

    # ------------------------------------------------------------------
    # Kernel-side flow (Figure 5 ①–③)
    # ------------------------------------------------------------------
    def _on_refault(self, event: RefaultEvent) -> None:
        self.rpf.handle_refault(event)

    def _on_app_frozen(self, uid: int) -> None:
        self.mdt.register(uid)

    def _freeze_uid(self, uid: int) -> None:
        for pid in self.mapping_table.pids_of_uid(uid):
            self.system.freezer.freeze(pid)
            self.mapping_table.set_frozen(pid, True)

    def _thaw_uid(self, uid: int) -> None:
        for pid in self.mapping_table.pids_of_uid(uid):
            self.system.freezer.thaw(pid)
            self.mapping_table.set_frozen(pid, False)

    # ------------------------------------------------------------------
    # Framework-side flow (mapping-table maintenance, §4.2.2 / §4.4)
    # ------------------------------------------------------------------
    def _register_app(self, app: Application) -> None:
        self.mapping_table.register_app(
            uid=app.uid,
            package=app.package,
            pids=app.pids,
            adj_score=app.adj,
        )

    def on_app_started(self, app: Application) -> None:
        self._register_app(app)

    def on_app_killed(self, app: Application) -> None:
        self.mapping_table.remove_app(app.uid)
        self.mdt.deregister(app.uid)
        if self.predictor is not None:
            self.predictor.forget(app.uid)

    def on_foreground_change(self, app: Application, previous) -> None:
        # Scores changed: push them down to the kernel table (§4.4).
        self.mapping_table.set_adj_score(app.uid, app.adj)
        if previous is not None and previous.alive:
            self.mapping_table.set_adj_score(previous.uid, previous.adj)
        if self.predictor is not None:
            self.predictor.record_launch(app.uid)
            predicted = self.predictor.predict_next(app.uid)
            if predicted is not None and predicted != app.uid:
                self._thaw_ahead(predicted)

    def _thaw_ahead(self, uid: int) -> None:
        """§6.3.1: thaw the predicted-next app before it is launched."""
        pids = self.mapping_table.pids_of_uid(uid)
        if any(self.system.freezer.is_frozen(pid) for pid in pids):
            self.predictive_thaw_count += 1
            self._thaw_uid(uid)

    def before_launch(self, app: Application) -> float:
        """Thaw-on-launch: thaw a frozen app before display (§4.4)."""
        if not app.alive:
            return 0.0
        latency = 0.0
        for pid in app.pids:
            latency += self.system.freezer.thaw(pid)
            self.mapping_table.set_frozen(pid, False)
        if latency > 0:
            self.thaw_on_launch_count += 1
        self.mdt.deregister(app.uid)
        return latency

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def frozen_app_count(self) -> int:
        return len(self.mdt.managed_uids) if self.mdt else 0
