"""Kernel-space UID↔PID mapping table (§4.2.2, §6.4.1).

RPF freezes at *application* granularity, so on every refault it must
map the faulting PID to its application UID and then enumerate all of
that application's PIDs — in kernel space, with no user-space round
trip.  The table is updated only when an application is installed,
deleted, or launched (cross-space communication through the
``/proc/{pid}/ice-mp`` node in the paper; a direct method call here).

Size accounting follows §6.4.1: 64 B per UID, 64 B per PID, 1 B per
freezing state, 64 B per priority score, with a 32 KB safety bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

UID_ENTRY_BYTES = 64
PID_ENTRY_BYTES = 64
STATE_ENTRY_BYTES = 1
SCORE_ENTRY_BYTES = 64


class MappingTableFullError(RuntimeError):
    """The 32 KB safety bound would be exceeded."""


@dataclass
class ProcessEntry:
    pid: int
    frozen: bool = False
    adj_score: int = 999


@dataclass
class AppEntry:
    uid: int
    package: str
    processes: Dict[int, ProcessEntry] = field(default_factory=dict)


class MappingTable:
    """O(1) pid→uid and uid→pids lookups, with byte-accurate sizing."""

    def __init__(self, capacity_bytes: int = 32 * 1024):
        self.capacity_bytes = capacity_bytes
        self._apps: Dict[int, AppEntry] = {}
        self._pid_to_uid: Dict[int, int] = {}
        self.lookups: int = 0
        self.updates: int = 0

    # ------------------------------------------------------------------
    # Size accounting (§6.4.1)
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        total = len(self._apps) * UID_ENTRY_BYTES
        process_count = len(self._pid_to_uid)
        total += process_count * (
            PID_ENTRY_BYTES + STATE_ENTRY_BYTES + SCORE_ENTRY_BYTES
        )
        return total

    def _check_capacity(self, extra_processes: int, extra_apps: int) -> None:
        projected = (
            self.memory_bytes
            + extra_apps * UID_ENTRY_BYTES
            + extra_processes
            * (PID_ENTRY_BYTES + STATE_ENTRY_BYTES + SCORE_ENTRY_BYTES)
        )
        if projected > self.capacity_bytes:
            raise MappingTableFullError(
                f"mapping table would reach {projected} B "
                f"(bound {self.capacity_bytes} B)"
            )

    # ------------------------------------------------------------------
    # Updates (app install / launch / kill — the rare cross-space path)
    # ------------------------------------------------------------------
    def register_app(self, uid: int, package: str, pids: List[int],
                     adj_score: int = 999) -> None:
        """Register or refresh an application and its live processes."""
        existing = self._apps.get(uid)
        new_apps = 0 if existing else 1
        known = set(existing.processes) if existing else set()
        new_pids = [pid for pid in pids if pid not in known]
        self._check_capacity(extra_processes=len(new_pids), extra_apps=new_apps)
        entry = existing or AppEntry(uid=uid, package=package)
        for pid in new_pids:
            entry.processes[pid] = ProcessEntry(pid=pid, adj_score=adj_score)
            self._pid_to_uid[pid] = uid
        self._apps[uid] = entry
        self.updates += 1

    def remove_app(self, uid: int) -> None:
        entry = self._apps.pop(uid, None)
        if entry is None:
            return
        for pid in entry.processes:
            self._pid_to_uid.pop(pid, None)
        self.updates += 1

    def set_adj_score(self, uid: int, adj_score: int) -> None:
        entry = self._apps.get(uid)
        if entry is None:
            return
        for proc in entry.processes.values():
            proc.adj_score = adj_score
        self.updates += 1

    def set_frozen(self, pid: int, frozen: bool) -> None:
        uid = self._pid_to_uid.get(pid)
        if uid is None:
            return
        proc = self._apps[uid].processes.get(pid)
        if proc is not None:
            proc.frozen = frozen

    # ------------------------------------------------------------------
    # Lookups (the hot kernel path — µs-level, §6.4.2)
    # ------------------------------------------------------------------
    def uid_of_pid(self, pid: int) -> Optional[int]:
        self.lookups += 1
        return self._pid_to_uid.get(pid)

    def pids_of_uid(self, uid: int) -> List[int]:
        self.lookups += 1
        entry = self._apps.get(uid)
        return list(entry.processes) if entry else []

    def adj_of_uid(self, uid: int) -> Optional[int]:
        entry = self._apps.get(uid)
        if entry is None or not entry.processes:
            return None
        return next(iter(entry.processes.values())).adj_score

    def contains_uid(self, uid: int) -> bool:
        return uid in self._apps

    @property
    def app_count(self) -> int:
        return len(self._apps)

    @property
    def process_count(self) -> int:
        return len(self._pid_to_uid)
