"""Ice: the paper's contribution (§4).

Ice bridges memory management and process management: refault events
detected in the kernel drive application-grain freezing (RPF, §4.2),
and a memory-aware heartbeat periodically thaws frozen applications
with an intensity tuned to memory pressure (MDT, §4.3).  A whitelist
keeps the mechanism user-imperceptible (§4.4).

Public entry point: :class:`~repro.core.ice.IcePolicy`, a management
policy that can be attached to any :class:`~repro.system.MobileSystem`.
"""

from repro.core.config import IceConfig
from repro.core.mapping_table import MappingTable, MappingTableFullError
from repro.core.whitelist import Whitelist
from repro.core.rpf import RefaultDrivenFreezer, RpfStats
from repro.core.mdt import MemoryAwareThawing
from repro.core.ice import IcePolicy

__all__ = [
    "IceConfig",
    "MappingTable",
    "MappingTableFullError",
    "Whitelist",
    "RefaultDrivenFreezer",
    "RpfStats",
    "MemoryAwareThawing",
    "IcePolicy",
]
