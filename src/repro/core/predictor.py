"""Next-app prediction for thaw-ahead (§6.3.1 extension).

The paper notes that Ice's hot-launch penalty "can be further eliminated
by using it in combination with application prediction [6, 52]: if a BG
application is predicted as the next used application, Ice can thaw it
ahead of time."  This module provides that predictor: a first-order
Markov chain over the launch sequence with a frequency fallback — the
shape of the practical predictors the paper cites (Chu et al., Parate
et al.), deliberately lightweight (the paper rejects heavy ML for the
freezing decision itself, §4.2).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional


class NextAppPredictor:
    """First-order Markov next-app predictor with frequency fallback."""

    def __init__(self, history_limit: int = 512):
        self.history_limit = history_limit
        self._transitions: Dict[int, Counter] = defaultdict(Counter)
        self._frequency: Counter = Counter()
        self._history: List[int] = []
        self.predictions: int = 0
        self.hits: int = 0
        self._last_prediction: Optional[int] = None

    # ------------------------------------------------------------------
    def record_launch(self, uid: int) -> None:
        """Observe a foreground switch to ``uid``."""
        if self._last_prediction is not None:
            self.predictions += 1
            if self._last_prediction == uid:
                self.hits += 1
            self._last_prediction = None
        if self._history and self._history[-1] != uid:
            # Self-transitions (re-launching the FG app) carry no signal.
            self._transitions[self._history[-1]][uid] += 1
        self._frequency[uid] += 1
        self._history.append(uid)
        if len(self._history) > self.history_limit:
            dropped = self._history.pop(0)
            self._frequency[dropped] -= 1
            if self._frequency[dropped] <= 0:
                del self._frequency[dropped]

    def predict_next(self, current_uid: Optional[int] = None) -> Optional[int]:
        """Most likely next app, or ``None`` without enough signal."""
        if current_uid is None and self._history:
            current_uid = self._history[-1]
        candidates = self._transitions.get(current_uid)
        prediction: Optional[int] = None
        if candidates:
            for uid, _count in candidates.most_common():
                if uid != current_uid:
                    prediction = uid
                    break
        elif self._frequency:
            # Fall back to the most frequent app that is not current.
            for uid, _count in self._frequency.most_common():
                if uid != current_uid:
                    prediction = uid
                    break
        self._last_prediction = prediction
        return prediction

    @property
    def accuracy(self) -> float:
        return self.hits / self.predictions if self.predictions else 0.0

    def forget(self, uid: int) -> None:
        """Drop an uninstalled/killed app from the model."""
        self._transitions.pop(uid, None)
        for counter in self._transitions.values():
            counter.pop(uid, None)
        self._frequency.pop(uid, None)
        self._history = [entry for entry in self._history if entry != uid]
