"""Ice configuration (paper Table 4).

The defaults follow the paper's evaluation settings: weight coefficient
``δ = 8.0`` and thaw epoch ``E_t = 1`` second.  ``max_freeze_s`` bounds
the freezing period; the paper's formula is unbounded in the limit of
vanishing available memory, so a cap keeps the heartbeat responsive
(documented substitution — it only binds under extreme pressure).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IceConfig:
    """Tunables of RPF + MDT."""

    # MDT weight coefficient δ (Table 4: 8.0).
    delta: float = 8.0
    # Thaw period E_t in seconds (Table 4: 1 second).
    thaw_period_s: float = 1.0
    # Upper bound for one freezing period (seconds).
    max_freeze_s: float = 120.0
    # Whitelist adj threshold: apps with adj <= this are never frozen
    # (§4.4: FG = 0, perceptible = 200).
    whitelist_adj: int = 200
    # Mapping-table capacity bound (§6.4.1: 32 KB for safety).
    mapping_table_bytes: int = 32 * 1024
    # §6.3.1 extension: thaw the predicted-next application ahead of
    # its launch, hiding the thaw latency entirely.
    predictive_thaw: bool = False
    # When available memory exceeds this multiple of the high watermark,
    # MDT releases (thaws + deregisters) all frozen applications.  This
    # is an extension beyond the paper (whose heartbeat cycles forever);
    # the default only fires when the device becomes truly idle.
    release_pressure_factor: float = 40.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.thaw_period_s <= 0:
            raise ValueError("thaw period must be positive")
        if self.max_freeze_s < self.thaw_period_s:
            raise ValueError("max_freeze_s must be >= thaw_period_s")
        if self.mapping_table_bytes <= 0:
            raise ValueError("mapping_table_bytes must be positive")
        if self.release_pressure_factor <= 0:
            raise ValueError("release_pressure_factor must be positive")
