"""Command-line interface: quick experiments without writing code.

Examples::

    python -m repro scenario --scenario S-A --policy Ice --bg 8
    python -m repro compare --scenario S-D --seconds 45
    python -m repro table1
    python -m repro overhead
"""

from __future__ import annotations

import argparse
import sys

from repro.devices.specs import get_device
from repro.experiments.cpu_utilization import format_table1, table1
from repro.experiments.overhead import format_overhead
from repro.experiments.scenarios import BgCase, SCENARIOS, run_scenario
from repro.policies.registry import available_policies


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="S-A",
                        choices=sorted(SCENARIOS),
                        help="paper scenario (S-A video call ... S-D game)")
    parser.add_argument("--device", default="P20",
                        choices=["Pixel3", "P20", "P40", "Pixel4"])
    parser.add_argument("--bg", type=int, default=None,
                        help="number of cached BG apps (default: paper's)")
    parser.add_argument("--bg-case", default=BgCase.APPS,
                        choices=list(BgCase.ALL))
    parser.add_argument("--seconds", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=42)


def _print_result(result) -> None:
    print(
        f"{result.policy:>12} | {result.fps:5.1f} fps | RIA {result.ria:5.1%} | "
        f"refaults {result.refault:6d} (BG {result.bg_refault_share:4.0%}) | "
        f"reclaims {result.reclaim:6d} | LMK kills {result.lmk_kills} | "
        f"frozen {result.frozen_apps}"
    )


def cmd_scenario(args: argparse.Namespace) -> int:
    result = run_scenario(
        args.scenario,
        policy=args.policy,
        spec=get_device(args.device),
        bg_case=args.bg_case,
        bg_count=args.bg,
        seconds=args.seconds,
        seed=args.seed,
    )
    _print_result(result)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    for policy in args.policies.split(","):
        result = run_scenario(
            args.scenario,
            policy=policy.strip(),
            spec=get_device(args.device),
            bg_case=args.bg_case,
            bg_count=args.bg,
            seconds=args.seconds,
            seed=args.seed,
        )
        _print_result(result)
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    rows = table1(seconds=args.seconds, rounds=args.rounds)
    print(format_table1(rows))
    return 0


def cmd_overhead(_args: argparse.Namespace) -> int:
    print(format_overhead())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ICE (EuroSys'23) reproduction: quick experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_scenario = sub.add_parser("scenario", help="run one scenario/policy")
    _add_scenario_args(p_scenario)
    p_scenario.add_argument("--policy", default="LRU+CFS",
                            choices=available_policies())
    p_scenario.set_defaults(func=cmd_scenario)

    p_compare = sub.add_parser("compare", help="run several policies")
    _add_scenario_args(p_compare)
    p_compare.add_argument("--policies", default="LRU+CFS,UCSG,Acclaim,Ice")
    p_compare.set_defaults(func=cmd_compare)

    p_table1 = sub.add_parser("table1", help="regenerate Table 1")
    p_table1.add_argument("--seconds", type=float, default=20.0)
    p_table1.add_argument("--rounds", type=int, default=2)
    p_table1.set_defaults(func=cmd_table1)

    p_overhead = sub.add_parser("overhead", help="§6.4 overhead numbers")
    p_overhead.set_defaults(func=cmd_overhead)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
