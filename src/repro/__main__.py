"""Command-line interface: quick experiments without writing code.

Examples::

    python -m repro scenario --scenario S-A --policy Ice --bg 8
    python -m repro scenario --scenario S-A --policy Ice --trace-out ice.trace.json
    python -m repro compare --scenario S-D --seconds 45 --json
    python -m repro trace --scenario S-B --policy Ice --out ice.trace.json
    python -m repro dump --scenario S-B --seconds 15 --format json
    python -m repro watch --scenario S-C --policy Ice --every 1.0
    python -m repro bench --smoke
    python -m repro table1
    python -m repro overhead
    python -m repro serve --port 8080 --workers 4
    python -m repro submit --scenario S-B --policy Ice --seconds 20
    python -m repro coordinator --port 8090 --ratelimit-rps 50
    python -m repro serve --port 8081 --node-id n1 --coordinator http://127.0.0.1:8090
    python -m repro loadtest --url http://127.0.0.1:8090 --requests 200
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.devices.specs import get_device
from repro.experiments.cpu_utilization import format_table1, table1
from repro.experiments.overhead import format_overhead
from repro.experiments.scenarios import BgCase, SCENARIOS, run_scenario
from repro.policies.registry import available_policies
from repro.trace.export import write_chrome_trace, write_timeseries
from repro.trace.tracer import Tracer

DEFAULT_SAMPLE_MS = 100.0


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="S-A",
                        choices=sorted(SCENARIOS),
                        help="paper scenario (S-A video call ... S-D game)")
    parser.add_argument("--device", default="P20",
                        choices=["Pixel3", "P20", "P40", "Pixel4"])
    parser.add_argument("--bg", type=int, default=None,
                        help="number of cached BG apps (default: paper's)")
    parser.add_argument("--bg-case", default=BgCase.APPS,
                        choices=list(BgCase.ALL))
    parser.add_argument("--seconds", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON object per run "
                             "instead of the formatted line")


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="enable tracing and write a Chrome/Perfetto "
                             "trace_event JSON file (open in ui.perfetto.dev)")
    parser.add_argument("--timeseries-out", default=None, metavar="PATH",
                        help="write the sampler's aligned time series "
                             "(.csv → CSV, otherwise JSON)")
    parser.add_argument("--sample-ms", type=float, default=DEFAULT_SAMPLE_MS,
                        help="sampler interval in simulated ms")
    parser.add_argument("--trace-buffer", type=int, default=None,
                        help="trace ring-buffer capacity in events")
    parser.add_argument("--trace-buffer-kb", type=int, default=None,
                        help="trace ring-buffer byte budget in KiB "
                             "(composes with --trace-buffer; whichever "
                             "bound bites first drops the oldest events)")


def _print_result(result) -> None:
    print(
        f"{result.policy:>12} | {result.fps:5.1f} fps | RIA {result.ria:5.1%} | "
        f"refaults {result.refault:6d} (BG {result.bg_refault_share:4.0%}) | "
        f"reclaims {result.reclaim:6d} | LMK kills {result.lmk_kills} | "
        f"frozen {result.frozen_apps}"
    )


def _emit_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result.to_dict()))
    else:
        _print_result(result)


def _make_tracer(args: argparse.Namespace) -> Tracer:
    kwargs = {}
    if getattr(args, "trace_buffer", None):
        kwargs["capacity"] = args.trace_buffer
    if getattr(args, "trace_buffer_kb", None):
        kwargs["capacity_bytes"] = args.trace_buffer_kb * 1024
    if getattr(args, "engine_events", False):
        kwargs["engine_events"] = True
    return Tracer(**kwargs)


def _tracing_requested(args: argparse.Namespace) -> bool:
    return bool(args.trace_out or args.timeseries_out)


def _run_one(args: argparse.Namespace, policy: str, tracer) -> object:
    return run_scenario(
        args.scenario,
        policy=policy,
        spec=get_device(args.device),
        bg_case=args.bg_case,
        bg_count=args.bg,
        seconds=args.seconds,
        seed=args.seed,
        tracer=tracer,
        sample_interval_ms=args.sample_ms if tracer is not None else None,
    )


def _write_trace_outputs(
    args: argparse.Namespace, tracer, result, trace_path=None, ts_path=None
) -> None:
    trace_path = trace_path or args.trace_out
    ts_path = ts_path or args.timeseries_out
    if trace_path:
        count = write_chrome_trace(
            trace_path, tracer,
            extra_metadata={
                "scenario": result.scenario,
                "policy": result.policy,
                "device": result.device,
                "seed": result.seed,
            },
        )
        print(f"trace: {count} events -> {trace_path} "
              f"(dropped {tracer.dropped_events})", file=sys.stderr)
    if ts_path and result.sampler is not None:
        rows = write_timeseries(ts_path, result.sampler)
        print(f"timeseries: {rows} samples -> {ts_path}", file=sys.stderr)


def _unknown_policy(name: str) -> int:
    """Exit-2 diagnostic for a policy name the registry doesn't know.

    Policies can be registered at runtime (``register_policy``), so the
    CLI validates against the live registry instead of baking the
    choices into argparse — and an unknown name gets the full list
    rather than a raw ``KeyError`` traceback out of ``make_policy``.
    """
    print(
        f"error: unknown policy {name!r}; valid choices: "
        + ", ".join(available_policies()),
        file=sys.stderr,
    )
    return 2


def cmd_scenario(args: argparse.Namespace) -> int:
    if args.policy not in available_policies():
        return _unknown_policy(args.policy)
    tracer = _make_tracer(args) if _tracing_requested(args) else None
    result = _run_one(args, args.policy, tracer)
    _emit_result(result, args.json)
    if tracer is not None:
        _write_trace_outputs(args, tracer, result)
    return 0


def _policy_suffixed(path: str, policy: str) -> str:
    """Insert a filesystem-safe policy tag before the extension."""
    safe = policy.replace("+", "_").replace("/", "_")
    root, ext = os.path.splitext(path)
    return f"{root}.{safe}{ext}" if ext else f"{path}.{safe}"


def _parse_policies(spec: str) -> tuple:
    names = [name.strip() for name in spec.split(",") if name.strip()]
    valid = available_policies()
    unknown = [name for name in names if name not in valid]
    return names, unknown


def cmd_compare(args: argparse.Namespace) -> int:
    names, unknown = _parse_policies(args.policies)
    if not names or unknown:
        bad = ", ".join(repr(name) for name in unknown) or "(none given)"
        print(
            f"error: unknown policy {bad}; valid choices: "
            + ", ".join(available_policies()),
            file=sys.stderr,
        )
        return 2
    for policy in names:
        tracer = _make_tracer(args) if _tracing_requested(args) else None
        result = _run_one(args, policy, tracer)
        _emit_result(result, args.json)
        if tracer is not None:
            # One trace file per policy so runs stay individually loadable.
            _write_trace_outputs(
                args, tracer, result,
                trace_path=(_policy_suffixed(args.trace_out, policy)
                            if args.trace_out else None),
                ts_path=(_policy_suffixed(args.timeseries_out, policy)
                         if args.timeseries_out else None),
            )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced scenario and export trace + time series."""
    if args.policy not in available_policies():
        return _unknown_policy(args.policy)
    tracer = _make_tracer(args)
    result = _run_one(args, args.policy, tracer)
    _emit_result(result, args.json)
    _write_trace_outputs(args, tracer, result, trace_path=args.out)
    for name, hist in sorted(tracer.histograms.items()):
        summary = hist.summary()
        # Diagnostics go to stderr so --json keeps stdout machine-readable.
        print(
            f"{name:>28}: n={hist.count:6d} mean={summary['mean']:8.3f} "
            f"p50={summary['p50']:8.3f} p99={summary['p99']:8.3f} "
            f"max={summary['max']:8.3f}",
            file=sys.stderr,
        )
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    """Run a scenario, then render its virtual /proc (text or JSON)."""
    if args.policy not in available_policies():
        return _unknown_policy(args.policy)
    result = _run_one(args, args.policy, None)
    procfs = result.system.procfs
    if args.format == "json":
        doc = {
            "meta": {
                "scenario": result.scenario,
                "policy": result.policy,
                "device": result.device,
                "bg_case": result.bg_case,
                "seed": result.seed,
                "sim_ms": result.system.sim.now,
            },
            "proc": procfs.snapshot(),
        }
        print(json.dumps(doc, indent=2 if args.pretty else None))
    elif args.paths:
        print(procfs.dump_text(args.paths))
    else:
        print(procfs.dump_text())
    return 0


_WATCH_COLUMNS = (
    # (header, row key, format)
    ("time_s", None, "{:8.1f}"),
    ("free_pg", "free_pages", "{:8.0f}"),
    ("avail_pg", "available_pages", "{:8.0f}"),
    ("fps", "fps", "{:6.1f}"),
    ("cpu%", "cpu_utilization", "{:6.1f}"),
    ("refault", "refault_total", "{:8.0f}"),
    ("pgsteal", "pgsteal", "{:8.0f}"),
    ("mem.some", "psi_mem_some_avg10", "{:8.2f}"),
    ("mem.full", "psi_mem_full_avg10", "{:8.2f}"),
    ("io.some", "psi_io_some_avg10", "{:8.2f}"),
    ("cpu.some", "psi_cpu_some_avg10", "{:8.2f}"),
    ("frozen", "frozen_processes", "{:6.0f}"),
)


def cmd_watch(args: argparse.Namespace) -> int:
    """Run a scenario printing an interval-sampled live table.

    With ``--serve URL`` it instead becomes the live fleet pressure
    console for a running ``repro serve`` instance: periodic
    ``/v1/stats`` polls plus an SSE event tail, rendering queue depth,
    worker utilization, cache hit/eviction rates, latency percentiles,
    and per-tenant rogue scores.
    """
    if args.serve:
        from repro.serve.client import ServeClient
        from repro.serve.console import FleetConsole

        console = FleetConsole(
            ServeClient(args.serve),
            every_s=args.every,
            plain=args.plain,
        )
        return console.run(iterations=args.iterations)
    if args.policy not in available_policies():
        return _unknown_policy(args.policy)
    header = " ".join(
        title.rjust(len(fmt.format(0))) for title, _key, fmt in _WATCH_COLUMNS
    )
    print(header)
    state = {"rows": 0}

    def emit(now_ms: float, row: dict) -> None:
        cells = []
        for _title, key, fmt in _WATCH_COLUMNS:
            if key is None:
                value = now_ms / 1000.0
            elif key == "cpu_utilization":
                value = row[key] * 100.0
            else:
                value = row[key]
            cells.append(fmt.format(value))
        print(" ".join(cells))
        state["rows"] += 1
        if state["rows"] % 20 == 0:
            print(header)

    result = run_scenario(
        args.scenario,
        policy=args.policy,
        spec=get_device(args.device),
        bg_case=args.bg_case,
        bg_count=args.bg,
        seconds=args.seconds,
        seed=args.seed,
        sample_interval_ms=args.every * 1000.0,
        on_sample=emit,
    )
    print(f"# {state['rows']} samples over {args.seconds:.0f}s measured window")
    _emit_result(result, args.json)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.runner import main as bench_main

    return bench_main(args)


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench.compare import run_compare

    return run_compare(args)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation-as-a-service control plane until drained."""
    import asyncio

    from repro.serve.http import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_retries=args.max_retries,
        cache_dir=args.cache_dir,
        drain_grace_s=args.drain_grace,
        default_timeout_s=args.default_timeout,
        cache_budget_bytes=(
            int(args.cache_budget_mb * 1024 * 1024)
            if args.cache_budget_mb else None
        ),
        mem_sample_interval_s=args.mem_sample_every,
        sse_keepalive_s=args.sse_keepalive,
        enable_tracemalloc=args.tracemalloc,
        job_budget_bytes=(
            int(args.job_budget_mb * 1024 * 1024)
            if args.job_budget_mb else None
        ),
        job_min_retention_s=args.job_min_retention,
        max_events_per_job=args.max_job_events or None,
        node_id=args.node_id,
        ratelimit_rps=args.ratelimit_rps,
        ratelimit_burst=args.ratelimit_burst,
    )

    def ready(server) -> None:
        port = server.port if hasattr(server, "port") else server.server.port
        print(
            f"repro-serve listening on http://{config.host}:{port} "
            f"(workers={config.workers}, queue depth={config.queue_depth}, "
            f"cache={'disk:' + config.cache_dir if config.cache_dir else 'memory'})"
            + (f" [fleet node {config.node_id}]" if args.coordinator else ""),
            flush=True,
        )

    try:
        if args.coordinator:
            from repro.fleet.node import run_node

            if not config.node_id:
                print(
                    "error: --coordinator requires --node-id",
                    file=sys.stderr,
                )
                return 2
            asyncio.run(run_node(
                config, args.coordinator,
                advertise_url=args.advertise_url,
                heartbeat_interval_s=args.heartbeat_every,
                ready=ready,
            ))
        else:
            asyncio.run(run_server(config, ready=ready))
    except KeyboardInterrupt:
        pass  # SIGINT before the drain handler was installed
    return 0


def cmd_coordinator(args: argparse.Namespace) -> int:
    """Run the fleet coordinator: membership, routing, admission."""
    import asyncio

    from repro.fleet.coordinator import CoordinatorConfig, run_coordinator

    config = CoordinatorConfig(
        host=args.host,
        port=args.port,
        vnodes=args.vnodes,
        heartbeat_timeout_s=args.heartbeat_timeout,
        sweep_interval_s=args.sweep_every,
        ratelimit_rps=args.ratelimit_rps,
        ratelimit_burst=args.ratelimit_burst,
        proxy_timeout_s=args.proxy_timeout,
    )

    def ready(coordinator) -> None:
        limits = (
            f"{config.ratelimit_rps}/s per tenant"
            if config.ratelimit_rps else "off"
        )
        print(
            f"repro-fleet coordinator on http://{config.host}:"
            f"{coordinator.port} (heartbeat timeout "
            f"{config.heartbeat_timeout_s}s, rate limits {limits})",
            flush=True,
        )

    try:
        asyncio.run(run_coordinator(config, ready=ready))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Replay a synthetic RunRequest mix; emit LOADTEST_<date>.json."""
    from repro.fleet.loadtest import main as loadtest_main

    return loadtest_main(args)


def _print_served_result(job: dict) -> None:
    result = job["result"]
    origin = "cache" if job.get("cache_hit") else "worker"
    print(
        f"{result['policy']:>12} | {result['fps']:5.1f} fps | "
        f"RIA {result['ria']:5.1%} | refaults {result['refault']:6d} | "
        f"launch {result['launch_ms']:6.0f} ms | LMK {result['lmk_kills']} | "
        f"frozen {result['frozen_apps']} | via {origin}"
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one run to a `repro serve` instance and await the result."""
    from repro.serve.client import QueueFullError, ServeClient, ServeError
    from repro.serve.spec import RunRequest

    if args.policy not in available_policies():
        return _unknown_policy(args.policy)
    request = RunRequest(
        scenario=args.scenario,
        policy=args.policy,
        device=args.device,
        bg_case=args.bg_case,
        bg_count=args.bg,
        seconds=args.seconds,
        seed=args.seed,
    )
    client = ServeClient(args.url)
    progress_ms = args.progress_every * 1000.0 if args.progress_every else None
    try:
        job = client.submit(
            request,
            priority=args.priority,
            timeout_s=args.timeout,
            progress_interval_ms=progress_ms,
            tenant=args.tenant,
            retries=args.retries,
        )
    except QueueFullError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (ServeError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    job_id = job["id"]
    print(f"run {job_id}: {job['state']}"
          + (" (cache hit)" if job.get("cache_hit") else ""),
          file=sys.stderr)
    if args.no_wait:
        print(json.dumps(job))
        return 0
    try:
        if args.follow and not job.get("cache_hit"):
            # follow() (not events()) so a dropped socket mid-run
            # reconnects from the last absolute cursor.
            for event, data in client.follow(
                job_id, timeout_s=args.wait_timeout
            ):
                print(f"  {event}: {json.dumps(data)}", file=sys.stderr)
            job = client.get(job_id)
        elif job["state"] in ("queued", "running"):
            job = client.wait(job_id, timeout_s=args.wait_timeout)
    except (ServeError, ConnectionError, OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if job["state"] != "done":
        print(
            f"run {job_id} {job['state']}: {job.get('error')}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(job["result"]))
    else:
        _print_served_result(job)
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    rows = table1(seconds=args.seconds, rounds=args.rounds)
    print(format_table1(rows))
    return 0


def cmd_overhead(_args: argparse.Namespace) -> int:
    print(format_overhead())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ICE (EuroSys'23) reproduction: quick experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_scenario = sub.add_parser("scenario", help="run one scenario/policy")
    _add_scenario_args(p_scenario)
    _add_trace_args(p_scenario)
    p_scenario.add_argument("--policy", default="LRU+CFS",
                            help="policy name (see `repro compare` error "
                                 "output for the registered list)")
    p_scenario.set_defaults(func=cmd_scenario)

    p_compare = sub.add_parser("compare", help="run several policies")
    _add_scenario_args(p_compare)
    _add_trace_args(p_compare)
    p_compare.add_argument("--policies", default="LRU+CFS,UCSG,Acclaim,Ice")
    p_compare.set_defaults(func=cmd_compare)

    p_trace = sub.add_parser(
        "trace", help="run one traced scenario and export a Perfetto trace"
    )
    _add_scenario_args(p_trace)
    p_trace.add_argument("--policy", default="Ice")
    p_trace.add_argument("--out", default="repro.trace.json", metavar="PATH",
                         help="Chrome/Perfetto trace_event JSON output path")
    p_trace.add_argument("--timeseries-out", default=None, metavar="PATH",
                         help="also dump the sampler series (.csv or .json)")
    p_trace.add_argument("--sample-ms", type=float, default=DEFAULT_SAMPLE_MS)
    p_trace.add_argument("--trace-buffer", type=int, default=None)
    p_trace.add_argument("--trace-buffer-kb", type=int, default=None)
    p_trace.add_argument("--engine-events", action="store_true",
                         help="include per-callback engine instants "
                              "(high volume)")
    p_trace.set_defaults(func=cmd_trace)

    p_dump = sub.add_parser(
        "dump",
        help="run a scenario, then print its virtual /proc "
             "(meminfo, vmstat, pressure/*, per-app memcg files)",
    )
    _add_scenario_args(p_dump)
    p_dump.add_argument("--policy", default="LRU+CFS")
    p_dump.add_argument("--format", default="text", choices=["text", "json"],
                        help="text: Linux-flavoured proc files; "
                             "json: one structured document")
    p_dump.add_argument("--pretty", action="store_true",
                        help="indent the JSON output")
    p_dump.add_argument("--paths", nargs="*", default=None, metavar="PATH",
                        help="only these proc paths (text mode), e.g. "
                             "pressure/memory memcg/TikTok/memory.stat")
    p_dump.set_defaults(func=cmd_dump, seconds=15.0)

    p_watch = sub.add_parser(
        "watch",
        help="run a scenario printing a live interval-sampled table "
             "(free memory, FPS, PSI avg10s, refaults), or — with "
             "--serve URL — a live fleet pressure console for a "
             "running `repro serve` instance",
    )
    _add_scenario_args(p_watch)
    p_watch.add_argument("--policy", default="LRU+CFS")
    p_watch.add_argument("--every", type=float, default=1.0, metavar="SECONDS",
                         help="sampling interval in simulated seconds "
                              "(with --serve: stats poll interval in "
                              "wall seconds)")
    p_watch.add_argument("--serve", default=None, metavar="URL",
                         help="watch a serve control plane instead of "
                              "running a local scenario")
    p_watch.add_argument("--iterations", type=int, default=None, metavar="N",
                         help="with --serve: render N frames then exit "
                              "(default: until interrupted)")
    p_watch.add_argument("--plain", action="store_true",
                         help="with --serve: append frames instead of "
                              "clearing the screen (log-friendly)")
    p_watch.set_defaults(func=cmd_watch)

    p_bench = sub.add_parser(
        "bench", help="self-profiling benchmark harness (repro.bench)"
    )
    from repro.bench.runner import add_bench_args

    add_bench_args(p_bench)
    p_bench.set_defaults(func=cmd_bench)
    # Nested, non-required: `repro bench` alone still runs the matrix;
    # `repro bench compare OLD NEW` runs the regression gate.
    bench_sub = p_bench.add_subparsers(dest="bench_cmd")
    p_bench_cmp = bench_sub.add_parser(
        "compare", help="diff two BENCH artifacts; exit nonzero on regression"
    )
    p_bench_cmp.add_argument("old", help="baseline BENCH json")
    p_bench_cmp.add_argument("new", help="candidate BENCH json")
    p_bench_cmp.add_argument("--rel-tol", type=float, default=0.0)
    p_bench_cmp.add_argument("--abs-tol", type=float, default=0.0)
    p_bench_cmp.add_argument("--perf-rel-tol", type=float, default=0.25)
    p_bench_cmp.add_argument("--fail-on-perf", action="store_true")
    p_bench_cmp.set_defaults(func=cmd_bench_compare)

    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP control plane: queue, worker fleet, "
             "result cache (repro.serve)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="simulation worker processes")
    p_serve.add_argument("--queue-depth", type=int, default=64, metavar="N",
                         help="max queued jobs before 429 backpressure")
    p_serve.add_argument("--max-retries", type=int, default=1, metavar="N",
                         help="retries for jobs whose worker process died")
    p_serve.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="persist the content-addressed result cache "
                              "as JSON files here (default: memory only)")
    p_serve.add_argument("--drain-grace", type=float, default=60.0,
                         metavar="SECONDS",
                         help="how long a SIGTERM drain waits for in-flight "
                              "jobs before dropping them")
    p_serve.add_argument("--default-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="deadline applied to jobs submitted without "
                              "an explicit timeout_s")
    p_serve.add_argument("--cache-budget-mb", type=float, default=64.0,
                         metavar="MB",
                         help="byte budget for the result cache's memory "
                              "tier; size-aware LRU eviction keeps RSS "
                              "flat under it (0 = unbounded)")
    p_serve.add_argument("--mem-sample-every", type=float, default=10.0,
                         metavar="SECONDS",
                         help="RSS/tracemalloc gauge sampling interval")
    p_serve.add_argument("--sse-keepalive", type=float, default=15.0,
                         metavar="SECONDS",
                         help="interval between `: ping` comment frames "
                              "on idle SSE event streams")
    p_serve.add_argument("--tracemalloc", action="store_true",
                         help="start tracemalloc for precise Python-heap "
                              "gauges (adds allocation overhead)")
    p_serve.add_argument("--job-budget-mb", type=float, default=16.0,
                         metavar="MB",
                         help="byte budget for retained terminal jobs; the "
                              "oldest finished runs are evicted to 410 Gone "
                              "tombstones past it (0 = retain forever)")
    p_serve.add_argument("--job-min-retention", type=float, default=30.0,
                         metavar="SECONDS",
                         help="a finished run is never evicted within this "
                              "window, budget notwithstanding")
    p_serve.add_argument("--max-job-events", type=int, default=512,
                         metavar="N",
                         help="per-job lifecycle event cap; SSE followers "
                              "see a dropped_events marker past it "
                              "(0 = unbounded)")
    p_serve.add_argument("--coordinator", default=None, metavar="URL",
                         help="join the fleet at this coordinator URL "
                              "(register + heartbeat; requires --node-id)")
    p_serve.add_argument("--node-id", default=None, metavar="NAME",
                         help="this node's fleet identity")
    p_serve.add_argument("--advertise-url", default=None, metavar="URL",
                         help="URL the coordinator should reach this node "
                              "at (default: http://<host>:<port>)")
    p_serve.add_argument("--heartbeat-every", type=float, default=2.0,
                         metavar="SECONDS",
                         help="fleet heartbeat interval")
    p_serve.add_argument("--ratelimit-rps", type=float, default=None,
                         metavar="RPS",
                         help="per-tenant token-bucket refill rate; "
                              "rejections are 429 + Retry-After "
                              "(default: no rate limiting)")
    p_serve.add_argument("--ratelimit-burst", type=float, default=None,
                         metavar="TOKENS",
                         help="per-tenant bucket capacity "
                              "(default: 2x the rate)")
    p_serve.set_defaults(func=cmd_serve)

    p_coord = sub.add_parser(
        "coordinator",
        help="run the fleet coordinator: node registry, heartbeat "
             "liveness, consistent-hash routing, per-tenant rate "
             "limits (repro.fleet)",
    )
    p_coord.add_argument("--host", default="127.0.0.1")
    p_coord.add_argument("--port", type=int, default=8090,
                         help="listen port (0 = ephemeral)")
    p_coord.add_argument("--vnodes", type=int, default=64, metavar="N",
                         help="virtual nodes per member on the hash ring")
    p_coord.add_argument("--heartbeat-timeout", type=float, default=6.0,
                         metavar="SECONDS",
                         help="a node silent this long is evicted and its "
                              "in-flight jobs resubmitted")
    p_coord.add_argument("--sweep-every", type=float, default=1.0,
                         metavar="SECONDS",
                         help="liveness sweep interval")
    p_coord.add_argument("--ratelimit-rps", type=float, default=None,
                         metavar="RPS",
                         help="per-tenant token-bucket refill rate at "
                              "admission (default: no rate limiting)")
    p_coord.add_argument("--ratelimit-burst", type=float, default=None,
                         metavar="TOKENS",
                         help="per-tenant bucket capacity "
                              "(default: 2x the rate)")
    p_coord.add_argument("--proxy-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="budget for one proxied node round-trip")
    p_coord.set_defaults(func=cmd_coordinator)

    p_loadtest = sub.add_parser(
        "loadtest",
        help="replay a synthetic RunRequest mix against a coordinator "
             "or node; emit a schema-versioned LOADTEST_<date>.json",
    )
    p_loadtest.add_argument("--url", default="http://127.0.0.1:8090",
                            help="coordinator or node base URL")
    p_loadtest.add_argument("--requests", type=int, default=200, metavar="N")
    p_loadtest.add_argument("--concurrency", type=int, default=8, metavar="N",
                            help="closed-loop client threads")
    p_loadtest.add_argument("--seed", type=int, default=42,
                            help="mix generator seed (same seed, same mix)")
    p_loadtest.add_argument("--tenants", default=None, metavar="A,B,C",
                            help="comma-separated tenant names "
                                 "(default: tenant-a,tenant-b,tenant-c)")
    p_loadtest.add_argument("--duplicate-fraction", type=float, default=0.25,
                            metavar="F",
                            help="fraction of submissions duplicating an "
                                 "earlier one (cache-hit traffic)")
    p_loadtest.add_argument("--sweep", default=None, metavar="1,2,4,8",
                            help="also run a knee-of-curve concurrency sweep "
                                 "at these levels")
    p_loadtest.add_argument("--sweep-requests", type=int, default=60,
                            metavar="N", help="requests per sweep level")
    p_loadtest.add_argument("--wait-timeout-s", type=float, default=300.0,
                            metavar="SECONDS",
                            help="per-request completion timeout")
    p_loadtest.add_argument("--out", default=None, metavar="PATH",
                            help="artifact path "
                                 "(default: LOADTEST_<date>.json)")
    p_loadtest.set_defaults(func=cmd_loadtest)

    p_submit = sub.add_parser(
        "submit", help="submit one run to a `repro serve` instance"
    )
    _add_scenario_args(p_submit)
    p_submit.add_argument("--policy", default="LRU+CFS")
    p_submit.add_argument("--url", default="http://127.0.0.1:8080",
                          help="control-plane base URL")
    p_submit.add_argument("--priority", type=int, default=None,
                          help="lower runs first; FIFO within a priority")
    p_submit.add_argument("--tenant", default=None, metavar="NAME",
                          help="tenant tag for per-tenant fleet stats "
                               "and rogue scoring (default: 'default')")
    p_submit.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="server-side deadline covering queue + run")
    p_submit.add_argument("--progress-every", type=float, default=None,
                          metavar="SECONDS",
                          help="stream sampler progress at this simulated "
                               "interval (adds sampler ticks to "
                               "events_executed)")
    p_submit.add_argument("--follow", action="store_true",
                          help="print the run's SSE event stream to stderr "
                               "while waiting")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the submission snapshot and exit "
                               "without waiting for the result")
    p_submit.add_argument("--wait-timeout", type=float, default=600.0,
                          metavar="SECONDS",
                          help="client-side polling timeout")
    p_submit.add_argument("--retries", type=int, default=3, metavar="N",
                          help="retry 429 backpressure and transient "
                               "connection failures this many times with "
                               "jittered exponential backoff")
    p_submit.set_defaults(func=cmd_submit)

    p_table1 = sub.add_parser("table1", help="regenerate Table 1")
    p_table1.add_argument("--seconds", type=float, default=20.0)
    p_table1.add_argument("--rounds", type=int, default=2)
    p_table1.set_defaults(func=cmd_table1)

    p_overhead = sub.add_parser("overhead", help="§6.4 overhead numbers")
    p_overhead.set_defaults(func=cmd_overhead)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
