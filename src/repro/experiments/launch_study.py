"""Figure 11 / §6.3: impact of Ice on application launching.

Methodology (§6.3): launch the 20 pre-installed applications round-
robin for ten rounds; each app runs in the FG for a fixed period before
the next is launched.  Memory fills quickly, reclaim churns, and the
LMK kills cached apps — so later rounds mix hot and cold launches.
Measured: launch latency (split cold/hot), the number of hot launches
in rounds 2-10 (Figure 11(b) — Ice's reduced pressure keeps more apps
cached), and the worst-case hot launch (§6.3.1: thaw a fully-reclaimed
frozen app; ~2x a normal hot launch but far below a cold one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.catalog import catalog_apps
from repro.devices.specs import DeviceSpec, huawei_p20
from repro.policies.registry import make_policy
from repro.system import MobileSystem


@dataclass
class LaunchSample:
    round_index: int
    package: str
    style: str
    latency_ms: float
    thaw_ms: float


@dataclass
class LaunchStudyResult:
    policy: str
    samples: List[LaunchSample] = field(default_factory=list)
    lmk_kills: int = 0

    def _lat(self, style: Optional[str] = None) -> List[float]:
        return [
            s.latency_ms
            for s in self.samples
            if style is None or s.style == style
        ]

    @property
    def average_ms(self) -> float:
        lats = self._lat()
        return sum(lats) / len(lats) if lats else 0.0

    @property
    def cold_ms(self) -> float:
        lats = self._lat("cold")
        return sum(lats) / len(lats) if lats else 0.0

    @property
    def hot_ms(self) -> float:
        lats = self._lat("hot")
        return sum(lats) / len(lats) if lats else 0.0

    def hot_launch_count(self, from_round: int = 1) -> int:
        """Hot launches in rounds >= from_round (Figure 11(b): rounds 2-10)."""
        return sum(
            1
            for s in self.samples
            if s.style == "hot" and s.round_index >= from_round
        )


def launch_study(
    policy: str,
    spec: Optional[DeviceSpec] = None,
    rounds: int = 10,
    use_seconds: float = 12.0,
    seed: int = 42,
    app_limit: Optional[int] = None,
) -> LaunchStudyResult:
    """Round-robin launch study (Figure 11).

    ``use_seconds`` is the FG dwell per launch (the paper uses 30 s;
    shorter dwells preserve the dynamics at lower cost).
    """
    system = MobileSystem(spec=spec or huawei_p20(),
                          policy=make_policy(policy), seed=seed)
    profiles = catalog_apps()
    if app_limit is not None:
        profiles = profiles[:app_limit]
    system.install_apps(profiles)
    result = LaunchStudyResult(policy=policy)

    for round_index in range(rounds):
        for profile in profiles:
            record = system.launch(profile.package, drive_frames=True)
            completed = system.run_until_complete(record, timeout_s=300.0)
            if completed:
                result.samples.append(
                    LaunchSample(
                        round_index=round_index,
                        package=profile.package,
                        style=record.style,
                        latency_ms=record.latency_ms,
                        thaw_ms=record.thaw_ms,
                    )
                )
            system.run(seconds=use_seconds)
    result.lmk_kills = system.lmk.kill_count
    return result


@dataclass
class WorstCaseResult:
    """§6.3.1's worst case: hot launch of a fully-reclaimed frozen app."""

    normal_hot_ms: float
    worst_hot_ms: float

    @property
    def slowdown(self) -> float:
        return self.worst_hot_ms / self.normal_hot_ms if self.normal_hot_ms else 0.0


def worst_case_hot_launch(
    spec: Optional[DeviceSpec] = None,
    package: str = "WhatsApp",
    other: str = "Chrome",
    seed: int = 42,
) -> WorstCaseResult:
    """Measure the §6.3.1 worst case under Ice.

    Launch an app, cache it, measure a normal hot launch; then reclaim
    *all* of its pages, freeze it, and measure the hot launch that must
    thaw it and fault everything back.
    """
    system = MobileSystem(spec=spec or huawei_p20(),
                          policy=make_policy("Ice"), seed=seed)
    system.install_apps(catalog_apps())

    record = system.launch(package, drive_frames=False)
    system.run_until_complete(record, timeout_s=240.0)
    system.run(seconds=3.0)
    record = system.launch(other, drive_frames=False)
    system.run_until_complete(record, timeout_s=240.0)
    system.run(seconds=2.0)

    # Normal hot launch.
    record = system.launch(package, drive_frames=False)
    system.run_until_complete(record, timeout_s=240.0)
    normal_hot = record.latency_ms
    system.run(seconds=2.0)
    record = system.launch(other, drive_frames=False)
    system.run_until_complete(record, timeout_s=240.0)
    system.run(seconds=2.0)

    # Worst case: reclaim everything, freeze, then hot launch.
    app = system.get_app(package)
    for process in app.processes:
        system.proc_reclaim.reclaim_process(process.page_table)
        system.freezer.freeze(process.pid)
    system.run(seconds=1.0)
    record = system.launch(package, drive_frames=False)
    system.run_until_complete(record, timeout_s=240.0)
    return WorstCaseResult(normal_hot_ms=normal_hot, worst_hot_ms=record.latency_ms)


def format_launch_study(results: Dict[str, LaunchStudyResult]) -> str:
    lines = [
        "Figure 11: application launching",
        f"{'policy':>10} | {'avg ms':>8} | {'cold ms':>8} | {'hot ms':>8} | "
        f"{'hot launches (r2+)':>18} | {'LMK kills':>9}",
        "-" * 74,
    ]
    for policy, result in results.items():
        lines.append(
            f"{policy:>10} | {result.average_ms:>8.0f} | {result.cold_ms:>8.0f} | "
            f"{result.hot_ms:>8.0f} | {result.hot_launch_count(1):>18} | "
            f"{result.lmk_kills:>9}"
        )
    return "\n".join(lines)
