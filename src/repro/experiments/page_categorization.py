"""Figure 4 / §3.2: categorization of refaulted pages per application.

Methodology (§3.2): launch and exercise an application, switch it to
the background, reclaim *all* of its pages with the per-process-reclaim
feature, then trace which pages are refaulted back within a window and
what kind they are (file-backed vs anonymous; within anonymous, java
heap vs native heap).

Paper's aggregate findings: >30% of reclaimed pages are refaulted;
refaulted pages split ≈48.6% file / 51.4% anon; anon refaults split
≈56.6% native / 43.4% java; and substantial refaults remain even with
the idle runtime GC disabled (≈77%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.catalog import extended_catalog
from repro.apps.profiles import AppProfile
from repro.devices.specs import DeviceSpec, huawei_p20
from repro.kernel.page import HeapKind
from repro.policies.registry import make_policy
from repro.system import MobileSystem


@dataclass
class AppRefaultBreakdown:
    """Per-app result of the reclaim-then-trace experiment."""

    package: str
    reclaimed: int
    refaulted_file: int = 0
    refaulted_java: int = 0
    refaulted_native: int = 0

    @property
    def refaulted(self) -> int:
        return self.refaulted_file + self.refaulted_java + self.refaulted_native

    @property
    def refault_fraction(self) -> float:
        return self.refaulted / self.reclaimed if self.reclaimed else 0.0

    @property
    def refaulted_anon(self) -> int:
        return self.refaulted_java + self.refaulted_native


@dataclass
class CategorizationSummary:
    apps: List[AppRefaultBreakdown] = field(default_factory=list)

    @property
    def total_reclaimed(self) -> int:
        return sum(app.reclaimed for app in self.apps)

    @property
    def total_refaulted(self) -> int:
        return sum(app.refaulted for app in self.apps)

    @property
    def refault_fraction(self) -> float:
        return (
            self.total_refaulted / self.total_reclaimed
            if self.total_reclaimed
            else 0.0
        )

    @property
    def file_share(self) -> float:
        total = self.total_refaulted
        return sum(a.refaulted_file for a in self.apps) / total if total else 0.0

    @property
    def anon_share(self) -> float:
        total = self.total_refaulted
        return sum(a.refaulted_anon for a in self.apps) / total if total else 0.0

    @property
    def native_share_of_anon(self) -> float:
        anon = sum(a.refaulted_anon for a in self.apps)
        native = sum(a.refaulted_native for a in self.apps)
        return native / anon if anon else 0.0

    @property
    def java_share_of_anon(self) -> float:
        return 1.0 - self.native_share_of_anon if self.apps else 0.0


def trace_app_refaults(
    system: MobileSystem,
    package: str,
    window_s: float = 30.0,
) -> AppRefaultBreakdown:
    """Reclaim every page of a cached app, then trace its refaults.

    The app must already be cached in the BG (as in §3.2: launch, run,
    switch to BG, then `echo all > /proc/<pid>/reclaim`).
    """
    app = system.get_app(package)
    pages = app.all_pages()
    before = {page.page_id: page.refaults for page in pages}
    reclaimed = 0
    for process in app.processes:
        result = system.proc_reclaim.reclaim_process(process.page_table)
        reclaimed += result.reclaimed

    system.run(seconds=window_s)

    breakdown = AppRefaultBreakdown(package=package, reclaimed=reclaimed)
    for page in pages:
        if page.refaults <= before[page.page_id]:
            continue
        if page.is_file:
            breakdown.refaulted_file += 1
        elif page.heap is HeapKind.JAVA:
            breakdown.refaulted_java += 1
        else:
            breakdown.refaulted_native += 1
    return breakdown


def figure4(
    spec: Optional[DeviceSpec] = None,
    profiles: Optional[Sequence[AppProfile]] = None,
    window_s: float = 30.0,
    disable_idle_gc: bool = False,
    seed: int = 42,
    apps_per_system: int = 4,
) -> CategorizationSummary:
    """Run the §3.2 study over the (extended, 40-app) catalog.

    Apps are studied in small batches on fresh systems so that each has
    a quiet, reproducible environment (the paper reclaims one app at a
    time on an otherwise idle phone).
    """
    spec = spec or huawei_p20()
    profiles = list(profiles) if profiles is not None else extended_catalog()
    summary = CategorizationSummary()
    for start in range(0, len(profiles), apps_per_system):
        batch = profiles[start : start + apps_per_system]
        system = MobileSystem(
            spec=spec, policy=make_policy("LRU+CFS"), seed=seed + start
        )
        system.idle_gc_disabled = disable_idle_gc
        system.install_apps(batch)
        # Launch each app, then push it to the BG by launching the next.
        for profile in batch:
            record = system.launch(profile.package, drive_frames=False)
            system.run_until_complete(record, timeout_s=240.0)
            system.run(seconds=2.0)
        # Demote the last one by re-launching the first (hot), so every
        # studied app is cached in the BG when traced.
        if len(batch) > 1:
            record = system.launch(batch[0].package, drive_frames=False)
            system.run_until_complete(record, timeout_s=240.0)
        for profile in batch[1:]:
            app = system.get_app(profile.package)
            if not app.alive or system.foreground_app is app:
                continue  # killed by the LMK during staging
            summary.apps.append(
                trace_app_refaults(system, profile.package, window_s=window_s)
            )
        # Finally demote and trace the first app too.
        first = system.get_app(batch[0].package)
        if len(batch) > 1 and first.alive:
            second = system.get_app(batch[1].package)
            if second.alive:
                record = system.launch(batch[1].package, drive_frames=False)
                system.run_until_complete(record, timeout_s=240.0)
            if first.alive and system.foreground_app is not first:
                summary.apps.append(
                    trace_app_refaults(system, batch[0].package, window_s=window_s)
                )
    return summary


def format_figure4(summary: CategorizationSummary) -> str:
    lines = [
        "Figure 4: categorization of refaulted pages (per-process reclaim study)",
        f"{'app':>18} | {'reclaimed':>9} | {'refaulted':>9} | {'frac':>5} | "
        f"{'file':>5} | {'java':>5} | {'native':>6}",
        "-" * 78,
    ]
    for app in summary.apps:
        lines.append(
            f"{app.package:>18} | {app.reclaimed:>9} | {app.refaulted:>9} | "
            f"{app.refault_fraction:>5.0%} | {app.refaulted_file:>5} | "
            f"{app.refaulted_java:>5} | {app.refaulted_native:>6}"
        )
    lines.append("-" * 78)
    lines.append(
        f"aggregate: refault fraction {summary.refault_fraction:.1%}; "
        f"file {summary.file_share:.1%} vs anon {summary.anon_share:.1%}; "
        f"anon split native {summary.native_share_of_anon:.1%} / "
        f"java {summary.java_share_of_anon:.1%}"
    )
    return "\n".join(lines)
