"""Table 1: CPU utilization with N applications cached in the BG.

Methodology (§2.2.3(1)): cache N randomly-selected applications with no
foreground application, let them sit for a window, and measure average
and peak CPU utilization.  Repeated for several rounds with
re-randomised BG sets; the paper reports the average over ten rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.android.app import AppState
from repro.apps.catalog import catalog_apps
from repro.devices.specs import DeviceSpec, huawei_p20
from repro.experiments.scenarios import background_packages
from repro.policies.registry import make_policy
from repro.system import MobileSystem


@dataclass
class CpuUtilizationRow:
    """One row of Table 1."""

    bg_apps: int
    average: float
    peak: float


def measure_cpu_utilization(
    bg_apps: int,
    spec: Optional[DeviceSpec] = None,
    seconds: float = 30.0,
    rounds: int = 3,
    base_seed: int = 42,
    policy: str = "LRU+CFS",
) -> CpuUtilizationRow:
    """Measure utilization with ``bg_apps`` cached apps and no FG app."""
    averages: List[float] = []
    peaks: List[float] = []
    for round_index in range(rounds):
        seed = base_seed + 1000 * round_index
        system = MobileSystem(spec=spec or huawei_p20(),
                              policy=make_policy(policy), seed=seed)
        system.install_apps(catalog_apps())
        rng = system.rng.stream("table1-bg-selection")
        packages = background_packages("", bg_apps, rng)
        for package in packages:
            record = system.launch(package, drive_frames=False)
            system.run_until_complete(record, timeout_s=240.0)
        if packages:
            # Demote the last-launched app out of the foreground so the
            # population is purely background, as in the paper's setup.
            last = system.get_app(packages[-1])
            system.frame_engine.stop()
            last.state = AppState.CACHED
            system.activity_manager.foreground = None
            system.mm.foreground_uid = None
        system.run(seconds=3.0)
        system.reset_measurements()
        system.run(seconds=seconds)
        averages.append(system.sched.stats.average_utilization)
        peaks.append(system.sched.stats.peak_utilization)
    return CpuUtilizationRow(
        bg_apps=bg_apps,
        average=sum(averages) / len(averages),
        peak=sum(peaks) / len(peaks),
    )


def table1(
    counts: Sequence[int] = (0, 2, 4, 6, 8),
    spec: Optional[DeviceSpec] = None,
    seconds: float = 30.0,
    rounds: int = 3,
    base_seed: int = 42,
) -> List[CpuUtilizationRow]:
    """Regenerate Table 1 (one row per BG-app count)."""
    return [
        measure_cpu_utilization(
            count, spec=spec, seconds=seconds, rounds=rounds, base_seed=base_seed
        )
        for count in counts
    ]


def format_table1(rows: Sequence[CpuUtilizationRow]) -> str:
    lines = [
        "Table 1: CPU utilization with N apps in the BG (no FG app)",
        f"{'BG apps':>8} | {'Average':>8} | {'Peak':>8}",
        "-" * 32,
    ]
    for row in rows:
        lines.append(
            f"{row.bg_apps:>8} | {row.average:>7.0%} | {row.peak:>7.0%}"
        )
    return "\n".join(lines)
