"""Figure 2: reclaim/refault totals and the FPS-vs-BG-refault correlation.

* **Figure 2(a)** — total reclaimed and refaulted pages under BG-null,
  BG-memtester and BG-apps (baseline kernel): memtester forces plenty of
  reclaim but few refaults; real BG apps force the most reclaim *and*
  dramatically more refaults.
* **Figure 2(b)** — the four-scenario runs are cut into 30-second
  slices; slices are sorted by their BG-refault count and bucketed into
  deciles; the mean FPS and reclaim count per decile shows frame rate
  collapsing as BG refaults rise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.catalog import APP_CATALOG, catalog_apps
from repro.devices.specs import DeviceSpec, huawei_p20
from repro.experiments.scenarios import (
    BgCase,
    SCENARIOS,
    run_scenario,
    stage_background,
)
from repro.policies.registry import make_policy
from repro.system import MobileSystem


# ----------------------------------------------------------------------
# Figure 2(a)
# ----------------------------------------------------------------------
@dataclass
class Figure2aRow:
    case: str
    reclaim: int
    refault: int


def figure2a(
    scenario: str = "S-A",
    spec: Optional[DeviceSpec] = None,
    seconds: float = 90.0,
    seed: int = 42,
) -> List[Figure2aRow]:
    """Reclaim/refault totals per BG case (Figure 2(a))."""
    rows = []
    for case in (BgCase.NULL, BgCase.MEMTESTER, BgCase.APPS):
        result = run_scenario(
            scenario,
            spec=spec or huawei_p20(),
            bg_case=case,
            seconds=seconds,
            settle_s=0.0,
            seed=seed,
        )
        rows.append(
            Figure2aRow(case=case, reclaim=result.reclaim, refault=result.refault)
        )
    return rows


def format_figure2a(rows: Sequence[Figure2aRow]) -> str:
    lines = [
        "Figure 2(a): reclaimed and refaulted pages in total",
        f"{'case':>14} | {'Reclaim':>8} | {'Refault':>8}",
        "-" * 38,
    ]
    for row in rows:
        lines.append(f"{row.case:>14} | {row.reclaim:>8} | {row.refault:>8}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 2(b)
# ----------------------------------------------------------------------
@dataclass
class SliceSample:
    """One 30-second slice of a scenario run."""

    scenario: str
    bg_refaults: int
    reclaims: int
    fps: float


@dataclass
class DecileRow:
    decile: str
    fps: float
    reclaims: float
    bg_refaults: float


def collect_slices(
    spec: Optional[DeviceSpec] = None,
    scenarios: Sequence[str] = tuple(SCENARIOS),
    bg_counts: Sequence[int] = (4, 6, 7, 8),
    slices_per_scenario: int = 4,
    slice_seconds: float = 30.0,
    settle_s: float = 12.0,
    seed: int = 42,
) -> List[SliceSample]:
    """Cut scenario runs into 30 s slices across BG populations.

    Real usage mixes quiet and stormy periods; sweeping the BG
    population reproduces that spread of per-slice BG-refault counts.
    A settle period after each launch keeps launch transients (massive
    first-eviction reclaim with few refaults) out of the slices.  FPS
    is normalised per scenario (to its content cap, rescaled to 60) so
    scenarios with different source frame rates are comparable.
    """
    spec = spec or huawei_p20()
    samples: List[SliceSample] = []
    for scenario in scenarios:
        fg_package = SCENARIOS.get(scenario, scenario)
        cap = min(60.0, APP_CATALOG[fg_package].content_fps)
        for bg_count in bg_counts:
            system = MobileSystem(
                spec=spec, policy=make_policy("LRU+CFS"), seed=seed + bg_count
            )
            system.install_apps(catalog_apps())
            rng = system.rng.stream("scenario-bg-selection")
            stage_background(system, fg_package, BgCase.APPS, bg_count, rng)
            record = system.launch(fg_package)
            system.run_until_complete(record, timeout_s=240.0)
            system.run(seconds=settle_s)

            stats = system.frame_engine.stats
            for _ in range(slices_per_scenario):
                system.reset_measurements()
                fps_mark = len(stats.fps_timeline)
                system.run(seconds=slice_seconds)
                timeline = stats.fps_timeline[fps_mark:]
                fps = sum(timeline) / len(timeline) if timeline else 0.0
                samples.append(
                    SliceSample(
                        scenario=scenario,
                        bg_refaults=system.vmstat.refault_bg,
                        reclaims=system.vmstat.pgsteal,
                        fps=fps * 60.0 / cap,
                    )
                )
    return samples


def figure2b(
    samples: Optional[List[SliceSample]] = None, **collect_kwargs
) -> List[DecileRow]:
    """Sort slices by BG-refault count and bucket into deciles."""
    if samples is None:
        samples = collect_slices(**collect_kwargs)
    ordered = sorted(samples, key=lambda s: s.bg_refaults)
    n = len(ordered)
    if n == 0:
        return []
    rows: List[DecileRow] = []
    buckets = min(10, n)
    for index in range(buckets):
        lo = index * n // buckets
        hi = (index + 1) * n // buckets
        bucket = ordered[lo:hi] or [ordered[-1]]
        rows.append(
            DecileRow(
                decile=f"[{index * 10}th,{(index + 1) * 10}th]",
                fps=sum(s.fps for s in bucket) / len(bucket),
                reclaims=sum(s.reclaims for s in bucket) / len(bucket),
                bg_refaults=sum(s.bg_refaults for s in bucket) / len(bucket),
            )
        )
    return rows


def format_figure2b(rows: Sequence[DecileRow]) -> str:
    lines = [
        "Figure 2(b): frame rate vs BG refaults (30 s slices, deciles)",
        f"{'decile':>14} | {'FPS':>6} | {'reclaims':>9} | {'BG refaults':>11}",
        "-" * 52,
    ]
    for row in rows:
        lines.append(
            f"{row.decile:>14} | {row.fps:>6.1f} | {row.reclaims:>9.0f} | "
            f"{row.bg_refaults:>11.0f}"
        )
    return "\n".join(lines)
