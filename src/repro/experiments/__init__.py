"""Experiment harnesses reproducing the paper's tables and figures.

Each module maps to one or more artifacts of the evaluation (see
DESIGN.md §3 for the full index):

* :mod:`repro.experiments.scenarios` — the four §2.2.1 scenario drivers
  plus the BG-case machinery (BG-null / BG-apps / BG-cputester /
  BG-memtester) shared by Figures 1, 2, 8, 9, 10 and Table 5.
* :mod:`repro.experiments.cpu_utilization` — Table 1.
* :mod:`repro.experiments.frame_rate` — Figures 1, 8, 9.
* :mod:`repro.experiments.refault_analysis` — Figure 2.
* :mod:`repro.experiments.user_study` — Figure 3.
* :mod:`repro.experiments.page_categorization` — Figure 4.
* :mod:`repro.experiments.reclaim_study` — Figure 10, Table 5.
* :mod:`repro.experiments.io_cpu` — §6.2.2.
* :mod:`repro.experiments.launch_study` — Figure 11.
* :mod:`repro.experiments.overhead` — §6.4.
"""

from repro.experiments.scenarios import (
    BgCase,
    ScenarioResult,
    SCENARIOS,
    average_results,
    run_scenario,
    run_scenario_rounds,
)

__all__ = [
    "BgCase",
    "ScenarioResult",
    "SCENARIOS",
    "run_scenario",
    "run_scenario_rounds",
    "average_results",
]
