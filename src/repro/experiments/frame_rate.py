"""Figures 1, 8 and 9: frame-rate experiments.

* **Figure 1** — FPS timelines of the four scenarios under BG-null,
  BG-apps, BG-cputester and BG-memtester (baseline kernel).
* **Figure 8** — FPS and RIA for the four schemes (LRU+CFS, UCSG,
  Acclaim, Ice) on the four scenarios, on both devices, with the
  memory-exhausting BG population (8 apps on P20, 6 on Pixel3).
* **Figure 9** — FPS and RIA averaged over the four scenarios as the
  number of cached BG applications sweeps F, 2B+F, ... 8B+F, baseline
  vs Ice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.devices.specs import DeviceSpec, huawei_p20, pixel3
from repro.experiments.scenarios import (
    BgCase,
    SCENARIOS,
    ScenarioResult,
    average_results,
    run_scenario,
    run_scenario_rounds,
)


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def figure1(
    scenario: str,
    spec: Optional[DeviceSpec] = None,
    seconds: float = 90.0,
    seed: int = 42,
    cases: Sequence[str] = BgCase.ALL,
) -> Dict[str, ScenarioResult]:
    """FPS timelines for one scenario under each BG case.

    Measurement starts at FG-launch completion (settle 0) so the
    BG-memtester transient — low early, recovering once reclaim settles
    — is visible, as in the paper's samples.
    """
    return {
        case: run_scenario(
            scenario,
            policy="LRU+CFS",
            spec=spec or huawei_p20(),
            bg_case=case,
            seconds=seconds,
            settle_s=0.0,
            seed=seed,
        )
        for case in cases
    }


def format_figure1(results: Dict[str, ScenarioResult]) -> str:
    lines = ["Figure 1: FPS per second under each BG case"]
    for case, result in results.items():
        series = " ".join(f"{v:2d}" for v in result.fps_timeline[:60])
        lines.append(f"{case:14s} avg={result.fps:5.1f}  [{series}]")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
SCHEMES = ("LRU+CFS", "UCSG", "Acclaim", "Ice")


@dataclass
class Figure8Cell:
    scenario: str
    device: str
    policy: str
    fps: float
    ria: float
    rounds: int


def figure8(
    specs: Optional[Sequence[DeviceSpec]] = None,
    scenarios: Sequence[str] = tuple(SCENARIOS),
    schemes: Sequence[str] = SCHEMES,
    seconds: float = 60.0,
    rounds: int = 2,
    base_seed: int = 42,
) -> List[Figure8Cell]:
    """FPS + RIA for every (device, scenario, scheme) combination."""
    specs = list(specs) if specs is not None else [pixel3(), huawei_p20()]
    cells: List[Figure8Cell] = []
    for spec in specs:
        for scenario in scenarios:
            for scheme in schemes:
                results = run_scenario_rounds(
                    scenario,
                    policy=scheme,
                    spec=spec,
                    bg_case=BgCase.APPS,
                    seconds=seconds,
                    rounds=rounds,
                    base_seed=base_seed,
                )
                avg = average_results(results)
                cells.append(
                    Figure8Cell(
                        scenario=scenario,
                        device=spec.name,
                        policy=scheme,
                        fps=avg["fps"],
                        ria=avg["ria"],
                        rounds=rounds,
                    )
                )
    return cells


def format_figure8(cells: Sequence[Figure8Cell]) -> str:
    lines = [
        "Figure 8: frame rate comparison (FPS / RIA)",
        f"{'device':>8} {'scenario':>9} | "
        + " | ".join(f"{scheme:>14}" for scheme in SCHEMES),
    ]
    by_key: Dict[tuple, Dict[str, Figure8Cell]] = {}
    for cell in cells:
        by_key.setdefault((cell.device, cell.scenario), {})[cell.policy] = cell
    for (device, scenario), row in by_key.items():
        entries = []
        for scheme in SCHEMES:
            cell = row.get(scheme)
            entries.append(
                f"{cell.fps:5.1f} / {cell.ria:4.0%}" if cell else " " * 14
            )
        lines.append(f"{device:>8} {scenario:>9} | " + " | ".join(entries))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 9
# ----------------------------------------------------------------------
@dataclass
class Figure9Point:
    config: str  # "F", "2B+F", ...
    bg_count: int
    policy: str
    fps: float
    ria: float


def figure9(
    spec: Optional[DeviceSpec] = None,
    counts: Optional[Sequence[int]] = None,
    schemes: Sequence[str] = ("LRU+CFS", "Ice"),
    scenarios: Sequence[str] = tuple(SCENARIOS),
    seconds: float = 45.0,
    base_seed: int = 42,
) -> List[Figure9Point]:
    """FPS/RIA (averaged over the four scenarios) vs BG population."""
    spec = spec or huawei_p20()
    if counts is None:
        max_count = 6 if spec.name == "Pixel3" else 8
        counts = list(range(0, max_count + 1, 2))
    points: List[Figure9Point] = []
    for count in counts:
        for scheme in schemes:
            fps_values: List[float] = []
            ria_values: List[float] = []
            for scenario in scenarios:
                result = run_scenario(
                    scenario,
                    policy=scheme,
                    spec=spec,
                    bg_case=BgCase.APPS if count > 0 else BgCase.NULL,
                    bg_count=count,
                    seconds=seconds,
                    seed=base_seed,
                )
                fps_values.append(result.fps)
                ria_values.append(result.ria)
            config = "F" if count == 0 else f"{count}B+F"
            points.append(
                Figure9Point(
                    config=config,
                    bg_count=count,
                    policy=scheme,
                    fps=sum(fps_values) / len(fps_values),
                    ria=sum(ria_values) / len(ria_values),
                )
            )
    return points


def format_figure9(points: Sequence[Figure9Point]) -> str:
    lines = [
        "Figure 9: frame rate vs number of BG applications",
        f"{'config':>7} | " + " | ".join(f"{p:>13}" for p in ("LRU+CFS", "Ice")),
    ]
    configs: Dict[str, Dict[str, Figure9Point]] = {}
    order: List[str] = []
    for point in points:
        if point.config not in configs:
            order.append(point.config)
        configs.setdefault(point.config, {})[point.policy] = point
    for config in order:
        row = configs[config]
        entries = []
        for scheme in ("LRU+CFS", "Ice"):
            point = row.get(scheme)
            entries.append(
                f"{point.fps:5.1f}/{point.ria:4.0%}" if point else " " * 13
            )
        lines.append(f"{config:>7} | " + " | ".join(entries))
    return "\n".join(lines)
