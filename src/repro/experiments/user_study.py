"""Figure 3: the month-long user study, reproduced as usage traces.

The paper instruments eight volunteers' phones (Table 2: P20, P40,
Pixel3, Pixel4 — two users each) and records page evictions/refaults
over a month.  Here each user is a generative usage trace: sessions of
launching/using/switching apps drawn from a per-user popularity
distribution, separated by idle gaps, replayed on that user's device
model.  Days are time-compressed (a configurable number of simulated
minutes represents one day) — the statistics of interest (refault
ratio, BG share of refaults) are rates, not absolute totals, so
compression preserves them; absolute per-day counts are reported in
simulated pages per compressed day.

Expected shapes (§3.1): ~39% of evicted pages are refaulted on average,
and more than 60% of refaults are caused by BG processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.catalog import catalog_apps
from repro.devices.specs import get_device
from repro.policies.registry import make_policy
from repro.system import MobileSystem


@dataclass(frozen=True)
class UserProfile:
    """One study volunteer (Table 2)."""

    user_id: str
    device: str
    seed: int
    # Mean seconds of FG usage per session and idle gap between sessions
    # (simulated, compressed).
    use_s: float = 20.0
    idle_s: float = 8.0
    # Zipf skew of app choice (higher = fewer favourite apps).
    app_skew: float = 0.9


# The paper's Table 2 population: two users per device.
STUDY_USERS: Tuple[UserProfile, ...] = (
    UserProfile("User-1", "P20", seed=101, use_s=22.0, idle_s=7.0, app_skew=0.8),
    UserProfile("User-2", "P20", seed=102, use_s=16.0, idle_s=10.0, app_skew=1.2),
    UserProfile("User-3", "P40", seed=103, use_s=25.0, idle_s=8.0, app_skew=0.7),
    UserProfile("User-4", "P40", seed=104, use_s=18.0, idle_s=12.0, app_skew=1.0),
    UserProfile("User-5", "Pixel3", seed=105, use_s=20.0, idle_s=9.0, app_skew=0.9),
    UserProfile("User-6", "Pixel3", seed=106, use_s=14.0, idle_s=11.0, app_skew=1.1),
    UserProfile("User-7", "Pixel4", seed=107, use_s=24.0, idle_s=7.0, app_skew=0.8),
    UserProfile("User-8", "Pixel4", seed=108, use_s=17.0, idle_s=10.0, app_skew=1.0),
)


@dataclass
class DayStats:
    """Per-(compressed-)day counters for one user."""

    day: int
    evicted: int
    refaulted: int
    refault_bg: int
    refault_fg: int

    @property
    def refault_ratio(self) -> float:
        return self.refaulted / self.evicted if self.evicted else 0.0

    @property
    def bg_share(self) -> float:
        return self.refault_bg / self.refaulted if self.refaulted else 0.0


@dataclass
class TimelinePoint:
    """Cumulative counters over time (Figure 3(b))."""

    time_s: float
    evicted: int
    refaulted: int
    refault_bg: int


@dataclass
class UserStudyResult:
    user: UserProfile
    days: List[DayStats] = field(default_factory=list)
    timeline: List[TimelinePoint] = field(default_factory=list)

    @property
    def total_evicted(self) -> int:
        return sum(day.evicted for day in self.days)

    @property
    def total_refaulted(self) -> int:
        return sum(day.refaulted for day in self.days)

    @property
    def refault_ratio(self) -> float:
        return self.total_refaulted / self.total_evicted if self.total_evicted else 0.0

    @property
    def bg_share(self) -> float:
        total = self.total_refaulted
        bg = sum(day.refault_bg for day in self.days)
        return bg / total if total else 0.0


class UsageTrace:
    """Drives one user's sessions on a live system."""

    def __init__(self, system: MobileSystem, user: UserProfile):
        self.system = system
        self.user = user
        self.rng = system.rng.stream(f"usage:{user.user_id}")
        # Per-user fixed app popularity order.
        self.app_order = [profile.package for profile in catalog_apps()]
        self.rng.shuffle(self.app_order)

    def pick_app(self) -> str:
        index = self.rng.zipf_index(len(self.app_order), skew=self.user.app_skew)
        return self.app_order[index]

    def one_session(self) -> None:
        """Launch an app, use it, go idle."""
        system = self.system
        package = self.pick_app()
        record = system.launch(package, drive_frames=True)
        system.run_until_complete(record, timeout_s=240.0)
        use = max(3.0, self.rng.expovariate(1.0 / self.user.use_s))
        system.run(seconds=min(use, 90.0))
        idle = max(1.0, self.rng.expovariate(1.0 / self.user.idle_s))
        system.run(seconds=min(idle, 45.0))


def simulate_user(
    user: UserProfile,
    days: int = 5,
    day_minutes: float = 2.0,
    timeline_interval_s: float = 30.0,
    policy: str = "LRU+CFS",
) -> UserStudyResult:
    """Run one user's compressed multi-day trace."""
    system = MobileSystem(
        spec=get_device(user.device), policy=make_policy(policy), seed=user.seed
    )
    system.install_apps(catalog_apps())
    trace = UsageTrace(system, user)
    result = UserStudyResult(user=user)

    def snapshot_timeline() -> None:
        vm = system.vmstat
        result.timeline.append(
            TimelinePoint(
                time_s=system.sim.now / 1000.0,
                evicted=vm.pgsteal,
                refaulted=vm.refault_total,
                refault_bg=vm.refault_bg,
            )
        )

    system.sim.every(timeline_interval_s * 1000.0, snapshot_timeline)

    day_ms = day_minutes * 60_000.0
    for day in range(days):
        day_end = system.sim.now + day_ms
        before = system.vmstat.copy()
        while system.sim.now < day_end:
            trace.one_session()
        delta = system.vmstat.delta(before)
        result.days.append(
            DayStats(
                day=day + 1,
                evicted=delta.pgsteal,
                refaulted=delta.refault_total,
                refault_bg=delta.refault_bg,
                refault_fg=delta.refault_fg,
            )
        )
    return result


def user_study(
    users: Sequence[UserProfile] = STUDY_USERS,
    days: int = 5,
    day_minutes: float = 2.0,
    policy: str = "LRU+CFS",
) -> List[UserStudyResult]:
    """Figure 3: run the whole study population."""
    return [
        simulate_user(user, days=days, day_minutes=day_minutes, policy=policy)
        for user in users
    ]


def format_figure3a(results: Sequence[UserStudyResult]) -> str:
    lines = [
        "Figure 3(a): evicted/refaulted pages per (compressed) day",
        f"{'user':>7} {'device':>7} | {'evicted/day':>11} | {'refault/day':>11} | "
        f"{'ratio':>6} | {'BG share':>8}",
        "-" * 64,
    ]
    for result in results:
        n_days = max(1, len(result.days))
        lines.append(
            f"{result.user.user_id:>7} {result.user.device:>7} | "
            f"{result.total_evicted // n_days:>11} | "
            f"{result.total_refaulted // n_days:>11} | "
            f"{result.refault_ratio:>6.0%} | {result.bg_share:>8.0%}"
        )
    ratios = [r.refault_ratio for r in results]
    shares = [r.bg_share for r in results]
    lines.append("-" * 64)
    lines.append(
        f"{'mean':>15} | {'':>11} | {'':>11} | "
        f"{sum(ratios) / len(ratios):>6.0%} | {sum(shares) / len(shares):>8.0%}"
    )
    return "\n".join(lines)


def format_figure3b(result: UserStudyResult, points: int = 20) -> str:
    lines = [
        f"Figure 3(b): cumulative evictions/refaults over time ({result.user.user_id}, "
        f"{result.user.device})",
        f"{'t(s)':>7} | {'evicted':>9} | {'refaulted':>9} | {'ratio':>6} | {'BG share':>8}",
        "-" * 50,
    ]
    timeline = result.timeline
    step = max(1, len(timeline) // points)
    for point in timeline[::step]:
        ratio = point.refaulted / point.evicted if point.evicted else 0.0
        share = point.refault_bg / point.refaulted if point.refaulted else 0.0
        lines.append(
            f"{point.time_s:>7.0f} | {point.evicted:>9} | {point.refaulted:>9} | "
            f"{ratio:>6.0%} | {share:>8.0%}"
        )
    return "\n".join(lines)
