"""§6.2.2: reduction of I/O and CPU pressure.

The paper counts I/O over a long mixed period (ten rounds of the four
scenarios): Ice reduces the I/O volume by ~9.2% (senseless
read-discard-read cycles of file pages disappear) and CPU utilization
drops from ~55.8% to ~47.3% (frozen BG tasks plus fewer
compression/decompression cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.devices.specs import DeviceSpec, huawei_p20
from repro.experiments.scenarios import (
    BgCase,
    SCENARIOS,
    run_scenario,
)


@dataclass
class PressureResult:
    policy: str
    io_pages: int
    io_read_pages: int
    io_write_pages: int
    zram_ops: int
    cpu_avg: float


def measure_pressure(
    policy: str,
    spec: Optional[DeviceSpec] = None,
    scenarios: Sequence[str] = tuple(SCENARIOS),
    seconds_per_scenario: float = 45.0,
    rounds: int = 2,
    base_seed: int = 42,
) -> PressureResult:
    """Accumulate I/O and CPU over repeated runs of all four scenarios."""
    io_read = io_write = zram_ops = 0
    cpu_values = []
    for round_index in range(rounds):
        for scenario in scenarios:
            result = run_scenario(
                scenario,
                policy=policy,
                spec=spec or huawei_p20(),
                bg_case=BgCase.APPS,
                seconds=seconds_per_scenario,
                seed=base_seed + 1000 * round_index,
            )
            io_read += result.io_read_pages
            io_write += result.io_write_pages
            zram_ops += result.pswpin + result.pswpout
            cpu_values.append(result.cpu_avg)
    return PressureResult(
        policy=policy,
        io_pages=io_read + io_write,
        io_read_pages=io_read,
        io_write_pages=io_write,
        zram_ops=zram_ops,
        cpu_avg=sum(cpu_values) / len(cpu_values),
    )


def compare_pressure(
    spec: Optional[DeviceSpec] = None,
    seconds_per_scenario: float = 45.0,
    rounds: int = 2,
    base_seed: int = 42,
) -> dict:
    """Baseline vs Ice I/O and CPU pressure (§6.2.2)."""
    baseline = measure_pressure(
        "LRU+CFS", spec=spec, seconds_per_scenario=seconds_per_scenario,
        rounds=rounds, base_seed=base_seed,
    )
    ice = measure_pressure(
        "Ice", spec=spec, seconds_per_scenario=seconds_per_scenario,
        rounds=rounds, base_seed=base_seed,
    )
    io_reduction = (
        1.0 - ice.io_pages / baseline.io_pages if baseline.io_pages else 0.0
    )
    return {
        "baseline": baseline,
        "ice": ice,
        "io_reduction": io_reduction,
        "cpu_baseline": baseline.cpu_avg,
        "cpu_ice": ice.cpu_avg,
    }


def format_pressure(outcome: dict) -> str:
    baseline: PressureResult = outcome["baseline"]
    ice: PressureResult = outcome["ice"]
    return "\n".join(
        [
            "§6.2.2: I/O and CPU pressure (four scenarios, repeated rounds)",
            f"{'':>10} | {'I/O pages':>10} | {'reads':>8} | {'writes':>8} | "
            f"{'zram ops':>9} | {'CPU avg':>8}",
            "-" * 66,
            f"{'LRU+CFS':>10} | {baseline.io_pages:>10} | {baseline.io_read_pages:>8} | "
            f"{baseline.io_write_pages:>8} | {baseline.zram_ops:>9} | {baseline.cpu_avg:>7.1%}",
            f"{'Ice':>10} | {ice.io_pages:>10} | {ice.io_read_pages:>8} | "
            f"{ice.io_write_pages:>8} | {ice.zram_ops:>9} | {ice.cpu_avg:>7.1%}",
            "-" * 66,
            f"I/O reduced by {outcome['io_reduction']:.1%}; CPU "
            f"{outcome['cpu_baseline']:.1%} -> {outcome['cpu_ice']:.1%}",
        ]
    )
