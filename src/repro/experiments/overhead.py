"""§6.4: overhead analysis of Ice.

* **§6.4.1 memory consumption** — the mapping table's byte-accurate
  accounting: 20 apps x 3 processes -> 13.8 KB maximum (64 B UID +
  3x(64 B PID + 1 B state + 64 B score) per app), bounded at 32 KB.
* **§6.4.2 performance overhead** — table indexing completes at the
  microsecond level (measured in *host* wall-clock here, since it is a
  real data-structure operation, not simulated), and thaw latency is
  tens of milliseconds per application.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.mapping_table import (
    MappingTable,
    PID_ENTRY_BYTES,
    SCORE_ENTRY_BYTES,
    STATE_ENTRY_BYTES,
    UID_ENTRY_BYTES,
)
from repro.kernel.freezer import THAW_LATENCY_MS_PER_PROCESS


@dataclass
class MemoryOverheadResult:
    apps: int
    processes_per_app: int
    measured_bytes: int
    paper_bytes: int
    bound_bytes: int


def mapping_table_overhead(
    apps: int = 20, processes_per_app: int = 3
) -> MemoryOverheadResult:
    """Reproduce §6.4.1's mapping-table size accounting."""
    table = MappingTable()
    pid_base = 5000
    for index in range(apps):
        pids = [pid_base + index * processes_per_app + j
                for j in range(processes_per_app)]
        table.register_app(uid=10000 + index, package=f"app{index}", pids=pids)
    paper_bytes = apps * UID_ENTRY_BYTES + apps * processes_per_app * (
        PID_ENTRY_BYTES + STATE_ENTRY_BYTES + SCORE_ENTRY_BYTES
    )
    return MemoryOverheadResult(
        apps=apps,
        processes_per_app=processes_per_app,
        measured_bytes=table.memory_bytes,
        paper_bytes=paper_bytes,
        bound_bytes=table.capacity_bytes,
    )


@dataclass
class IndexingOverheadResult:
    lookups: int
    total_seconds: float

    @property
    def us_per_lookup(self) -> float:
        return self.total_seconds / self.lookups * 1e6 if self.lookups else 0.0


def indexing_overhead(lookups: int = 100_000) -> IndexingOverheadResult:
    """§6.4.2: one table indexing completes at the microsecond level."""
    table = MappingTable()
    for index in range(20):
        table.register_app(
            uid=10000 + index,
            package=f"app{index}",
            pids=[6000 + index * 3 + j for j in range(3)],
        )
    pids = [6000 + i for i in range(60)]
    start = time.perf_counter()
    for i in range(lookups):
        uid = table.uid_of_pid(pids[i % len(pids)])
        if uid is not None:
            table.pids_of_uid(uid)
    elapsed = time.perf_counter() - start
    return IndexingOverheadResult(lookups=lookups, total_seconds=elapsed)


def thaw_latency_ms(processes: int = 3) -> float:
    """§6.4.2: thawing an application costs tens of milliseconds."""
    return THAW_LATENCY_MS_PER_PROCESS * processes


def format_overhead() -> str:
    mem = mapping_table_overhead()
    idx = indexing_overhead()
    return "\n".join(
        [
            "§6.4: overhead analysis",
            f"mapping table ({mem.apps} apps x {mem.processes_per_app} procs): "
            f"{mem.measured_bytes} B measured, {mem.paper_bytes} B by the paper's "
            f"accounting ({mem.paper_bytes / 1024:.1f} KB), bound {mem.bound_bytes} B",
            f"table indexing: {idx.us_per_lookup:.2f} us per lookup "
            f"({idx.lookups} lookups)",
            f"thaw latency: {thaw_latency_ms():.0f} ms per 3-process application",
        ]
    )
