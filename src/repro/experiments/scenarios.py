"""The four evaluation scenarios and the shared scenario runner.

§2.2.1's scenarios: S-A video call (WhatsApp), S-B short-form-video
switching (TikTok), S-C screen scrolling (Facebook), S-D mobile game
(PUBG Mobile).  Background configurations follow §2.2.2/§2.2.3:

* ``BG-null`` — the target app runs alone;
* ``BG-apps`` — N applications are cached in the BG first (8 on P20,
  6 on Pixel3 — the paper's memory-exhausting populations);
* ``BG-cputester`` — a CPU hog (~20% utilization) with a tiny memory
  footprint replaces the BG apps;
* ``BG-memtester`` — a memory hog with no refault behaviour replaces
  the BG apps.

``run_scenario`` builds a fresh system, stages the background case,
launches the scenario app, lets the system settle, then measures a
window: FPS timeline (per second, Figure 1's series), RIA, vmstat
deltas, CPU utilization and I/O counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence

from repro.android.app import reset_process_ids
from repro.apps.catalog import APP_CATALOG, SCENARIO_APPS, catalog_apps
from repro.apps.synthetic import cputester_profile, memtester_profile
from repro.devices.specs import MIB, DeviceSpec, huawei_p20
from repro.kernel.page import reset_page_ids
from repro.policies.registry import make_policy
from repro.sched.task import reset_task_ids
from repro.sim.rng import RngStream
from repro.system import MobileSystem
from repro.trace.sampler import Sampler
from repro.trace.tracer import SCENARIO_TID, SYSTEM_PID, Tracer

# Scenario id → foreground application (Table 3 / §2.2.1).
SCENARIOS: Dict[str, str] = dict(SCENARIO_APPS)

# The paper caches 8 BG apps on the P20 and 6 on the Pixel3 ("to fully
# fill the memory", §6.1 footnote).
DEFAULT_BG_COUNT = {"P20": 8, "Pixel3": 6, "P40": 8, "Pixel4": 8}


class _NullPhase:
    """No-op context manager standing in for tracer spans when disabled."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class BgCase:
    NULL = "bg-null"
    APPS = "bg-apps"
    CPUTESTER = "bg-cputester"
    MEMTESTER = "bg-memtester"

    ALL = (NULL, APPS, CPUTESTER, MEMTESTER)


@dataclass
class ScenarioResult:
    """Measurements from one scenario run's window."""

    scenario: str
    policy: str
    device: str
    bg_case: str
    bg_count: int
    seed: int
    fps_timeline: List[int] = field(default_factory=list)
    fps: float = 0.0
    ria: float = 0.0
    frames_completed: int = 0
    frames_dropped: int = 0
    reclaim: int = 0
    refault: int = 0
    refault_fg: int = 0
    refault_bg: int = 0
    pswpin: int = 0
    pswpout: int = 0
    io_read_pages: int = 0
    io_write_pages: int = 0
    direct_reclaims: int = 0
    direct_reclaim_stall_ms: float = 0.0
    cpu_avg: float = 0.0
    cpu_peak: float = 0.0
    lmk_kills: int = 0
    frozen_apps: int = 0
    launch_ms: float = 0.0
    events_executed: int = 0
    # Final PSI state (system-wide pressure files as dicts).
    psi: Dict[str, object] = field(default_factory=dict)
    # Attached when the run was traced/sampled (not part of the scalar
    # result; excluded from to_dict()).
    sampler: Optional[Sampler] = field(default=None, repr=False, compare=False)
    # The live system, for post-run introspection (procfs dumps,
    # determinism checks); excluded from to_dict().
    system: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def bg_refault_share(self) -> float:
        return self.refault_bg / self.refault if self.refault else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable scalar view (for ``--json`` and CI diffing)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            if f.name in ("sampler", "system"):
                continue
            out[f.name] = getattr(self, f.name)
        out["bg_refault_share"] = self.bg_refault_share
        return out


def background_packages(
    fg_package: str, count: int, rng: RngStream
) -> List[str]:
    """Pick ``count`` random BG apps from the catalog (never the FG app).

    Mirrors §6.1: "re-select the BG applications from Table 3 randomly"
    each round.
    """
    candidates = [name for name in APP_CATALOG if name != fg_package]
    rng.shuffle(candidates)
    return candidates[:count]


def _memtester_mb(spec: DeviceSpec, fg_package: str) -> int:
    """Size memtester to occupy as much memory as the BG-apps case.

    A cold launch makes ~90% of the virtual footprint resident, so the
    virtual size is scaled up accordingly; the target is to leave only
    ~1.5 high-watermarks of slack once the foreground app is resident
    ("more than 90% of the memory space is unavailable", §2.2.3).
    """
    fg_pages = APP_CATALOG[fg_package].footprint_pages(spec)
    # No slack beyond the foreground app itself: the FG app's working-set
    # growth must evict memtester pages, producing the transient reclaim
    # phase of Figure 1's yellow line.
    resident_target = spec.managed_pages - 0.35 * fg_pages
    virtual_pages = int(resident_target / 0.97)
    virtual_pages = max(virtual_pages, spec.managed_pages // 4)
    return max(64, virtual_pages * spec.memory_scale * 4096 // MIB)


def stage_background(
    system: MobileSystem,
    fg_package: str,
    bg_case: str,
    bg_count: int,
    rng: RngStream,
) -> List[str]:
    """Launch-and-cache the configured background population."""
    if bg_case == BgCase.NULL:
        return []
    if bg_case == BgCase.APPS:
        packages = background_packages(fg_package, bg_count, rng)
    elif bg_case == BgCase.CPUTESTER:
        profile = cputester_profile(cores=system.spec.cores)
        system.install_app(profile)
        packages = [profile.package]
    elif bg_case == BgCase.MEMTESTER:
        profile = memtester_profile(_memtester_mb(system.spec, fg_package))
        system.install_app(profile)
        packages = [profile.package]
    else:
        raise ValueError(f"unknown bg case {bg_case!r}")
    for package in packages:
        record = system.launch(package, drive_frames=False)
        system.run_until_complete(record, timeout_s=240.0)
        system.run(seconds=1.0)
    return packages


def run_scenario(
    scenario: str,
    policy: str = "LRU+CFS",
    spec: Optional[DeviceSpec] = None,
    bg_case: str = BgCase.APPS,
    bg_count: Optional[int] = None,
    seconds: float = 60.0,
    settle_s: float = 5.0,
    seed: int = 42,
    tracer: Optional[Tracer] = None,
    sample_interval_ms: Optional[float] = None,
    on_sample=None,
) -> ScenarioResult:
    """Stage and measure one scenario run.

    ``scenario`` is an id from :data:`SCENARIOS` ("S-A".."S-D") or a
    package name directly.  Passing a :class:`Tracer` wires tracepoints
    through the whole stack for this run; ``sample_interval_ms``
    additionally attaches an aligned time-series :class:`Sampler`
    (returned on ``result.sampler``), and ``on_sample(now_ms, row)`` is
    invoked for every sample as it lands (live `repro watch` output).
    """
    # Restart the global id sequences so this run's ids are a pure
    # function of its inputs: a cell run 5th in a serial matrix and the
    # same cell run alone in a pool worker produce identical streams.
    reset_page_ids()
    reset_task_ids()
    reset_process_ids()
    spec = spec or huawei_p20()
    fg_package = SCENARIOS.get(scenario, scenario)
    if bg_count is None:
        bg_count = DEFAULT_BG_COUNT.get(spec.name, 8)
    system = MobileSystem(
        spec=spec, policy=make_policy(policy), seed=seed, tracer=tracer
    )
    system.install_apps(catalog_apps())
    rng = system.rng.stream("scenario-bg-selection")

    sampler: Optional[Sampler] = None
    if sample_interval_ms is not None:
        sampler = Sampler(system, interval_ms=sample_interval_ms, tracer=tracer)
        sampler.on_sample = on_sample
        sampler.start()

    def phase(name: str):
        if tracer is None:
            return _NULL_PHASE
        return tracer.span(name, SYSTEM_PID, SCENARIO_TID, cat="scenario")

    with phase("stage-background"):
        stage_background(system, fg_package, bg_case, bg_count, rng)

    with phase("launch-foreground"):
        record = system.launch(fg_package)
        system.run_until_complete(record, timeout_s=240.0)

    with phase("settle"):
        system.run(seconds=settle_s)

    system.reset_measurements()
    stats = system.frame_engine.stats
    mark = (
        stats.completed,
        stats.dropped,
        stats.alerts,
        len(stats.fps_timeline),
    )
    with phase("measure"):
        system.run(seconds=seconds)
    if sampler is not None:
        sampler.stop()

    vm = system.vmstat
    completed = stats.completed - mark[0]
    dropped = stats.dropped - mark[1]
    alerts = stats.alerts - mark[2]
    timeline = stats.fps_timeline[mark[3] :]
    fps = sum(timeline) / len(timeline) if timeline else 0.0
    frozen = 0
    if policy == "Ice":
        frozen = system.policy.frozen_app_count

    return ScenarioResult(
        scenario=scenario,
        policy=policy,
        device=spec.name,
        bg_case=bg_case,
        bg_count=bg_count if bg_case == BgCase.APPS else 0,
        seed=seed,
        fps_timeline=timeline,
        fps=fps,
        ria=alerts / (completed + dropped) if (completed + dropped) else 0.0,
        frames_completed=completed,
        frames_dropped=dropped,
        reclaim=vm.pgsteal,
        refault=vm.refault_total,
        refault_fg=vm.refault_fg,
        refault_bg=vm.refault_bg,
        pswpin=vm.pswpin,
        pswpout=vm.pswpout,
        io_read_pages=system.flash.stats.read_pages,
        io_write_pages=system.flash.stats.write_pages,
        direct_reclaims=vm.direct_reclaim_entries,
        direct_reclaim_stall_ms=vm.direct_reclaim_stall_ms,
        cpu_avg=system.sched.stats.average_utilization,
        cpu_peak=system.sched.stats.peak_utilization,
        lmk_kills=system.lmk.kill_count,
        frozen_apps=frozen,
        launch_ms=record.latency_ms,
        events_executed=system.sim.events_executed,
        psi=system.psi.as_dict(),
        sampler=sampler,
        system=system,
    )


def run_scenario_rounds(
    scenario: str,
    policy: str = "LRU+CFS",
    spec: Optional[DeviceSpec] = None,
    bg_case: str = BgCase.APPS,
    bg_count: Optional[int] = None,
    seconds: float = 60.0,
    rounds: int = 3,
    base_seed: int = 42,
) -> List[ScenarioResult]:
    """The paper's methodology: repeat with re-randomised BG sets.

    Each round reboots the device (fresh system) and re-selects the
    BG applications (§6.1).
    """
    return [
        run_scenario(
            scenario,
            policy=policy,
            spec=spec,
            bg_case=bg_case,
            bg_count=bg_count,
            seconds=seconds,
            seed=base_seed + 1000 * round_index,
        )
        for round_index in range(rounds)
    ]


def average_results(results: Sequence[ScenarioResult]) -> Dict[str, float]:
    """Average the scalar measurements of several rounds."""
    if not results:
        raise ValueError("no results to average")
    n = len(results)
    return {
        "fps": sum(r.fps for r in results) / n,
        "ria": sum(r.ria for r in results) / n,
        "reclaim": sum(r.reclaim for r in results) / n,
        "refault": sum(r.refault for r in results) / n,
        "refault_fg": sum(r.refault_fg for r in results) / n,
        "refault_bg": sum(r.refault_bg for r in results) / n,
        "cpu_avg": sum(r.cpu_avg for r in results) / n,
        "io_read_pages": sum(r.io_read_pages for r in results) / n,
        "io_write_pages": sum(r.io_write_pages for r in results) / n,
        "lmk_kills": sum(r.lmk_kills for r in results) / n,
        "frozen_apps": sum(r.frozen_apps for r in results) / n,
    }
