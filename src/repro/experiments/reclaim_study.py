"""Figure 10 and Table 5: reclaim/refault reduction studies.

* **Figure 10** — the number of refaulted and reclaimed pages for
  LRU+CFS (L), UCSG (U), Acclaim (A) and Ice (I) across the four
  scenarios on the P20 model.  Expected shape: Ice cuts refaults by
  ~40-58% per scenario and reclaims to ~70% of the baseline; UCSG's
  reduction is roughly half of Ice's; Acclaim sometimes *increases*
  refaults.
* **Table 5** — power-manager freezing (fixed-cycle, energy-driven,
  memory-oblivious) vs Ice.  Expected: the power manager helps
  (reclaims −22%, refaults −33% vs baseline) but less than Ice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.devices.specs import DeviceSpec, huawei_p20
from repro.experiments.scenarios import (
    BgCase,
    SCENARIOS,
    average_results,
    run_scenario_rounds,
)


@dataclass
class ReclaimCell:
    scenario: str
    policy: str
    refault: float
    reclaim: float


def reclaim_refault_matrix(
    schemes: Sequence[str],
    spec: Optional[DeviceSpec] = None,
    scenarios: Sequence[str] = tuple(SCENARIOS),
    seconds: float = 60.0,
    rounds: int = 2,
    base_seed: int = 42,
) -> List[ReclaimCell]:
    """Refault/reclaim counts for each (scenario, scheme) pair."""
    spec = spec or huawei_p20()
    cells: List[ReclaimCell] = []
    for scenario in scenarios:
        for scheme in schemes:
            results = run_scenario_rounds(
                scenario,
                policy=scheme,
                spec=spec,
                bg_case=BgCase.APPS,
                seconds=seconds,
                rounds=rounds,
                base_seed=base_seed,
            )
            avg = average_results(results)
            cells.append(
                ReclaimCell(
                    scenario=scenario,
                    policy=scheme,
                    refault=avg["refault"],
                    reclaim=avg["reclaim"],
                )
            )
    return cells


def figure10(**kwargs) -> List[ReclaimCell]:
    """Figure 10: L / U / A / I across the four scenarios."""
    return reclaim_refault_matrix(
        schemes=("LRU+CFS", "UCSG", "Acclaim", "Ice"), **kwargs
    )


def table5(**kwargs) -> List[ReclaimCell]:
    """Table 5: power manager vs Ice."""
    return reclaim_refault_matrix(schemes=("PowerManager", "Ice"), **kwargs)


def format_matrix(cells: Sequence[ReclaimCell], title: str) -> str:
    schemes: List[str] = []
    for cell in cells:
        if cell.policy not in schemes:
            schemes.append(cell.policy)
    lines = [
        title,
        f"{'scenario':>9} | "
        + " | ".join(f"{scheme:>22}" for scheme in schemes),
        f"{'':>9} | " + " | ".join(f"{'refault / reclaim':>22}" for _ in schemes),
        "-" * (12 + 25 * len(schemes)),
    ]
    by_scenario: Dict[str, Dict[str, ReclaimCell]] = {}
    order: List[str] = []
    for cell in cells:
        if cell.scenario not in by_scenario:
            order.append(cell.scenario)
        by_scenario.setdefault(cell.scenario, {})[cell.policy] = cell
    for scenario in order:
        row = by_scenario[scenario]
        entries = []
        for scheme in schemes:
            cell = row.get(scheme)
            entries.append(
                f"{cell.refault:>9.0f} / {cell.reclaim:>10.0f}" if cell else " " * 22
            )
        lines.append(f"{scenario:>9} | " + " | ".join(entries))
    return "\n".join(lines)


def reduction_summary(cells: Sequence[ReclaimCell], baseline: str = "LRU+CFS") -> str:
    """Per-scheme refault/reclaim relative to the baseline scheme."""
    by_scenario: Dict[str, Dict[str, ReclaimCell]] = {}
    for cell in cells:
        by_scenario.setdefault(cell.scenario, {})[cell.policy] = cell
    schemes = sorted({cell.policy for cell in cells} - {baseline})
    lines = [f"reduction vs {baseline}:"]
    for scheme in schemes:
        refault_ratios = []
        reclaim_ratios = []
        for row in by_scenario.values():
            base = row.get(baseline)
            cell = row.get(scheme)
            if base is None or cell is None or base.refault == 0:
                continue
            refault_ratios.append(cell.refault / base.refault)
            reclaim_ratios.append(cell.reclaim / base.reclaim if base.reclaim else 0)
        if not refault_ratios:
            continue
        lines.append(
            f"  {scheme:>12}: refaults at "
            f"{sum(refault_ratios) / len(refault_ratios):.0%} of baseline, "
            f"reclaims at {sum(reclaim_ratios) / len(reclaim_ratios):.0%}"
        )
    return "\n".join(lines)
