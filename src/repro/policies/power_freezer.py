"""Power-manager-style process freezing (§6.2.1, Table 5).

Commercial smartphones ship freezing features in their *power*
managers (MeiZu Flyme smart freeze, Nubia's patent, SuperFreezZ).
These are energy-oriented, not memory-oriented:

* targets are chosen by recent CPU (energy) consumption, not by
  refault behaviour;
* the freeze/thaw cycle is fixed — intensity does not react to memory
  pressure;
* freezing is applied even when memory pressure is low;
* many vendors disable freezing entirely while the device charges.

The paper shows this helps (reclaims −22.4%, refaults −33.5% vs the
baseline) but is clearly weaker than Ice's memory-aware design.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.android.app import Application, AppState
from repro.policies.base import ManagementPolicy


class PowerFreezerPolicy(ManagementPolicy):
    """Fixed-cycle, energy-driven BG app freezing."""

    name = "PowerManager"
    description = "energy-oriented fixed-cycle background freezing"

    # Fixed heartbeat: freeze 15 s, thaw 5 s — memory-oblivious.
    FREEZE_S = 15.0
    THAW_S = 5.0
    # An app is "energy hungry" when its tasks consumed more than this
    # much CPU during the previous observation cycle (ms): only the
    # heavy consumers are frozen, which is why the paper finds the
    # power manager's refault inhibition clearly weaker than Ice's.
    ENERGY_THRESHOLD_CPU_MS = 30.0

    def __init__(self) -> None:
        super().__init__()
        self.frozen_uids: Set[int] = set()
        self._cpu_snapshot: Dict[int, float] = {}
        self.freeze_cycles = 0

    def attach(self, system) -> None:
        super().attach(system)
        system.sim.schedule(self.THAW_S * 1000.0, self._begin_freeze)

    # ------------------------------------------------------------------
    def _app_cpu_ms(self, app: Application) -> float:
        total = 0.0
        for process in app.processes:
            for task in process.tasks:
                total += task.cpu_ms_total
        return total

    def _begin_freeze(self) -> None:
        system = self.system
        if system is None:
            return
        if system.charging:
            # Vendors skip freezing on the charger; try again next cycle.
            self._thaw_all()
            system.sim.schedule(
                (self.FREEZE_S + self.THAW_S) * 1000.0, self._begin_freeze
            )
            return
        self.freeze_cycles += 1
        for app in system.apps.values():
            if not app.alive or app.state is not AppState.CACHED:
                continue
            if app.perceptible:
                continue
            used = self._app_cpu_ms(app) - self._cpu_snapshot.get(app.uid, 0.0)
            if used < self.ENERGY_THRESHOLD_CPU_MS:
                continue  # not energy-hungry: left alone
            self.frozen_uids.add(app.uid)
            for pid in app.pids:
                system.freezer.freeze(pid)
        system.sim.schedule(self.FREEZE_S * 1000.0, self._begin_thaw)

    def _begin_thaw(self) -> None:
        system = self.system
        if system is None:
            return
        self._thaw_all()
        # Snapshot CPU so the next cycle measures fresh consumption.
        for app in system.apps.values():
            if app.alive:
                self._cpu_snapshot[app.uid] = self._app_cpu_ms(app)
        system.sim.schedule(self.THAW_S * 1000.0, self._begin_freeze)

    def _thaw_all(self) -> None:
        system = self.system
        for uid in list(self.frozen_uids):
            app = next((a for a in system.apps.values() if a.uid == uid), None)
            if app is not None:
                for pid in app.pids:
                    system.freezer.thaw(pid)
        self.frozen_uids.clear()

    # ------------------------------------------------------------------
    def before_launch(self, app: Application) -> float:
        """Power managers also thaw before display."""
        latency = 0.0
        if app.alive and app.uid in self.frozen_uids:
            for pid in app.pids:
                latency += self.system.freezer.thaw(pid)
            self.frozen_uids.discard(app.uid)
        return latency

    def on_app_killed(self, app: Application) -> None:
        self.frozen_uids.discard(app.uid)
        self._cpu_snapshot.pop(app.uid, None)
