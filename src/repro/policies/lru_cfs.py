"""LRU + CFS: the stock-kernel baseline (§5.2).

LRU is the default reclaim algorithm (inactive pages are reclaimed in
second-chance order) and CFS treats foreground and background processes
fairly.  Both are exactly the substrate defaults, so this policy
installs no hooks — it exists to make the baseline explicit and
nameable in experiment configurations.
"""

from __future__ import annotations

from repro.policies.base import ManagementPolicy


class LruCfsPolicy(ManagementPolicy):
    """The unmodified Linux/Android memory and process management."""

    name = "LRU+CFS"
    description = "stock kernel LRU reclaim + completely fair scheduler"
