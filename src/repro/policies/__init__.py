"""Memory/process management policies: the paper's four evaluated schemes.

* ``lru_cfs`` — the stock kernel baseline (LRU reclaim + CFS).
* ``ucsg`` — user-centric scheduling: FG tasks get priority (DAC'14).
* ``acclaim`` — FG-aware eviction: BG pages reclaimed preferentially
  (USENIX ATC'20).
* ``ice`` — the paper's contribution (re-exported from
  :mod:`repro.core`): refault-driven freezing + memory-aware thawing.
* ``power_freezer`` — power-manager-style freezing for Table 5.
"""

from repro.policies.base import ManagementPolicy
from repro.policies.lru_cfs import LruCfsPolicy
from repro.policies.ucsg import UcsgPolicy
from repro.policies.acclaim import AcclaimPolicy
from repro.policies.power_freezer import PowerFreezerPolicy
from repro.policies.registry import available_policies, make_policy

__all__ = [
    "ManagementPolicy",
    "LruCfsPolicy",
    "UcsgPolicy",
    "AcclaimPolicy",
    "PowerFreezerPolicy",
    "available_policies",
    "make_policy",
]
