"""Policy registry: name → factory for all evaluated schemes."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List

from repro.policies.base import ManagementPolicy
from repro.policies.lru_cfs import LruCfsPolicy
from repro.policies.ucsg import UcsgPolicy
from repro.policies.acclaim import AcclaimPolicy
from repro.policies.power_freezer import PowerFreezerPolicy


def _ice_factory() -> ManagementPolicy:
    # Imported lazily to avoid a circular import at package load time.
    from repro.core.ice import IcePolicy

    return IcePolicy()


_REGISTRY: Dict[str, Callable[[], ManagementPolicy]] = {
    "LRU+CFS": LruCfsPolicy,
    "UCSG": UcsgPolicy,
    "Acclaim": AcclaimPolicy,
    "Ice": _ice_factory,
    "PowerManager": PowerFreezerPolicy,
}


def available_policies() -> List[str]:
    """Names accepted by :func:`make_policy`."""
    return list(_REGISTRY)


def register_policy(name: str, factory: Callable[[], ManagementPolicy]) -> None:
    """Register an out-of-tree policy (experiments, ablations).

    Raises ``ValueError`` on a duplicate name — silently shadowing a
    paper policy would corrupt every comparison table.
    """
    if name in _REGISTRY:
        raise ValueError(f"policy {name!r} already registered")
    _REGISTRY[name] = factory


def unregister_policy(name: str) -> None:
    """Remove a previously registered policy.

    Raises ``KeyError`` for names that were never registered, so a
    typo'd cleanup is loud instead of silently leaving the real
    registration behind.
    """
    if name not in _REGISTRY:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"policy {name!r} is not registered; known: {known}")
    del _REGISTRY[name]


@contextmanager
def temporary_policy(
    name: str, factory: Callable[[], ManagementPolicy]
) -> Iterator[str]:
    """Register ``factory`` under ``name`` for the duration of a block.

    The registration is removed on exit even if the block raises, so
    tests exercising out-of-tree policies cannot leak entries across
    the suite (a leaked entry makes the *next* in-process registration
    of the same name explode with the duplicate-name ``ValueError``).
    """
    register_policy(name, factory)
    try:
        yield name
    finally:
        _REGISTRY.pop(name, None)


def make_policy(name: str) -> ManagementPolicy:
    """Instantiate a fresh policy by its paper name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
    return factory()
