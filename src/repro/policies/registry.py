"""Policy registry: name → factory for all evaluated schemes."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.policies.base import ManagementPolicy
from repro.policies.lru_cfs import LruCfsPolicy
from repro.policies.ucsg import UcsgPolicy
from repro.policies.acclaim import AcclaimPolicy
from repro.policies.power_freezer import PowerFreezerPolicy


def _ice_factory() -> ManagementPolicy:
    # Imported lazily to avoid a circular import at package load time.
    from repro.core.ice import IcePolicy

    return IcePolicy()


_REGISTRY: Dict[str, Callable[[], ManagementPolicy]] = {
    "LRU+CFS": LruCfsPolicy,
    "UCSG": UcsgPolicy,
    "Acclaim": AcclaimPolicy,
    "Ice": _ice_factory,
    "PowerManager": PowerFreezerPolicy,
}


def available_policies() -> List[str]:
    """Names accepted by :func:`make_policy`."""
    return list(_REGISTRY)


def register_policy(name: str, factory: Callable[[], ManagementPolicy]) -> None:
    """Register an out-of-tree policy (experiments, ablations).

    Raises ``ValueError`` on a duplicate name — silently shadowing a
    paper policy would corrupt every comparison table.
    """
    if name in _REGISTRY:
        raise ValueError(f"policy {name!r} already registered")
    _REGISTRY[name] = factory


def make_policy(name: str) -> ManagementPolicy:
    """Instantiate a fresh policy by its paper name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
    return factory()
