"""UCSG: user-centric energy-efficient scheduling (DAC'14, §5.2).

UCSG observes that the foreground application dominates the user's
attention and redesigns the priority scheme: processes belonging to the
FG application get a higher scheduling priority, background processes a
lower one.  It is purely a *process* management scheme — it does not
inhibit the BG processes that cause refaults, which is why the paper
finds its benefit limited (BG refaults drop only ~24% vs the baseline).
"""

from __future__ import annotations

from typing import Optional

from repro.android.app import Application
from repro.policies.base import ManagementPolicy
from repro.sched.task import Task


class UcsgPolicy(ManagementPolicy):
    """FG-priority-boost scheduling."""

    name = "UCSG"
    description = "foreground tasks promoted, background tasks demoted"

    # Effective-weight multipliers.
    FG_BOOST = 4.0
    BG_DEMOTE = 0.35

    # Demoted BG tasks are packed onto a single little core (priority
    # reduction on big.LITTLE clusters concentrates them), which is the
    # mechanism by which UCSG also reduces BG page traffic (~24% fewer
    # refaults than the baseline in the paper's measurements).
    BG_CONCURRENCY = 1

    def attach(self, system) -> None:
        super().attach(system)
        system.sched.bg_slot_limit = self.BG_CONCURRENCY

    def detach(self) -> None:
        if self.system is not None:
            self.system.sched.bg_slot_limit = None
        super().detach()

    def sched_pick_key(self, task: Task):
        """FG tasks sort strictly ahead of BG tasks; CFS order within."""
        process = task.process
        if process is None:
            return (1, task.vruntime)  # kernel/framework: normal class
        if process.app.state.value == "foreground":
            return (0, task.vruntime)
        return (2, task.vruntime)

    def on_foreground_change(
        self, app: Application, previous: Optional[Application]
    ) -> None:
        """Re-apply boosts when the foreground app changes."""
        for task in self.system.sched.tasks.values():
            process = task.process
            if process is None:
                task.boost = 1.0
            elif process.app is app:
                task.boost = self.FG_BOOST
            else:
                task.boost = self.BG_DEMOTE

    def on_app_started(self, app: Application) -> None:
        fg = self.system.foreground_app
        for process in app.processes:
            for task in process.tasks:
                task.boost = self.FG_BOOST if app is fg else self.BG_DEMOTE
