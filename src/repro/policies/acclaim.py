"""Acclaim: foreground-aware memory reclaim (USENIX ATC'20, §5.2).

Acclaim's FAE (foreground-aware eviction) protects pages belonging to
the foreground application during reclaim: background pages are
reclaimed preferentially *even when their activity is higher than some
foreground pages*.  This effectively eliminates FG refaults — and, as
the paper shows, can *increase* BG refaults (Figure 8's S-C on Pixel3
regression, §6.1), because background apps lose pages they still
touch.
"""

from __future__ import annotations

from repro.kernel.page import Page
from repro.policies.base import ManagementPolicy


class AcclaimPolicy(ManagementPolicy):
    """FG-aware, size-sensitive reclaim (FAE component)."""

    name = "Acclaim"
    description = "foreground pages protected from reclaim; BG pages evicted first"

    def reclaim_protect(self, page: Page) -> bool:
        """Shield FG pages from the reclaim scan."""
        owner = page.owner
        app = getattr(owner, "app", None)
        if app is None:
            return False
        fg = self.system.foreground_app
        return app is fg
