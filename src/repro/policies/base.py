"""Policy interface: the hooks a management scheme can install.

A policy plugs into three substrate seams:

* **Reclaim** — ``reclaim_protect(page)`` lets a policy veto eviction of
  a page during the LRU scan (Acclaim protects FG pages).
* **Scheduling** — ``sched_pick_key(task)`` reorders run-queue selection
  (UCSG boosts FG tasks).
* **Events** — foreground switches, app starts/kills, launch
  preparation (Ice's thaw-on-launch returns a latency), and the
  refault-event bus (Ice's RPF subscribes there via its own wiring).

The base class installs nothing, which *is* the LRU+CFS baseline.
"""

from __future__ import annotations

from typing import Optional

from repro.android.app import Application
from repro.kernel.page import Page
from repro.sched.task import Task


class ManagementPolicy:
    """Base policy: stock LRU reclaim + stock CFS scheduling."""

    name = "base"
    description = "no-op policy hooks"

    def __init__(self) -> None:
        self.system = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Install hooks into a freshly-built system.  Subclasses that
        override must call ``super().attach(system)`` first."""
        self.system = system

    def detach(self) -> None:
        self.system = None

    # ------------------------------------------------------------------
    # Substrate hooks (overridden by concrete policies)
    # ------------------------------------------------------------------
    def reclaim_protect(self, page: Page) -> bool:
        """Return True to shield ``page`` from this reclaim scan."""
        return False

    def sched_pick_key(self, task: Task) -> float:
        """Run-queue ordering key (smaller runs first)."""
        return task.vruntime

    # ------------------------------------------------------------------
    # Framework events
    # ------------------------------------------------------------------
    def before_launch(self, app: Application) -> float:
        """Prepare ``app`` for launching; returns extra latency in ms
        (Ice thaws frozen processes here)."""
        return 0.0

    def on_foreground_change(
        self, app: Application, previous: Optional[Application]
    ) -> None:
        """A new application took the foreground."""

    def on_app_started(self, app: Application) -> None:
        """Processes of ``app`` were just spawned (cold launch)."""

    def on_app_killed(self, app: Application) -> None:
        """``app`` was killed (LMK or explicit)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
