"""Namespaced deterministic random-number streams.

Every stochastic component in the simulator draws from its own
:class:`RngStream`, derived from a single experiment seed plus a string
namespace.  This keeps experiments reproducible *and* composable: adding
a new component (with a new namespace) does not shift the draws seen by
existing components, so A/B comparisons between policies stay paired.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, namespace: str) -> int:
    """Derive a child seed from ``base_seed`` and a ``namespace`` string.

    Uses SHA-256 so the mapping is stable across Python versions and
    process invocations (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{base_seed}:{namespace}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A seeded random stream bound to one component."""

    def __init__(self, base_seed: int, namespace: str):
        self.namespace = namespace
        self.seed = derive_seed(base_seed, namespace)
        self._rng = random.Random(self.seed)
        # Hot draws are rebound as instance attributes so the wrapper
        # frame below is skipped; the underlying Random produces the
        # same sequence either way.
        self.random = self._rng.random
        self.choice = self._rng.choice
        self.uniform = self._rng.uniform
        self.expovariate = self._rng.expovariate
        # choice() is seq[_randbelow(len(seq))]; the tightest sampling
        # loops index with _randbelow directly (same draw sequence,
        # one frame less per pick).
        self.randbelow = self._rng._randbelow

    # Thin, explicit wrappers: the full Random API is intentionally not
    # exposed so components stay easy to audit for stochastic behaviour.
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(population, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Draw an index in ``[0, n)`` with a Zipf-like bias toward 0.

        Implemented via inverse-power transform of a uniform draw; exact
        Zipf normalization is unnecessary for workload modeling.
        """
        if n <= 0:
            raise ValueError("zipf_index needs a positive population size")
        u = self._rng.random()
        # Map u in (0,1] through u^(1/(1+skew)) to bias small indices.
        idx = int(n * (u ** (1.0 + skew)))
        return min(idx, n - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStream {self.namespace!r} seed={self.seed}>"


class RngRegistry:
    """Factory handing out one :class:`RngStream` per namespace."""

    def __init__(self, base_seed: int):
        self.base_seed = base_seed
        self._streams: Dict[str, RngStream] = {}

    def stream(self, namespace: str) -> RngStream:
        """Return the stream for ``namespace``, creating it on first use."""
        existing = self._streams.get(namespace)
        if existing is None:
            existing = RngStream(self.base_seed, namespace)
            self._streams[namespace] = existing
        return existing

    def namespaces(self) -> List[str]:
        return sorted(self._streams)
