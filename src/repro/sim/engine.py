"""Discrete-event simulation engine.

Simulated time is measured in **milliseconds** (float).  The engine keeps
a binary heap of pending :class:`Event` objects ordered by ``(time,
seq)``; ``seq`` is a monotonically increasing integer that makes the
execution order of same-timestamp events deterministic (FIFO in
scheduling order).

Typical usage::

    sim = Simulator()
    sim.schedule(10.0, lambda: print("ten ms in"))
    sim.every(16.67, on_vsync)          # periodic callback
    sim.run_until(1_000.0)              # advance one simulated second

The heap stores ``(time, seq, event)`` tuples rather than bare
:class:`Event` objects: tuple comparison is C-level, so no Python
``__lt__`` frame runs on any heap sift.  ``event.time``/``event.seq``
always mirror the tuple (both are updated before every push).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulation engine."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be
    cancelled with :meth:`Simulator.cancel` (cancellation is lazy: the
    event stays in the heap but is skipped when popped).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "popped")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.popped = False

    def __lt__(self, other: "Event") -> bool:
        # Branch form instead of tuple comparison: this runs on every
        # heap sift and the two tuple allocations dominate its cost.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"<Event t={self.time:.3f} {name} {state}>"


class PeriodicHandle:
    """Handle for a periodic callback registered with :meth:`Simulator.every`.

    Calling :meth:`stop` prevents any further firings.
    """

    __slots__ = ("stopped", "_current", "_sim")

    def __init__(self, sim: Optional["Simulator"] = None) -> None:
        self.stopped = False
        self._current: Optional[Event] = None
        self._sim = sim

    def stop(self) -> None:
        self.stopped = True
        if self._current is not None:
            # Route through the simulator so its live-event accounting
            # stays exact; fall back to the bare flag for handles built
            # outside an engine (tests).
            if self._sim is not None:
                self._sim.cancel(self._current)
            else:
                self._current.cancelled = True
            self._current = None


class Simulator:
    """Event-heap simulator with a millisecond clock starting at zero."""

    # Compaction threshold: once the heap is at least this large, it is
    # rebuilt whenever cancelled entries outnumber live ones.
    COMPACT_MIN_HEAP = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        # (time, seq, Event) entries — see the module docstring.
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._running = False
        self.events_executed: int = 0
        # Live (non-cancelled, still-queued) event count, maintained on
        # schedule/cancel/pop so pending_count() is O(1).
        self._live: int = 0
        self._cancelled_in_heap: int = 0
        # Optional tracing hook (repro.trace.Tracer); None costs one
        # truthiness check per executed event.
        self.tracer = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now.

        ``delay`` must be non-negative; a zero delay runs the callback at
        the current timestamp but strictly after any event already
        scheduled for that timestamp.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling twice is harmless."""
        if event.cancelled:
            return
        event.cancelled = True
        if event.popped:
            return  # already executed or discarded; nothing queued to count
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_HEAP
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (amortised O(n)).

        Rebuilds in place so aliases of ``_heap`` held by the hot loop in
        :meth:`run_until` stay valid across a mid-callback compaction.
        """
        self._heap[:] = [
            entry for entry in self._heap if not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def reschedule(self, event: Event, delay: float) -> Event:
        """Re-arm an already-fired event ``delay`` ms from now.

        Fast path for periodic work: reuses the Event object instead of
        allocating a fresh one per firing.  The event must have been
        popped (executed or skipped) — re-arming a still-queued event
        would corrupt the heap.
        """
        if not event.popped:
            raise SimulationError("cannot reschedule an event that is still queued")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        event.time = self.now + delay
        event.seq = self._seq
        event.popped = False
        event.cancelled = False
        heapq.heappush(self._heap, (event.time, self._seq, event))
        self._live += 1
        return event

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        first_delay: Optional[float] = None,
    ) -> PeriodicHandle:
        """Run ``fn(*args)`` every ``interval`` ms until stopped.

        The first firing happens after ``first_delay`` ms (defaults to
        ``interval``).  The callback may itself stop the handle.  Each
        firing re-arms the same :class:`Event` object (no per-tick
        allocation).
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        handle = PeriodicHandle(self)
        heappush = heapq.heappush
        heap = self._heap  # _compact rebuilds in place; alias stays valid

        def tick() -> None:
            if handle.stopped:
                return
            fn(*args)
            if not handle.stopped:
                # Inlined reschedule(): this runs for every firing of
                # every periodic — the call and its guards are pure
                # overhead for an event we know was just popped.
                event = handle._current
                seq = self._seq + 1
                self._seq = seq
                when = self.now + interval
                event.time = when
                event.seq = seq
                event.popped = False
                event.cancelled = False
                heappush(heap, (when, seq, event))
                self._live += 1

        handle._current = self.schedule(
            interval if first_delay is None else first_delay, tick
        )
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` when idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)[2].popped = True
            self._cancelled_in_heap -= 1
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when idle."""
        while self._heap:
            when, _seq, event = heapq.heappop(self._heap)
            event.popped = True
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._live -= 1
            self.now = when
            self.events_executed += 1
            tracer = self.tracer
            if tracer is not None:
                tracer.engine_event(when, event.fn)
            event.fn(*event.args)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Execute all events up to and including simulated ``time``.

        The clock is left at exactly ``time`` even if the last event
        fired earlier, so back-to-back ``run_until`` calls tile cleanly.

        This is the hot loop: peek and pop are fused (one heap touch per
        event instead of a ``peek_time``/``step`` pair), and the tracer
        check is hoisted out of the per-event path — attaching a tracer
        mid-run takes effect on the next ``run_until``/``step`` call.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot run backwards (now={self.now}, requested={time})"
            )
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # Local aliases keep the per-event work free of repeated
        # attribute lookups; _compact() rebuilds the heap in place, so
        # the `heap` alias survives callbacks that cancel events.
        heap = self._heap
        pop = heapq.heappop
        tracer = self.tracer
        trace_hook = (
            tracer.engine_event
            if tracer is not None and tracer.engine_events
            else None
        )
        executed = 0
        try:
            while heap:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    event.popped = True
                    self._cancelled_in_heap -= 1
                    continue
                when = entry[0]
                if when > time:
                    break
                pop(heap)
                event.popped = True
                self._live -= 1
                self.now = when
                executed += 1
                if trace_hook is not None:
                    trace_hook(when, event.fn)
                event.fn(*event.args)
            self.now = time
        finally:
            self.events_executed += executed
            self._running = False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event heap drains.

        ``max_events`` bounds the simulator's *lifetime* event count
        (``events_executed``), so events executed before ``run()`` was
        entered — by earlier ``run_until``/``step``/``run`` calls —
        count against the guard too.
        """
        while self.step():
            if self.events_executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")

    def pending_count(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._live
