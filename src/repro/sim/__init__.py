"""Deterministic discrete-event simulation substrate.

This package provides the clock, event queue, and seeded random-number
streams that every other subsystem in the reproduction builds on.  The
engine is a classic event-heap simulator: callbacks are scheduled at
absolute or relative simulated times (milliseconds) and executed in
timestamp order.  Determinism is guaranteed by (a) a monotonically
increasing tie-break sequence number and (b) namespaced RNG streams
(:class:`~repro.sim.rng.RngStream`) so that adding a new component never
perturbs the random draws of existing ones.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngRegistry, RngStream

__all__ = ["Event", "Simulator", "RngRegistry", "RngStream"]
