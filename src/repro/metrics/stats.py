"""Small summary-statistics helpers (no external dependencies)."""

from __future__ import annotations

import math
from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile, ``pct`` in [0, 100]."""
    if not values:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100.0 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    lo_val, hi_val = ordered[lo], ordered[hi]
    if frac == 0.0 or lo_val == hi_val:
        return lo_val
    # lo + (hi - lo) * frac is exact at frac == 0 and never dips below
    # lo_val, unlike the lerp form a*(1-f) + b*f which can round a hair
    # outside [lo_val, hi_val] when a == b.
    return min(lo_val + (hi_val - lo_val) * frac, hi_val)


def summarize(values) -> Dict[str, float]:
    """mean / std / min / p50 / p90 / p99 / max in one dict.

    Accepts a plain sequence of samples or anything exposing a
    ``summary()`` method with the same shape — notably the log-bucketed
    :class:`repro.trace.histogram.Histogram`.
    """
    if hasattr(values, "summary"):
        return values.summary()
    return {
        "mean": mean(values),
        "std": stddev(values),
        "min": min(values) if values else 0.0,
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "max": max(values) if values else 0.0,
    }
