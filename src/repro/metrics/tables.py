"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    Cells are stringified; floats get two decimals.  Column widths fit
    the widest cell.
    """

    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
