"""Measurement utilities shared by experiments and benchmarks.

Re-exports the per-subsystem stat carriers and provides small, typed
helpers for summary statistics and plain-text table rendering (the
benchmarks print paper-style tables through these).
"""

from repro.android.render import FrameStats
from repro.kernel.vmstat import VmStat
from repro.metrics.stats import mean, percentile, stddev, summarize
from repro.metrics.tables import render_table
from repro.sched.cfs import CpuStats
from repro.storage.block import IoStats
from repro.trace.histogram import Histogram

__all__ = [
    "FrameStats",
    "VmStat",
    "CpuStats",
    "IoStats",
    "Histogram",
    "mean",
    "percentile",
    "stddev",
    "summarize",
    "render_table",
]
