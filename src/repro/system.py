"""MobileSystem: the complete simulated device.

Composes every substrate — the event engine, the memory manager with
kswapd and the freezer, the storage devices, the CFS scheduler, the
Android framework (ActivityManager, LMK, frame pipeline, framework
load) — under one management policy.  This is the object experiments
drive::

    system = MobileSystem(spec=huawei_p20(), policy=IcePolicy(), seed=7)
    system.install_apps(catalog_apps())
    record = system.launch("TikTok")
    system.run_until_complete(record)
    system.run(seconds=60)
    print(system.frame_engine.stats.average_fps)
"""

from __future__ import annotations

import operator
from typing import Dict, Iterable, List, Optional

from repro.android.activity_manager import ActivityManager, LaunchRecord
from repro.android.app import Application, AppState, Process
from repro.android.lmk import LowMemoryKiller
from repro.android.render import FrameEngine
from repro.android.services import FrameworkLoad
from repro.apps.profiles import AppProfile
from repro.devices.specs import DeviceSpec, huawei_p20
from repro.kernel.freezer import Freezer
from repro.kernel.mm import MemoryManager, OutOfMemoryError
from repro.kernel.page import Page
from repro.kernel.slab import DIRTY, KIND_FILE, PAGE_SLAB, PRESENT, REFERENCED
from repro.kernel.page_fault import PageFaultHandler
from repro.kernel.proc_reclaim import PerProcessReclaim
from repro.kernel.reclaim import Kswapd
from repro.obs.procfs import ProcFs
from repro.obs.psi import PsiMonitor
from repro.policies.base import ManagementPolicy
from repro.sched.cfs import CfsScheduler
from repro.sched.task import Task, TaskBody, TaskState
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.storage.flash import FlashDevice
from repro.storage.zram import ZramDevice


class _KswapdBody(TaskBody):
    """Task body that lets kswapd reclaim within its CPU quanta."""

    def __init__(self, kswapd: Kswapd):
        self.kswapd = kswapd

    # kswapd is one thread sharing a busy little cluster with other
    # kernel housekeeping; its effective reclaim duty cycle is a
    # fraction of each quantum.  This bounds background reclaim to
    # mobile-realistic throughput so refault storms genuinely outpace
    # it — the regime every measurement in the paper lives in.
    DUTY_MS_PER_QUANTUM = 2.0

    def run(self, task: Task, now: float, budget_ms: float) -> float:
        result = self.kswapd.run_quantum(min(budget_ms, self.DUTY_MS_PER_QUANTUM))
        return min(budget_ms, result.cpu_ms)

    def has_work(self, task: Task) -> bool:
        return self.kswapd.should_run


class MobileSystem:
    """A fully-wired simulated smartphone."""

    def __init__(
        self,
        spec: Optional[DeviceSpec] = None,
        policy=None,
        seed: int = 42,
        framework_base_utilization: float = 0.42,
        tracer=None,
    ):
        self.spec = spec or huawei_p20()
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.seed = seed
        # Tracing is opt-in: when no Tracer is supplied every component's
        # hook stays None and tracepoints cost one truthiness check.
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(lambda: self.sim.now)
            self.sim.tracer = tracer

        # Pressure Stall Information is always on (recording a stall is
        # a few float compares); its EWMA windows advance on a periodic
        # tick of the simulated clock.
        self.psi = PsiMonitor(clock=lambda: self.sim.now)
        if tracer is not None:
            self.psi.tracer = tracer
        self.sim.every(self.psi.update_ms, self.psi.tick)

        # --- storage + memory management -------------------------------
        self.zram = ZramDevice(
            capacity_pages=self.spec.zram_pages,
            compression_ratio=self.spec.zram_compression_ratio,
            compress_ms=self.spec.zram_compress_ms,
            decompress_ms=self.spec.zram_decompress_ms,
        )
        self.flash = FlashDevice(self.spec.storage)
        self.mm = MemoryManager(
            self.spec, self.zram, self.flash, clock=lambda: self.sim.now
        )
        self.mm.sim = self.sim
        self.fault_handler = PageFaultHandler(self.mm)
        self.proc_reclaim = PerProcessReclaim(self.mm)
        self.kswapd = Kswapd(self.mm)
        self.mm.kswapd_waker = self.kswapd.wake
        self.fault_handler.psi = self.psi
        self.kswapd.psi = self.psi
        if tracer is not None:
            self.mm.tracer = tracer
            self.kswapd.tracer = tracer
            self.fault_handler.tracer = tracer

        # --- scheduling --------------------------------------------------
        self.sched = CfsScheduler(cores=self.spec.cores)
        self.sched.psi = self.psi
        self.freezer = Freezer()
        self.freezer.subscribe(self._on_freeze_change)
        if tracer is not None:
            self.sched.tracer = tracer
            self.freezer.tracer = tracer
            from repro.trace.tracer import CPU_PID

            for core in range(self.spec.cores):
                tracer.register_thread(CPU_PID, core, f"cpu{core}")
        self._kswapd_task = Task(
            "kswapd0", process=None, nice=0, is_kernel=True,
            body=_KswapdBody(self.kswapd),
        )
        self.sched.add_task(self._kswapd_task)
        self.kswapd.on_wake = self._wake_kswapd_task
        self.sim.every(self.sched.quantum_ms, self._sched_tick)

        # --- framework -----------------------------------------------------
        self.apps: Dict[str, Application] = {}
        self.activity_manager = ActivityManager(self)
        self.lmk = LowMemoryKiller(self)
        self.lmk.start_monitor()
        self.frame_engine = FrameEngine(self)
        self.framework = FrameworkLoad(
            self, base_utilization=framework_base_utilization
        )
        self.framework.start()
        # Virtual /proc over the live kernel objects (meminfo, vmstat,
        # pressure/*, per-app memcg files) — the `repro dump` surface.
        self.procfs = ProcFs(self)
        # §3.2 switch: the "idle runtime GC" feature can be disabled to
        # show GC is not the only refault source.
        self.idle_gc_disabled = False
        # Device charging state (the power-manager freezer cares).
        self.charging = False

        # --- policy ----------------------------------------------------------
        if policy is None:
            from repro.policies.lru_cfs import LruCfsPolicy

            policy = LruCfsPolicy()
        self.policy = policy
        # Same trick as the pick-key below: when the policy keeps the
        # base-class reclaim_protect (which always answers False) the
        # reclaim scan skips the per-page Python call entirely.
        if type(policy).reclaim_protect is ManagementPolicy.reclaim_protect:
            self.mm.reclaim_protect = None
        else:
            self.mm.reclaim_protect = self._reclaim_protect
        # Bound method wired directly: the pick key runs once per task
        # per scheduler quantum, so every wrapper frame counts.  When the
        # policy keeps the base-class key (plain CFS min-vruntime) the
        # sort can use a C-level attrgetter — same ordering, no Python
        # frame per runnable task.
        if type(policy).sched_pick_key is ManagementPolicy.sched_pick_key:
            self.sched.pick_key = operator.attrgetter("vruntime")
        else:
            self.sched.pick_key = policy.sched_pick_key
        self.sched.is_background = self._is_background_task
        policy.attach(self)

    # ------------------------------------------------------------------
    # Wiring callbacks
    # ------------------------------------------------------------------
    def _sched_tick(self) -> None:
        self.sched.tick(self.sim.now)

    def _wake_kswapd_task(self) -> None:
        if self._kswapd_task.state in (TaskState.SLEEPING, TaskState.BLOCKED):
            self._kswapd_task.state = TaskState.RUNNABLE

    def _on_freeze_change(self, pid: int, frozen: bool) -> None:
        if frozen:
            self.sched.freeze_pid(pid)
        else:
            self.sched.thaw_pid(pid)

    def _reclaim_protect(self, page: Page) -> bool:
        return self.policy.reclaim_protect(page)

    def _sched_key(self, task: Task) -> float:
        return self.policy.sched_pick_key(task)

    def _is_background_task(self, task: Task) -> bool:
        """Background-app tasks live in the little-cluster cpuset."""
        process = task.process
        if process is None:
            return False
        return process.app.state is not AppState.FOREGROUND

    # ------------------------------------------------------------------
    # App management
    # ------------------------------------------------------------------
    def install_app(self, profile: AppProfile) -> Application:
        if profile.package in self.apps:
            raise ValueError(f"{profile.package} already installed")
        app = Application(profile)
        self.apps[profile.package] = app
        return app

    def install_apps(self, profiles: Iterable[AppProfile]) -> List[Application]:
        return [self.install_app(profile) for profile in profiles]

    def get_app(self, package: str) -> Application:
        try:
            return self.apps[package]
        except KeyError:
            raise KeyError(f"app {package!r} not installed") from None

    def launch(self, package: str, **kwargs) -> LaunchRecord:
        return self.activity_manager.launch(self.get_app(package), **kwargs)

    @property
    def foreground_app(self) -> Optional[Application]:
        return self.activity_manager.foreground

    def kill_app(self, app: Application) -> int:
        """Tear an application down completely; returns pages freed."""
        freed = 0
        for process in app.processes:
            process.alive = False
            for task in list(process.tasks):
                self.sched.remove_task(task)
            process.tasks.clear()
            self.freezer.forget(process.pid)
            freed += self.mm.release_process_ids(
                process.page_table.all_page_ids()
            )
        app.processes = []
        app.state = AppState.STOPPED
        self.activity_manager.on_app_killed(app)
        self.policy.on_app_killed(app)
        return freed

    # ------------------------------------------------------------------
    # Memory access paths (used by behaviours and the frame engine)
    # ------------------------------------------------------------------
    def touch_pages(self, process: Process, pages: List[Page], write: bool = False) -> float:
        """CPU touches to ``pages``; returns blocking fault time in ms.

        Object-API wrapper over :meth:`touch_ids`.
        """
        return self.touch_ids(
            process, [page.page_id for page in pages], write
        )

    def touch_ids(self, process: Process, ids: List[int], write: bool = False) -> float:
        """CPU touches to slab page ``ids``; returns blocking fault ms.

        Faults within one batch are sequential CPU-side (decompression,
        reclaim stalls add up) but their flash reads pipeline through
        the block queue: the batch blocks until the *last* bio
        completes, not for the sum of all queue waits.

        This is the hottest loop in the simulator: the resident fast
        path is two array reads and one write, and the fault path calls
        the fused :meth:`~repro.kernel.page_fault.PageFaultHandler.handle_id`
        (no ``FaultOutcome`` object) with the LMK retry inlined.
        """
        if not process.alive:
            return 0.0
        cpu_ms = 0.0
        now = self.sim.now
        io_until = now
        app = process.app
        foreground = app.state is AppState.FOREGROUND
        slab = PAGE_SLAB
        flags = slab.flags
        kind = slab.kind
        handle_id = self.fault_handler.handle_id
        kill_one = self.lmk.kill_one
        pid = process.pid
        uid = app.uid
        # The resident fast path cannot change ``process.alive`` (it is
        # two flag-column ops), so the liveness re-check only needs to
        # run after a fault — which may have OOMed and LMK-killed this
        # very app.
        for i in ids:
            f = flags[i]
            if f & PRESENT:
                # Inlined mark_accessed fast path (the common read case).
                if write and kind[i] == KIND_FILE:
                    flags[i] = f | REFERENCED | DIRTY
                else:
                    flags[i] = f | REFERENCED
                continue
            result = None
            for _attempt in range(3):
                try:
                    result = handle_id(i, pid, uid, foreground, write)
                    break
                except OutOfMemoryError:
                    victim = kill_one("page-fault")
                    if victim is None or victim is app:
                        break
            if result is not None:
                cpu_ms += result[0]
                complete_at = result[1]
                if complete_at is not None and complete_at > io_until:
                    io_until = complete_at
            if not process.alive:
                break
        return cpu_ms + max(0.0, io_until - self.sim.now)

    def _fault(self, page: Page, process: Process, foreground: bool, write: bool):
        for _attempt in range(3):
            try:
                return self.fault_handler.handle(
                    page, process.pid, process.uid, foreground, write
                )
            except OutOfMemoryError:
                victim = self.lmk.kill_one("page-fault")
                if victim is None or victim is process.app:
                    return None
        return None

    def allocate_pages(self, process: Process, pages: List[Page]) -> float:
        """Make ``pages`` resident (fresh allocation); returns stall ms."""
        return self.allocate_ids(process, [page.page_id for page in pages])

    def allocate_ids(self, process: Process, ids: List[int]) -> float:
        """Make slab page ``ids`` resident (fresh allocation); stall ms."""
        stall = 0.0
        try:
            for _attempt in range(4):
                try:
                    outcome = self.mm.make_resident_bulk_ids(ids)
                    stall += outcome.stall_ms
                    return stall
                except OutOfMemoryError:
                    victim = self.lmk.kill_one("allocation")
                    if victim is None or victim is process.app:
                        return stall
            return stall
        finally:
            if stall > 0:
                self.psi.record(
                    "memory", stall, uid=process.uid,
                    full=process.app.state is AppState.FOREGROUND,
                )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds`` of device time."""
        self.sim.run_until(self.sim.now + seconds * 1000.0)

    def run_ms(self, ms: float) -> None:
        self.sim.run_until(self.sim.now + ms)

    def run_until_complete(self, record: LaunchRecord, timeout_s: float = 60.0) -> bool:
        """Run until a launch completes (or the timeout elapses)."""
        deadline = self.sim.now + timeout_s * 1000.0
        while not record.completed and self.sim.now < deadline:
            self.sim.run_until(min(self.sim.now + 50.0, deadline))
        return record.completed

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------
    @property
    def vmstat(self):
        return self.mm.vmstat

    def reset_measurements(self) -> None:
        """Zero all counters (start of a measurement window)."""
        self.mm.vmstat.reset()
        self.flash.reset_stats()
        self.zram.reset_stats()
        stats = self.sched.stats
        stats.busy_ms_total = 0.0
        stats.samples.clear()

    def memory_summary(self) -> Dict[str, float]:
        return {
            "managed_pages": self.mm.managed_pages,
            "resident_pages": self.mm.resident_pages,
            "free_pages": self.mm.free_pages,
            "zram_stored": self.zram.stored_pages,
            "zram_pool_pages": self.zram.pool_pages(),
            "high_wm": self.spec.high_watermark_pages,
            "low_wm": self.spec.low_watermark_pages,
            "min_wm": self.spec.min_watermark_pages,
        }
