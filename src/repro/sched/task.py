"""Tasks: the schedulable unit.

A :class:`Task` belongs to a process (or to the kernel) and carries a
queue of :class:`WorkItem` objects.  The default body consumes work
items in FIFO order; each item brings CPU demand plus a page-touch
callback, and a major fault inside an item blocks the task until the
fault's service time has elapsed (the remaining CPU demand resumes
afterwards).

Custom bodies (kswapd, render pipeline) implement :class:`TaskBody`.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from typing import Callable, Deque, Optional

from repro.sched.priorities import NICE_DEFAULT, nice_to_weight

_task_ids = itertools.count(1)


def reset_task_ids(start: int = 1) -> None:
    """Restart the global task-id sequence (see ``reset_page_ids``)."""
    global _task_ids
    _task_ids = itertools.count(start)


class TaskState(enum.Enum):
    SLEEPING = "sleeping"  # no pending work
    RUNNABLE = "runnable"
    BLOCKED = "blocked"  # waiting on I/O (fault service)
    FROZEN = "frozen"
    DEAD = "dead"


class WorkItem:
    """One burst of work: CPU demand plus an optional page-touch hook.

    ``touch`` is invoked once, when the item starts executing; it
    returns the *blocking* fault-service time in ms (0 when all pages
    were resident).  ``on_complete`` fires when the CPU demand has been
    fully consumed.
    """

    __slots__ = ("cpu_ms", "touch", "on_complete", "touched", "label")

    def __init__(
        self,
        cpu_ms: float,
        touch: Optional[Callable[[], float]] = None,
        on_complete: Optional[Callable[[], None]] = None,
        label: str = "",
    ):
        if cpu_ms < 0:
            raise ValueError("work item cpu_ms must be >= 0")
        self.cpu_ms = cpu_ms
        self.touch = touch
        self.on_complete = on_complete
        self.touched = False
        self.label = label


class TaskBody:
    """Strategy interface: what a task does with its CPU quantum."""

    def run(self, task: "Task", now: float, budget_ms: float) -> float:
        """Execute up to ``budget_ms`` of work; return CPU actually used.

        May change ``task.state`` (e.g. block on I/O via
        :meth:`Task.block_until`) and must return promptly with the CPU
        consumed so far.
        """
        raise NotImplementedError

    def has_work(self, task: "Task") -> bool:
        raise NotImplementedError


class QueueBody(TaskBody):
    """Default body: drain the task's work-item queue.

    Callbacks (``touch``, ``on_complete``) can have drastic side
    effects — a fault can OOM, invoke the LMK, and kill *this very
    task's application* (clearing its queue) — so the loop re-validates
    the task and queue after every callback.
    """

    def run(self, task: "Task", now: float, budget_ms: float) -> float:
        used = 0.0
        # ``task.queue`` is mutated in place (popleft/clear) but never
        # rebound, so the alias stays valid across callbacks.
        queue = task.queue
        dead = TaskState.DEAD
        while used < budget_ms and queue:
            item = queue[0]
            if item.touch is not None and not item.touched:
                item.touched = True
                fault_ms = item.touch()
                if task._state is dead:
                    return used
                if not queue or queue[0] is not item:
                    continue  # the callback restructured the queue
                if fault_ms > 0:
                    task.block_until(now + fault_ms)
                    return used
            slice_ms = item.cpu_ms
            if slice_ms > budget_ms - used:
                slice_ms = budget_ms - used
            item.cpu_ms -= slice_ms
            used += slice_ms
            if item.cpu_ms <= 1e-9:
                if queue and queue[0] is item:
                    queue.popleft()
                if item.on_complete is not None:
                    item.on_complete()
                if task._state is dead:
                    return used
        return used

    def has_work(self, task: "Task") -> bool:
        return bool(task.queue)


class Task:
    """A schedulable thread."""

    __slots__ = (
        "tid",
        "name",
        "process",
        "nice",
        "weight",
        "is_kernel",
        "freezable",
        "_state",
        "sched",
        "order_index",
        "app_uid",
        "pick_mark",
        "vruntime",
        "queue",
        "body",
        "blocked_until",
        "cpu_ms_total",
        "boost",
    )

    def __init__(
        self,
        name: str,
        process: Optional[object] = None,
        nice: int = NICE_DEFAULT,
        is_kernel: bool = False,
        body: Optional[TaskBody] = None,
    ):
        self.tid: int = next(_task_ids)
        self.name = name
        self.process = process  # owning Process, or None for kernel threads
        self.nice = nice
        self.weight = nice_to_weight(nice)
        self.is_kernel = is_kernel
        # Kernel threads and (later, via the whitelist) service processes
        # are never freezable (§4.2.1 "Process selection").
        self.freezable = not is_kernel
        self._state = TaskState.SLEEPING
        # Owning scheduler; state changes notify it so the run queue is
        # maintained incrementally instead of re-derived by walking the
        # whole task table every quantum.
        self.sched = None
        # Position in the scheduler's task table (assigned by add_task);
        # the tie-breaker that reproduces the table-order stable sort.
        self.order_index = 0
        # The owning app's uid, cached once (process/app bindings never
        # change after construction) so the scheduler's cpu-pressure
        # accounting avoids a three-hop attribute chain per waiting task.
        self.app_uid = getattr(getattr(process, "app", None), "uid", None)
        # Scratch mark used by the dispatch loop to tag this quantum's
        # picked tasks without building a per-tick set.
        self.pick_mark = 0
        self.vruntime: float = 0.0
        self.queue: Deque[WorkItem] = deque()
        self.body: TaskBody = body or QueueBody()
        self.blocked_until: float = 0.0
        self.cpu_ms_total: float = 0.0
        # Scheduling boost applied by policies (UCSG): multiplies the
        # effective weight during pick and vruntime accrual.
        self.boost: float = 1.0

    # ------------------------------------------------------------------
    @property
    def state(self) -> TaskState:
        return self._state

    @state.setter
    def state(self, value: TaskState) -> None:
        old = self._state
        if value is old:
            return
        self._state = value
        sched = self.sched
        if sched is not None:
            sched._note_state(self, old, value)

    @property
    def pid(self) -> Optional[int]:
        return getattr(self.process, "pid", None)

    @property
    def uid(self) -> Optional[int]:
        return getattr(self.process, "uid", None)

    def effective_weight(self) -> float:
        return self.weight * self.boost

    def set_nice(self, nice: int) -> None:
        self.nice = nice
        self.weight = nice_to_weight(nice)

    # ------------------------------------------------------------------
    # Work submission
    # ------------------------------------------------------------------
    def submit(self, item: WorkItem) -> None:
        """Queue a burst of work; wakes the task if it was sleeping."""
        if self._state is TaskState.DEAD:
            return
        self.queue.append(item)
        if self._state is TaskState.SLEEPING:
            self.state = TaskState.RUNNABLE

    def block_until(self, time: float) -> None:
        """Block on I/O until the given simulated time."""
        if self._state is TaskState.DEAD:
            return
        self.blocked_until = time
        self.state = TaskState.BLOCKED

    def unblock(self) -> None:
        if self._state is TaskState.BLOCKED:
            self.state = (
                TaskState.RUNNABLE if self.body.has_work(self) else TaskState.SLEEPING
            )

    def freeze(self) -> None:
        if self._state is not TaskState.DEAD:
            self.state = TaskState.FROZEN

    def thaw(self) -> None:
        if self._state is not TaskState.FROZEN:
            return
        if self.body.has_work(self):
            self.state = TaskState.RUNNABLE
        elif self.blocked_until > 0:
            self.state = TaskState.BLOCKED
        else:
            self.state = TaskState.SLEEPING

    def kill(self) -> None:
        self.state = TaskState.DEAD
        self.queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.tid} {self.name!r} {self.state.value}>"
