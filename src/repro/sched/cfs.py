"""Multicore CFS scheduling in fixed quanta.

Every quantum (default 4 ms) the scheduler:

1. unblocks tasks whose I/O wait has elapsed,
2. picks the ``cores`` runnable tasks with the smallest virtual runtime
   (or by a policy-supplied key — UCSG reorders here),
3. runs each picked task's body for up to one quantum, and
4. advances the task's vruntime by ``used * 1024 / effective_weight``.

Frozen tasks are invisible to step 2 — that is the entire enforcement
mechanism of process freezing.  CPU utilization is aggregated into
per-second buckets for Table 1 and §6.2.2.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Optional

from repro.sched.task import Task, TaskState
from repro.trace.tracer import CPU_PID

QUANTUM_MS = 4.0

# Sorting runnable tasks by their table position first, then stably by
# the pick key, reproduces the original walk-the-table-then-stable-sort
# ordering exactly (ties in the pick key resolve by insertion order).
_ORDER_KEY = operator.attrgetter("order_index")


class CpuStats:
    """Per-second CPU utilization accounting."""

    def __init__(self, cores: int):
        self.cores = cores
        self.busy_ms_total: float = 0.0
        self.samples: List[float] = []  # one utilization value per second
        self._bucket_busy: float = 0.0
        self._bucket_start: float = 0.0

    def record(self, now: float, busy_ms: float) -> None:
        """Record ``busy_ms`` of core time consumed in the quantum at ``now``."""
        self.busy_ms_total += busy_ms
        while now - self._bucket_start >= 1000.0:
            self.samples.append(self._bucket_busy / (self.cores * 1000.0))
            self._bucket_busy = 0.0
            self._bucket_start += 1000.0
        self._bucket_busy += busy_ms

    @property
    def average_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def peak_utilization(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def utilization_over(self, elapsed_ms: float) -> float:
        if elapsed_ms <= 0:
            return 0.0
        return self.busy_ms_total / (self.cores * elapsed_ms)


class CfsScheduler:
    """The run-queue plus the per-quantum dispatch loop."""

    def __init__(self, cores: int, quantum_ms: float = QUANTUM_MS):
        if cores <= 0:
            raise ValueError("need at least one core")
        self.cores = cores
        # Android cpusets: background tasks are restricted to the little
        # cluster (half the cores), while the top-app and system tasks
        # may use every core — this is why the paper finds CPU
        # contention is *not* what hurts the foreground app (§2.2.3,
        # footnote 2), and it is the lever UCSG-style demotion acts on.
        self.little_cores = max(1, cores // 2)
        self.quantum_ms = quantum_ms
        self.tasks: Dict[int, Task] = {}
        # State-partitioned views of ``tasks``, maintained incrementally
        # by Task.state's setter (via :meth:`_note_state`): the 4 ms tick
        # touches only the blocked set (wakeups) and the runnable set
        # (dispatch) instead of walking the whole table every quantum.
        self._runnable: Dict[int, Task] = {}
        self._blocked: Dict[int, Task] = {}
        # tid -> vruntime of the non-runnable, non-dead tasks
        # (sleeping/blocked/frozen) — the complement the min-vruntime
        # pass needs.  Stored as floats (vruntime only accrues while a
        # task runs, so the value is frozen while the task idles) so the
        # per-tick minimum is one C-level ``min`` over the dict values.
        self._idle_vr: Dict[int, float] = {}
        self._order_counter = 0
        self.stats = CpuStats(cores)
        # Policy hook: maps a task to its pick-order key (smaller runs
        # first).  Default is plain CFS min-vruntime.
        self.pick_key: Callable[[Task], float] = lambda task: task.vruntime
        # System hook: True when a task is confined to the little
        # cluster (background application tasks).
        self.is_background: Callable[[Task], bool] = lambda task: False
        # Policies may cap how many background tasks run concurrently
        # (UCSG packs demoted tasks onto fewer cores).
        self.bg_slot_limit: Optional[int] = None
        self._min_vruntime: float = 0.0
        # Set whenever the task table changes (add/remove); tells the
        # tick that its fused min-vruntime bookkeeping is stale and a
        # full walk is needed for this quantum.
        self._membership_dirty: bool = True
        # Monotone serial tagged onto picked tasks each quantum (see
        # Task.pick_mark): membership tests in the cpu-pressure pass
        # become one int compare instead of set construction + lookups.
        self._pick_serial: int = 0
        # Optional tracing hook (repro.trace.Tracer); None when disabled.
        self.tracer = None
        # Optional PSI hook: runnable-but-not-running time is cpu
        # pressure ("some"); frozen tasks are not runnable, so freezing
        # genuinely relieves the cpu pressure signal.
        self.psi = None

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        if task.tid in self.tasks:
            raise ValueError(f"task {task.tid} already registered")
        # New tasks start at the current min vruntime so they neither
        # starve nor monopolise the CPU.
        task.vruntime = self._min_vruntime
        task.sched = self
        task.order_index = self._order_counter
        self._order_counter += 1
        self.tasks[task.tid] = task
        state = task.state
        if state is TaskState.RUNNABLE:
            self._runnable[task.tid] = task
        elif state is not TaskState.DEAD:
            self._idle_vr[task.tid] = task.vruntime
            if state is TaskState.BLOCKED:
                self._blocked[task.tid] = task
        self._membership_dirty = True
        return task

    def remove_task(self, task: Task) -> None:
        task.kill()  # state -> DEAD drops it from the partitioned views
        self.tasks.pop(task.tid, None)
        if task.sched is self:
            task.sched = None
        self._membership_dirty = True

    def _note_state(self, task: Task, old: TaskState, new: TaskState) -> None:
        """Task.state setter hook: keep the partitioned views current."""
        tid = task.tid
        if old is TaskState.RUNNABLE:
            self._runnable.pop(tid, None)
        else:
            self._idle_vr.pop(tid, None)
            if old is TaskState.BLOCKED:
                self._blocked.pop(tid, None)
        if new is TaskState.RUNNABLE:
            self._runnable[tid] = task
        elif new is not TaskState.DEAD:
            self._idle_vr[tid] = task.vruntime
            if new is TaskState.BLOCKED:
                self._blocked[tid] = task

    def tasks_of_pid(self, pid: int) -> List[Task]:
        return [task for task in self.tasks.values() if task.pid == pid]

    def freeze_pid(self, pid: int) -> None:
        for task in self.tasks_of_pid(pid):
            if task.freezable:
                task.freeze()

    def thaw_pid(self, pid: int) -> None:
        for task in self.tasks_of_pid(pid):
            task.thaw()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def runnable_tasks(self) -> List[Task]:
        return sorted(self._runnable.values(), key=_ORDER_KEY)

    def tick(self, now: float) -> float:
        """Run one scheduling quantum; returns busy core-ms consumed."""
        # Wake pass over the blocked set only (a handful of tasks) —
        # the partitioned views make the full-table walk unnecessary.
        # This runs every 4 ms of simulated time and used to dominate
        # the event loop.
        if self._blocked:
            for task in list(self._blocked.values()):
                if task.blocked_until <= now:
                    task.blocked_until = 0.0
                    task.unblock()
        if not self._runnable:
            self.stats.record(now, 0.0)
            return 0.0
        # Table order first, then a stable sort by the pick key — the
        # exact ordering of the original walk-and-sort.
        runnable = sorted(self._runnable.values(), key=_ORDER_KEY)
        # ``idle_min``: min vruntime over the non-runnable, non-dead
        # tasks, snapshotted before dispatch; combined with the runnable
        # list after dispatch it reproduces the full min-vruntime pass.
        idle_vr = self._idle_vr
        idle_min: Optional[float] = min(idle_vr.values()) if idle_vr else None
        dead = TaskState.DEAD
        runnable.sort(key=self.pick_key)
        big_free = self.cores - self.little_cores
        little_free = self.little_cores
        if self.bg_slot_limit is not None:
            little_free = min(little_free, self.bg_slot_limit)
        if len(runnable) <= little_free:
            # Everything fits even if every task is background-confined:
            # the pick degenerates to "run them all" with no cpuset
            # classification and no cpu pressure.
            picked = runnable
        else:
            serial = self._pick_serial + 1
            self._pick_serial = serial
            is_bg = self.is_background
            picked = []
            for task in runnable:
                if big_free + little_free == 0:
                    break
                if is_bg(task):
                    if little_free > 0:
                        little_free -= 1
                        picked.append(task)
                        task.pick_mark = serial
                elif big_free > 0:
                    big_free -= 1
                    picked.append(task)
                    task.pick_mark = serial
                elif little_free > 0:
                    little_free -= 1
                    picked.append(task)
                    task.pick_mark = serial
            psi = self.psi
            if psi is not None and len(picked) < len(runnable):
                # At least one task waits out this whole quantum: cpu
                # "some" pressure for the system, and for each waiting
                # app's group.
                psi.record("cpu", self.quantum_ms, start=now)
                waiting_uids = set()
                for task in runnable:
                    if task.pick_mark == serial or task.process is None:
                        continue
                    uid = task.app_uid
                    if uid not in waiting_uids:
                        waiting_uids.add(uid)
                        psi.record("cpu", self.quantum_ms, start=now, uid=uid)
        busy = 0.0
        tracer = self.tracer
        # Task bodies may add or remove tasks (launches, LMK kills);
        # the dirty flag tells us when the fused min below is stale.
        self._membership_dirty = False
        for core, task in enumerate(picked):
            used = task.body.run(task, now, self.quantum_ms)
            if used > 0:
                task.cpu_ms_total += used
                # Inlined effective_weight() — one call per picked task
                # per quantum adds up.
                task.vruntime += used * 1024.0 / (task.weight * task.boost)
                busy += used
                if task.tid in idle_vr:
                    # The task went idle (blocked/slept) inside its own
                    # body.run, *before* this accrual: refresh the
                    # snapshot so the idle minimum sees the final value.
                    idle_vr[task.tid] = task.vruntime
                if tracer is not None:
                    tracer.complete(
                        task.name, CPU_PID, core, start_ms=now, dur_ms=used,
                        cat="sched",
                    )
            if tracer is not None and task._state is TaskState.BLOCKED:
                # I/O block span on the task's own thread track, from the
                # moment it yielded until its wakeup time.
                tracer.complete(
                    "blocked", task.pid if task.pid is not None else CPU_PID,
                    task.tid, start_ms=now + used,
                    dur_ms=max(0.0, task.blocked_until - now - used),
                    cat="sched",
                )
            if task._state is TaskState.RUNNABLE and not task.body.has_work(task):
                task.state = TaskState.SLEEPING
        if picked:
            if self._membership_dirty:
                # The task table changed mid-quantum: fall back to the
                # exact full walk (rare — launch or kill quanta only).
                lowest = None
                for task in self.tasks.values():
                    if task._state is not dead:
                        vruntime = task.vruntime
                        if lowest is None or vruntime < lowest:
                            lowest = vruntime
            else:
                # Only tasks in ``runnable`` ran (their vruntime grew);
                # everything else was folded into ``idle_min`` above.
                lowest = idle_min
                for task in runnable:
                    vruntime = task.vruntime
                    if lowest is None or vruntime < lowest:
                        lowest = vruntime
            if lowest is not None and lowest > self._min_vruntime:
                self._min_vruntime = lowest
        self.stats.record(now, busy)
        return busy

    def _wake_blocked(self, now: float) -> None:
        for task in list(self._blocked.values()):
            if task.blocked_until <= now:
                task.blocked_until = 0.0
                task.unblock()
