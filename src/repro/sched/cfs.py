"""Multicore CFS scheduling in fixed quanta.

Every quantum (default 4 ms) the scheduler:

1. unblocks tasks whose I/O wait has elapsed,
2. picks the ``cores`` runnable tasks with the smallest virtual runtime
   (or by a policy-supplied key — UCSG reorders here),
3. runs each picked task's body for up to one quantum, and
4. advances the task's vruntime by ``used * 1024 / effective_weight``.

Frozen tasks are invisible to step 2 — that is the entire enforcement
mechanism of process freezing.  CPU utilization is aggregated into
per-second buckets for Table 1 and §6.2.2.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sched.task import Task, TaskState
from repro.trace.tracer import CPU_PID

QUANTUM_MS = 4.0


class CpuStats:
    """Per-second CPU utilization accounting."""

    def __init__(self, cores: int):
        self.cores = cores
        self.busy_ms_total: float = 0.0
        self.samples: List[float] = []  # one utilization value per second
        self._bucket_busy: float = 0.0
        self._bucket_start: float = 0.0

    def record(self, now: float, busy_ms: float) -> None:
        """Record ``busy_ms`` of core time consumed in the quantum at ``now``."""
        self.busy_ms_total += busy_ms
        while now - self._bucket_start >= 1000.0:
            self.samples.append(self._bucket_busy / (self.cores * 1000.0))
            self._bucket_busy = 0.0
            self._bucket_start += 1000.0
        self._bucket_busy += busy_ms

    @property
    def average_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def peak_utilization(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def utilization_over(self, elapsed_ms: float) -> float:
        if elapsed_ms <= 0:
            return 0.0
        return self.busy_ms_total / (self.cores * elapsed_ms)


class CfsScheduler:
    """The run-queue plus the per-quantum dispatch loop."""

    def __init__(self, cores: int, quantum_ms: float = QUANTUM_MS):
        if cores <= 0:
            raise ValueError("need at least one core")
        self.cores = cores
        # Android cpusets: background tasks are restricted to the little
        # cluster (half the cores), while the top-app and system tasks
        # may use every core — this is why the paper finds CPU
        # contention is *not* what hurts the foreground app (§2.2.3,
        # footnote 2), and it is the lever UCSG-style demotion acts on.
        self.little_cores = max(1, cores // 2)
        self.quantum_ms = quantum_ms
        self.tasks: Dict[int, Task] = {}
        self.stats = CpuStats(cores)
        # Policy hook: maps a task to its pick-order key (smaller runs
        # first).  Default is plain CFS min-vruntime.
        self.pick_key: Callable[[Task], float] = lambda task: task.vruntime
        # System hook: True when a task is confined to the little
        # cluster (background application tasks).
        self.is_background: Callable[[Task], bool] = lambda task: False
        # Policies may cap how many background tasks run concurrently
        # (UCSG packs demoted tasks onto fewer cores).
        self.bg_slot_limit: Optional[int] = None
        self._min_vruntime: float = 0.0
        # Set whenever the task table changes (add/remove); tells the
        # tick that its fused min-vruntime bookkeeping is stale and a
        # full walk is needed for this quantum.
        self._membership_dirty: bool = True
        # Optional tracing hook (repro.trace.Tracer); None when disabled.
        self.tracer = None
        # Optional PSI hook: runnable-but-not-running time is cpu
        # pressure ("some"); frozen tasks are not runnable, so freezing
        # genuinely relieves the cpu pressure signal.
        self.psi = None

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        if task.tid in self.tasks:
            raise ValueError(f"task {task.tid} already registered")
        # New tasks start at the current min vruntime so they neither
        # starve nor monopolise the CPU.
        task.vruntime = self._min_vruntime
        self.tasks[task.tid] = task
        self._membership_dirty = True
        return task

    def remove_task(self, task: Task) -> None:
        task.kill()
        self.tasks.pop(task.tid, None)
        self._membership_dirty = True

    def tasks_of_pid(self, pid: int) -> List[Task]:
        return [task for task in self.tasks.values() if task.pid == pid]

    def freeze_pid(self, pid: int) -> None:
        for task in self.tasks_of_pid(pid):
            if task.freezable:
                task.freeze()

    def thaw_pid(self, pid: int) -> None:
        for task in self.tasks_of_pid(pid):
            task.thaw()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def runnable_tasks(self) -> List[Task]:
        return [
            task for task in self.tasks.values() if task.state is TaskState.RUNNABLE
        ]

    def tick(self, now: float) -> float:
        """Run one scheduling quantum; returns busy core-ms consumed."""
        # Fused wake-and-collect pass: one walk over the task table
        # instead of the _wake_blocked + runnable_tasks pair (this runs
        # every 4 ms of simulated time and dominates the event loop).
        runnable: List[Task] = []
        append = runnable.append
        blocked = TaskState.BLOCKED
        runnable_state = TaskState.RUNNABLE
        dead = TaskState.DEAD
        # ``idle_min`` tracks min vruntime over the non-runnable,
        # non-dead tasks seen in this walk; combined with the runnable
        # list after dispatch it reproduces the full min-vruntime pass
        # without walking the task table a second time.
        idle_min: Optional[float] = None
        for task in self.tasks.values():
            state = task.state
            if state is blocked and task.blocked_until <= now:
                task.blocked_until = 0.0
                task.unblock()
                state = task.state
            if state is runnable_state:
                append(task)
            elif state is not dead:
                vruntime = task.vruntime
                if idle_min is None or vruntime < idle_min:
                    idle_min = vruntime
        if not runnable:
            self.stats.record(now, 0.0)
            return 0.0
        runnable.sort(key=self.pick_key)
        picked: List[Task] = []
        big_free = self.cores - self.little_cores
        little_free = self.little_cores
        if self.bg_slot_limit is not None:
            little_free = min(little_free, self.bg_slot_limit)
        for task in runnable:
            if big_free + little_free == 0:
                break
            if self.is_background(task):
                if little_free > 0:
                    little_free -= 1
                    picked.append(task)
            elif big_free > 0:
                big_free -= 1
                picked.append(task)
            elif little_free > 0:
                little_free -= 1
                picked.append(task)
        psi = self.psi
        if psi is not None and len(picked) < len(runnable):
            # At least one task waits out this whole quantum: cpu "some"
            # pressure for the system, and for each waiting app's group.
            psi.record("cpu", self.quantum_ms, start=now)
            picked_ids = {id(task) for task in picked}
            waiting_uids = set()
            for task in runnable:
                if id(task) in picked_ids or task.process is None:
                    continue
                uid = task.process.app.uid
                if uid not in waiting_uids:
                    waiting_uids.add(uid)
                    psi.record("cpu", self.quantum_ms, start=now, uid=uid)
        busy = 0.0
        tracer = self.tracer
        # Task bodies may add or remove tasks (launches, LMK kills);
        # the dirty flag tells us when the fused min below is stale.
        self._membership_dirty = False
        for core, task in enumerate(picked):
            used = task.body.run(task, now, self.quantum_ms)
            if used > 0:
                task.cpu_ms_total += used
                task.vruntime += used * 1024.0 / task.effective_weight()
                busy += used
                if tracer is not None:
                    tracer.complete(
                        task.name, CPU_PID, core, start_ms=now, dur_ms=used,
                        cat="sched",
                    )
            if tracer is not None and task.state is TaskState.BLOCKED:
                # I/O block span on the task's own thread track, from the
                # moment it yielded until its wakeup time.
                tracer.complete(
                    "blocked", task.pid if task.pid is not None else CPU_PID,
                    task.tid, start_ms=now + used,
                    dur_ms=max(0.0, task.blocked_until - now - used),
                    cat="sched",
                )
            if task.state is TaskState.RUNNABLE and not task.body.has_work(task):
                task.state = TaskState.SLEEPING
        if picked:
            if self._membership_dirty:
                # The task table changed mid-quantum: fall back to the
                # exact full walk (rare — launch or kill quanta only).
                lowest = None
                for task in self.tasks.values():
                    if task.state is not dead:
                        vruntime = task.vruntime
                        if lowest is None or vruntime < lowest:
                            lowest = vruntime
            else:
                # Only tasks in ``runnable`` ran (their vruntime grew);
                # everything else was folded into ``idle_min`` above.
                lowest = idle_min
                for task in runnable:
                    vruntime = task.vruntime
                    if lowest is None or vruntime < lowest:
                        lowest = vruntime
            if lowest is not None and lowest > self._min_vruntime:
                self._min_vruntime = lowest
        self.stats.record(now, busy)
        return busy

    def _wake_blocked(self, now: float) -> None:
        for task in self.tasks.values():
            if task.state is TaskState.BLOCKED and task.blocked_until <= now:
                task.blocked_until = 0.0
                task.unblock()
