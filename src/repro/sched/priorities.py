"""Nice values and CFS load weights.

The weight table is the kernel's ``sched_prio_to_weight``: each nice
step changes the weight by ~1.25x, so a nice-0 task gets 1024 and a
nice-10 background task gets ~110 (about 10% of the CPU share when
competing with a nice-0 task).
"""

from __future__ import annotations

NICE_MIN = -20
NICE_MAX = 19
NICE_DEFAULT = 0

# Kernel sched_prio_to_weight table, indices nice -20 .. +19.
_PRIO_TO_WEIGHT = [
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
]


def nice_to_weight(nice: int) -> int:
    """Map a nice value to its CFS load weight."""
    if not NICE_MIN <= nice <= NICE_MAX:
        raise ValueError(f"nice value {nice} outside [{NICE_MIN}, {NICE_MAX}]")
    return _PRIO_TO_WEIGHT[nice - NICE_MIN]


def clamp_nice(nice: int) -> int:
    """Clamp an arbitrary integer into the valid nice range."""
    return max(NICE_MIN, min(NICE_MAX, nice))
