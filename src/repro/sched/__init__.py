"""CPU substrate: tasks, CFS run-queues, multicore quantum scheduling.

The baseline scheduler is CFS ("completely fair scheduler", §5.2):
foreground and background tasks are treated fairly, picked by minimum
virtual runtime.  Policies hook task selection (UCSG boosts foreground
tasks) and the freezer removes frozen tasks from scheduling entirely.

Scheduling advances in fixed quanta (default 4 ms).  Within a quantum a
task's *body* executes: it consumes CPU, touches memory pages (possibly
faulting and blocking on I/O), or — for kswapd — reclaims pages.
"""

from repro.sched.task import Task, TaskBody, TaskState, WorkItem
from repro.sched.cfs import CfsScheduler, CpuStats
from repro.sched.priorities import (
    NICE_DEFAULT,
    nice_to_weight,
)

__all__ = [
    "Task",
    "TaskBody",
    "TaskState",
    "WorkItem",
    "CfsScheduler",
    "CpuStats",
    "NICE_DEFAULT",
    "nice_to_weight",
]
