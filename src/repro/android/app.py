"""Applications and their processes.

An :class:`Application` is identified by a UID fixed at install time
(§4.2.2) and runs several processes when alive — a main process plus
auxiliary ones (push, render, sandbox...).  Each :class:`Process` owns a
page table and one or more scheduler tasks.  Application state follows
the Android lifecycle the paper relies on: FOREGROUND (interacting),
PERCEPTIBLE (music/download in the BG — whitelisted), CACHED (kept for
hot launch), and STOPPED (no processes; next launch is cold).
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional

from repro.android.oom_adj import (
    ADJ_FOREGROUND,
    ADJ_PERCEPTIBLE,
    CACHED_APP_MIN_ADJ,
    cached_adj,
)
from repro.apps.profiles import AppProfile
from repro.kernel.page import HeapKind, Page, PageKind
from repro.kernel.page_table import PageTable
from repro.sched.task import Task

_pid_counter = itertools.count(1000)
_uid_counter = itertools.count(10000)  # Android app UIDs start at 10000


def reset_process_ids(pid_start: int = 1000, uid_start: int = 10000) -> None:
    """Restart the pid/uid sequences (see ``reset_page_ids``)."""
    global _pid_counter, _uid_counter
    _pid_counter = itertools.count(pid_start)
    _uid_counter = itertools.count(uid_start)


class AppState(enum.Enum):
    STOPPED = "stopped"
    FOREGROUND = "foreground"
    PERCEPTIBLE = "perceptible"
    CACHED = "cached"


class Process:
    """One OS process of an application."""

    def __init__(self, name: str, app: "Application", main: bool = False):
        self.pid: int = next(_pid_counter)
        self.name = name
        self.app = app
        self.main = main
        self.page_table = PageTable(owner=self)
        self.tasks: List[Task] = []
        self.alive = True

    @property
    def uid(self) -> int:
        return self.app.uid

    @property
    def foreground(self) -> bool:
        return self.app.state is AppState.FOREGROUND

    def build_footprint(
        self, java_pages: int, native_pages: int, file_pages: int,
        hot_frac: float, file_dirty_frac: float,
    ) -> None:
        """Create this process's virtual pages (not yet resident).

        Pages are laid out exactly as the old per-page loop did — hot
        prefix first within each segment, dirty prefix for file pages —
        but each run of identical pages becomes one slab block
        allocation (a handful of C-level column extends per process
        instead of thousands of ``Page.__init__`` calls).
        """
        table = self.page_table
        hot_java = int(java_pages * hot_frac)
        table.build_block(hot_java, PageKind.ANON, HeapKind.JAVA, hot=True)
        table.build_block(java_pages - hot_java, PageKind.ANON, HeapKind.JAVA)
        hot_native = int(native_pages * hot_frac)
        table.build_block(hot_native, PageKind.ANON, HeapKind.NATIVE, hot=True)
        table.build_block(native_pages - hot_native, PageKind.ANON, HeapKind.NATIVE)
        hot_file = int(file_pages * hot_frac)
        dirty_file = int(file_pages * file_dirty_frac)
        lo, hi = min(hot_file, dirty_file), max(hot_file, dirty_file)
        table.build_block(lo, PageKind.FILE, HeapKind.NONE, dirty=True, hot=True)
        table.build_block(
            hi - lo, PageKind.FILE, HeapKind.NONE,
            dirty=dirty_file > hot_file, hot=hot_file > dirty_file,
        )
        table.build_block(file_pages - hi, PageKind.FILE, HeapKind.NONE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.pid} {self.name!r}>"


class Application:
    """An installed application (UID fixed at install time)."""

    def __init__(self, profile: AppProfile):
        self.uid: int = next(_uid_counter)
        self.profile = profile
        self.state = AppState.STOPPED
        self.processes: List[Process] = []
        # Perceptible apps (music/download) keep adj 200 while in BG.
        self.perceptible = profile.perceptible_in_bg
        # Recency rank among cached apps (0 = most recent); maintained
        # by the ActivityManager.
        self.recency_rank: int = 0
        self.launch_count: int = 0
        self.last_foreground_ms: float = 0.0

    @property
    def package(self) -> str:
        return self.profile.package

    @property
    def alive(self) -> bool:
        return bool(self.processes)

    @property
    def pids(self) -> List[int]:
        return [process.pid for process in self.processes]

    @property
    def main_process(self) -> Optional[Process]:
        for process in self.processes:
            if process.main:
                return process
        return None

    @property
    def adj(self) -> int:
        """oom_score_adj of the app's main process (§4.4)."""
        if self.state is AppState.FOREGROUND:
            return ADJ_FOREGROUND
        if self.state is AppState.PERCEPTIBLE or (
            self.perceptible and self.state is AppState.CACHED
        ):
            return ADJ_PERCEPTIBLE
        if self.state is AppState.CACHED:
            return cached_adj(self.recency_rank)
        return CACHED_APP_MIN_ADJ  # stopped; irrelevant

    def resident_pages(self) -> int:
        return sum(p.page_table.resident_pages for p in self.processes)

    def total_pages(self) -> int:
        return sum(p.page_table.total_pages for p in self.processes)

    def all_pages(self) -> List[Page]:
        pages: List[Page] = []
        for process in self.processes:
            pages.extend(process.page_table.all_pages())
        return pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<App {self.package} uid={self.uid} {self.state.value}>"
