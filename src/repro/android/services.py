"""Framework service load (system_server, Binder, kworker, ...).

The paper's Table 1 baseline: with *no* applications running, CPU
utilization is ~43% (kernel + framework tasks), rising to ~55% with
eight cached applications — the framework does per-app work (binder
transactions, push delivery, job scheduling) on top of the apps' own
threads.  :class:`FrameworkLoad` models both components: a fixed base
load plus a per-cached-app increment.

Framework tasks are service processes: RPF's process sifting never
freezes them (§4.2.1).
"""

from __future__ import annotations

from typing import List

from repro.android.app import AppState
from repro.sched.task import Task, WorkItem

SERVICE_NAMES = (
    "system_server",
    "surfaceflinger",
    "binder",
    "kworker/u16",
    "netd",
    "HeapTaskDaemon-sys",
)


class FrameworkLoad:
    """Baseline + per-app framework CPU consumption."""

    BURST_PERIOD_MS = 80.0

    def __init__(
        self,
        system,
        base_utilization: float = 0.42,
        per_app_utilization: float = 0.015,
    ):
        if not 0 <= base_utilization < 1:
            raise ValueError("base utilization must be in [0, 1)")
        self.system = system
        self.base_utilization = base_utilization
        self.per_app_utilization = per_app_utilization
        self.tasks: List[Task] = []
        self._rng = system.rng.stream("framework-load")
        self.started = False

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        for name in SERVICE_NAMES:
            task = Task(name, process=None, nice=0, is_kernel=(name.startswith("kworker")))
            task.freezable = False
            self.system.sched.add_task(task)
            self.tasks.append(task)
        self.system.sim.every(
            self.BURST_PERIOD_MS,
            self._issue_bursts,
            first_delay=self._rng.uniform(1.0, self.BURST_PERIOD_MS),
        )

    # ------------------------------------------------------------------
    def _cached_app_count(self) -> int:
        return sum(
            1
            for app in self.system.apps.values()
            if app.alive and app.state in (AppState.CACHED, AppState.PERCEPTIBLE)
        )

    def current_target(self) -> float:
        """Instantaneous target utilization (base + per-app extra)."""
        return min(
            0.95, self.base_utilization + self.per_app_utilization * self._cached_app_count()
        )

    def _issue_bursts(self) -> None:
        """Top up each service task with its share of the target load."""
        cores = self.system.spec.cores
        total_cpu_ms = self.current_target() * cores * self.BURST_PERIOD_MS
        share = total_cpu_ms / len(self.tasks)
        for task in self.tasks:
            if task.queue:
                continue  # still draining the previous burst
            jitter = self._rng.uniform(0.75, 1.25)
            task.submit(WorkItem(cpu_ms=share * jitter, label="framework"))
