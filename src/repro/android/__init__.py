"""Android framework substrate.

Models the framework slice that ICE interacts with: application
lifecycle and oom_adj scores, the ActivityManager's launch/switch paths
(hot vs cold), the low-memory killer, ART's background GC, framework
service load, and the Choreographer-style frame pipeline whose FPS and
interaction-alert ratio are the paper's user-experience metrics.
"""

from repro.android.app import Application, AppState, Process
from repro.android.oom_adj import (
    ADJ_FOREGROUND,
    ADJ_PERCEPTIBLE,
    CACHED_APP_MIN_ADJ,
    cached_adj,
)
from repro.android.lmk import LowMemoryKiller
from repro.android.render import FrameEngine, FrameStats
from repro.android.activity_manager import ActivityManager, LaunchRecord

__all__ = [
    "Application",
    "AppState",
    "Process",
    "ADJ_FOREGROUND",
    "ADJ_PERCEPTIBLE",
    "CACHED_APP_MIN_ADJ",
    "cached_adj",
    "LowMemoryKiller",
    "FrameEngine",
    "FrameStats",
    "ActivityManager",
    "LaunchRecord",
]
