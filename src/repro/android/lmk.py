"""Low-memory killer (LMK [38]).

When reclaim cannot keep up — an allocation fails even after direct
reclaim, or free memory stays critically low with ZRAM exhausted — the
LMK kills the cached application with the highest oom_score_adj (the
least recently used, never the foreground or perceptible ones).  Killed
applications lose all state: their next launch is cold, which is what
the paper's Figure 11(b) hot-launch-count experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.android.app import Application, AppState
from repro.trace.tracer import LMKD_TID, SYSTEM_PID


@dataclass(frozen=True)
class LmkKill:
    time_ms: float
    package: str
    adj: int
    freed_pages: int
    reason: str


class LowMemoryKiller:
    """Kills cached apps under unrecoverable memory pressure.

    Two triggers, as on modern Android:

    * **OOM path** — an allocation fails even after direct reclaim
      (``kill_one`` called from the fault/allocation paths).
    * **PSI path** — lmkd-style pressure monitoring: when memory-stall
      time (direct-reclaim + allocator contention) exceeds
      ``PSI_THRESHOLD_MS_PER_S`` for ``PSI_CONSECUTIVE`` seconds, the
      device is thrashing terminally and a cached app is killed to
      relieve it.
    """

    PSI_THRESHOLD_MS_PER_S = 600.0
    PSI_CONSECUTIVE = 4
    # Terminal I/O congestion: a block queue this far behind means every
    # file fault in the system waits a substantial fraction of a second.
    IO_QUEUE_THRESHOLD_MS = 250.0
    # Launches stall the allocator heavily by design; lmkd applies kill
    # cooldowns around app starts rather than reacting to launch storms.
    LAUNCH_COOLDOWN_MS = 8000.0

    def __init__(self, system) -> None:
        self.system = system
        self.kills: List[LmkKill] = []
        self._last_stall_ms = 0.0
        self._pressured_seconds = 0
        self._monitor_started = False

    def start_monitor(self) -> None:
        """Arm the once-per-second PSI poll (idempotent)."""
        if self._monitor_started:
            return
        self._monitor_started = True
        self.system.sim.every(1000.0, self._psi_tick)

    def _in_launch_cooldown(self) -> bool:
        records = self.system.activity_manager.launch_records
        if not records:
            return False
        last = records[-1]
        if not last.completed:
            return True
        return self.system.sim.now - last.end_ms < self.LAUNCH_COOLDOWN_MS

    def _psi_tick(self) -> None:
        vm = self.system.vmstat
        # Allocator contention tracks ordinary pressure; *direct reclaim*
        # time is the signature of reclaim falling behind terminally.
        total_stall = vm.direct_reclaim_stall_ms
        delta = total_stall - self._last_stall_ms
        self._last_stall_ms = total_stall
        if self._in_launch_cooldown():
            self._pressured_seconds = 0
            return
        io_backlog = self.system.flash.queue_delay(self.system.sim.now)
        if delta >= self.PSI_THRESHOLD_MS_PER_S or io_backlog >= self.IO_QUEUE_THRESHOLD_MS:
            self._pressured_seconds += 1
        else:
            self._pressured_seconds = 0
        if self._pressured_seconds >= self.PSI_CONSECUTIVE:
            self._pressured_seconds = 0
            self.kill_one("psi-pressure")

    # ------------------------------------------------------------------
    # Candidates within this adj distance of the worst one form the
    # kill bucket; lmkd picks the *largest* app in the bucket (freeing
    # the most memory per kill), which is why small apps survive long
    # cached lifetimes while big ones are recycled.
    ADJ_BUCKET_WIDTH = 60

    def pick_victim(self) -> Optional[Application]:
        """Largest app in the highest-adj bucket, or None."""
        candidates = [
            app
            for app in self.system.apps.values()
            if app.alive and app.state is AppState.CACHED and not app.perceptible
        ]
        if not candidates:
            return None
        worst_adj = max(app.adj for app in candidates)
        bucket = [
            app for app in candidates
            if app.adj >= worst_adj - self.ADJ_BUCKET_WIDTH
        ]
        return max(bucket, key=lambda app: (app.resident_pages(), app.adj))

    def kill_one(self, reason: str) -> Optional[Application]:
        """Kill the chosen victim; returns it (or None)."""
        victim = self.pick_victim()
        if victim is None:
            return None
        freed = self.system.kill_app(victim)
        self.kills.append(
            LmkKill(
                time_ms=self.system.sim.now,
                package=victim.package,
                adj=victim.adj,
                freed_pages=freed,
                reason=reason,
            )
        )
        tracer = self.system.tracer
        if tracer is not None:
            tracer.instant(
                "lmk_kill", pid=SYSTEM_PID, tid=LMKD_TID, cat="lmk",
                args={
                    "package": victim.package,
                    "adj": victim.adj,
                    "freed_pages": freed,
                    "reason": reason,
                },
            )
        return victim

    @property
    def kill_count(self) -> int:
        return len(self.kills)
