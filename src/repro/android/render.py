"""Frame pipeline: vsync, FPS, and interaction alerts (§2.2.2, §6.1).

A Choreographer-style loop issues a frame on each 16.67 ms vsync (gated
by the content rate — a 45 fps video call produces at most 45 frames a
second no matter how fast the device is).  Each frame costs CPU, touches
a sample of the foreground app's working set (possible refaults), and
allocates a few transient pages (allocation churn — under the min
watermark this direct-reclaims, which is the priority-inversion path
that lets background refault storms block rendering).

Metrics match the paper's: **FPS** per second of wall time, and **RIA**
(ratio of interaction alerts) — the fraction of frames that failed to
render within 16.6 ms, Systrace's interaction-alert threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.android.app import Application, AppState
from repro.kernel.slab import (
    HEAP_NATIVE,
    HOT,
    KIND_ANON,
    PAGE_SLAB,
    REFERENCED,
)
from repro.sched.task import Task, WorkItem

VSYNC_MS = 1000.0 / 60.0
ALERT_THRESHOLD_MS = 16.6


@dataclass
class FrameStats:
    """Frame-rate accounting for one foreground session."""

    completed: int = 0
    dropped: int = 0
    alerts: int = 0
    latencies: List[float] = field(default_factory=list)
    fps_timeline: List[int] = field(default_factory=list)  # frames per second
    _bucket_count: int = 0
    _bucket_start: float = 0.0

    def record_frame(self, now: float, latency_ms: float) -> None:
        self.completed += 1
        self.latencies.append(latency_ms)
        if latency_ms > ALERT_THRESHOLD_MS:
            self.alerts += 1
        self._advance(now)
        self._bucket_count += 1

    def record_drop(self, now: float) -> None:
        self.dropped += 1
        self.alerts += 1
        self._advance(now)

    def _advance(self, now: float) -> None:
        while now - self._bucket_start >= 1000.0:
            self.fps_timeline.append(self._bucket_count)
            self._bucket_count = 0
            self._bucket_start += 1000.0

    # ------------------------------------------------------------------
    @property
    def average_fps(self) -> float:
        if not self.fps_timeline:
            return 0.0
        return sum(self.fps_timeline) / len(self.fps_timeline)

    @property
    def ria(self) -> float:
        """Ratio of interaction alerts (frames missing 16.6 ms)."""
        total = self.completed + self.dropped
        if total == 0:
            return 0.0
        return self.alerts / total

    @property
    def average_latency_ms(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class FrameEngine:
    """Drives the foreground application's rendering loop."""

    # The render thread gets a modest static boost even in the baseline:
    # Android places the top app in a privileged cpuset, which is why the
    # paper finds CPU contention is *not* the main FPS killer.
    RENDER_NICE = -4

    def __init__(self, system):
        self.system = system
        self.app: Optional[Application] = None
        self.task: Optional[Task] = None
        self.stats: Optional[FrameStats] = None
        self._vsync_handle = None
        self._burst_handle = None
        self._sampler = None
        self._content_credit: float = 0.0
        # Slab ids of transient frame-churn pages (oldest first).
        self._transient: Deque[int] = deque()
        self._transient_cap: int = 0
        self._rng = None
        self._working_set: list = []

    # ------------------------------------------------------------------
    # Share of the app's virtual pages that the foreground session ever
    # touches: the FG working set is bounded — an app does not walk its
    # whole address space however long it runs.
    WORKING_SET_FRAC = 0.62

    def start(self, app: Application, sampler) -> FrameStats:
        """Begin rendering for a newly-foregrounded app."""
        self.stop()
        self.app = app
        self._sampler = sampler
        self._rng = self.system.rng.stream(f"render:{app.package}:{app.launch_count}")
        self._working_set = self._build_working_set(sampler)
        profile = app.profile
        main = app.main_process
        if main is None:
            raise ValueError(f"{app.package} has no main process to render from")
        self.task = Task("RenderThread", process=main, nice=self.RENDER_NICE)
        self.system.sched.add_task(self.task)
        tracer = self.system.tracer
        if tracer is not None:
            tracer.register_thread(main.pid, self.task.tid, "RenderThread")
            tracer.instant(
                "render_session_start", pid=main.pid, tid=self.task.tid,
                cat="frame", args={"app": app.package},
            )
        self.stats = FrameStats(_bucket_start=self.system.sim.now)
        self._content_credit = 0.0
        self._transient_cap = max(
            profile.frame_alloc_pages * 90, profile.fg_alloc_burst_pages + 240
        )
        self._vsync_handle = self.system.sim.every(VSYNC_MS, self._on_vsync)
        if profile.fg_alloc_burst_pages > 0:
            self._burst_handle = self.system.sim.every(
                profile.fg_alloc_burst_period_s * 1000.0, self._alloc_burst
            )
        return self.stats

    def stop(self) -> None:
        """Tear down the current session (app leaves the foreground)."""
        if self._vsync_handle is not None:
            self._vsync_handle.stop()
            self._vsync_handle = None
        if self._burst_handle is not None:
            self._burst_handle.stop()
            self._burst_handle = None
        if self.task is not None:
            self.system.sched.remove_task(self.task)
            self.task = None
        discard = self.system.mm.discard_page_id
        free = PAGE_SLAB.free
        while self._transient:
            i = self._transient.popleft()
            discard(i)
            free(i)
        self.app = None
        self._sampler = None
        self._working_set = []

    # ------------------------------------------------------------------
    def _on_vsync(self) -> None:
        app = self.app
        if app is None or app.state is not AppState.FOREGROUND:
            return
        profile = app.profile
        self._content_credit += min(profile.content_fps, 60.0) / 60.0
        if self._content_credit < 1.0:
            return  # no content this vsync (source-limited)
        self._content_credit -= 1.0
        stats = self.stats
        now = self.system.sim.now
        tracer = self.system.tracer
        if self.task.queue:
            # Previous frame still in flight: this frame is dropped.
            stats.record_drop(now)
            if tracer is not None:
                tracer.instant(
                    "frame_drop", pid=self.task.pid, tid=self.task.tid,
                    cat="frame",
                )
            return
        cpu = self._rng.gauss(profile.frame_cpu_ms, profile.frame_cpu_jitter)
        cpu = max(1.0, cpu) / self.system.spec.cpu_speed
        vsync_time = now
        task = self.task

        def frame_done() -> None:
            end = self.system.sim.now
            latency = end - vsync_time
            stats.record_frame(end, latency)
            if tracer is not None:
                tracer.complete(
                    "frame", task.pid, task.tid,
                    start_ms=vsync_time, dur_ms=latency,
                    args={"missed_vsync": latency > ALERT_THRESHOLD_MS},
                    cat="frame",
                )
                tracer.histogram("frame_ms").add(latency)

        self.task.submit(
            WorkItem(cpu_ms=cpu, touch=self._frame_touch,
                     on_complete=frame_done, label="frame")
        )

    def _build_working_set(self, sampler) -> list:
        """Hot nucleus plus a bounded random cold subset (slab ids)."""
        flags = PAGE_SLAB.flags
        cold = [i for i in sampler.all_ids if not flags[i] & HOT]
        target = int(len(sampler.all_ids) * self.WORKING_SET_FRAC)
        extra = max(0, target - len(sampler.hot_ids))
        if extra < len(cold):
            self._rng.shuffle(cold)
            cold = cold[:extra]
        return list(sampler.hot_ids) + cold

    def _frame_touch(self) -> float:
        """Touch working-set pages and churn transient allocations.

        Returns the blocking time (fault service + direct-reclaim
        stalls) charged to the render thread.
        """
        app = self.app
        profile = app.profile
        main = app.main_process
        hot = self._sampler.hot_ids
        ws = self._working_set
        ids = []
        for _ in range(profile.frame_touch_pages):
            if hot and self._rng.random() < 0.75:
                ids.append(self._rng.choice(hot))
            elif ws:
                ids.append(self._rng.choice(ws))
        blocked = self.system.touch_ids(main, ids)
        blocked += self._churn_transient(profile.frame_alloc_pages)
        return blocked

    def _churn_transient(self, count: int) -> float:
        """Allocate ``count`` fresh pages, freeing the oldest beyond cap."""
        if count <= 0:
            return 0.0
        main = self.app.main_process
        slab = PAGE_SLAB
        # Old buffers are freed before their replacements are allocated
        # (codecs and render caches recycle), so a warmed-up pool is
        # memory-neutral; only pool *growth* creates net demand.  Retired
        # ids go back to the slab free list — over a long session the
        # churn recycles a bounded id pool instead of growing every
        # column without limit.
        transient = self._transient
        discard = self.system.mm.discard_page_id
        free = slab.free
        while len(transient) > self._transient_cap - count:
            i = transient.popleft()
            discard(i)
            free(i)
        alloc = slab.alloc
        fresh = [alloc(KIND_ANON, HEAP_NATIVE, 0, main) for _ in range(count)]
        stall = self.system.allocate_ids(main, fresh)
        # Buffers are written the moment they are allocated — they are
        # live render state, not cold data, so the LRU must see them as
        # referenced (otherwise reclaim wastes compression cycles
        # evicting pages the app frees moments later).
        flags = slab.flags
        for i in fresh:
            flags[i] |= REFERENCED
        transient.extend(fresh)
        return stall

    def _alloc_burst(self) -> None:
        """Periodic large allocation (PUBG round start, video switch)."""
        app = self.app
        if app is None or app.state is not AppState.FOREGROUND:
            return
        profile = app.profile
        pages = profile.fg_alloc_burst_pages
        if pages <= 0 or self.task is None:
            return
        self.task.submit(
            WorkItem(
                cpu_ms=max(2.0, pages * 0.003) / self.system.spec.cpu_speed,
                touch=lambda: self._churn_transient(pages),
                label="alloc-burst",
            )
        )
