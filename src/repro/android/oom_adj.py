"""Android oom_score_adj scores (§4.4).

The framework assigns each process an adj score reflecting user
perceptibility: foreground processes get 0, perceptible background
applications (music playback, active downloads) get 200, and cached
applications get scores from 900 upward ordered by recency — the LMK
kills from the highest score down, and ICE's whitelist admits every
application with a score <= 200 (never frozen).
"""

from __future__ import annotations

ADJ_FOREGROUND = 0
ADJ_PERCEPTIBLE = 200
CACHED_APP_MIN_ADJ = 900
CACHED_APP_MAX_ADJ = 999
WHITELIST_ADJ_THRESHOLD = 200  # paper: adj <= 200 is whitelisted


def cached_adj(recency_rank: int) -> int:
    """Adj for a cached app; rank 0 = most recently foregrounded."""
    if recency_rank < 0:
        raise ValueError("recency rank must be >= 0")
    return min(CACHED_APP_MAX_ADJ, CACHED_APP_MIN_ADJ + recency_rank * 10)


def is_whitelisted_score(adj: int) -> bool:
    """The paper's whitelist rule: adj <= 200 is user-perceptible."""
    return adj <= WHITELIST_ADJ_THRESHOLD
