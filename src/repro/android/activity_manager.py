"""ActivityManager: application lifecycle, launching, and switching.

Implements the launch semantics the paper's Figure 11 study measures:

* **Cold launch** — no live process: spawn processes, stream code and
  resources from flash, allocate the initial resident set (possibly
  direct-reclaiming under pressure), and run the app's start-up CPU
  work.  Launch time spans tap-to-interactive.
* **Hot launch** — the app was cached: resume costs a little CPU plus
  faulting back whatever part of the working set was reclaimed while
  cached.  Ice adds thaw-on-launch here: a frozen app is thawed before
  being displayed (§4.4), which is the policy's ``before_launch`` hook.

Foreground switches update ``oom_adj`` recency ranks and the memory
manager's foreground UID (the basis of FG/BG refault classification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.android.app import Application, AppState, Process
from repro.apps.behavior import BackgroundBehavior, PageSampler
from repro.sched.task import Task, WorkItem
from repro.trace.tracer import ACTIVITY_MANAGER_TID, SYSTEM_PID


@dataclass
class LaunchRecord:
    """Measurement of one launch (the `adb am start` analogue)."""

    package: str
    style: str  # "cold" | "hot"
    start_ms: float
    end_ms: float = 0.0
    thaw_ms: float = 0.0
    completed: bool = False

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms


class ActivityManager:
    """Launch, switch, and lifecycle bookkeeping."""

    # Fraction of an app's pages made resident by a cold launch; the
    # rest is demand-paged as the app is actually used (working-set
    # growth during early use is what keeps reclaim busy after launch).
    COLD_RESIDENT_FRAC = 0.55
    # Split of footprint held by the main process (rest spread over aux).
    MAIN_PROCESS_SHARE = 0.60

    def __init__(self, system):
        self.system = system
        self.foreground: Optional[Application] = None
        self.launch_records: List[LaunchRecord] = []
        self.behaviors: Dict[int, BackgroundBehavior] = {}
        self._cache_order: List[Application] = []  # most recent first

    # ------------------------------------------------------------------
    # Launching
    # ------------------------------------------------------------------
    def launch(
        self,
        app: Application,
        drive_frames: bool = True,
        on_ready: Optional[Callable[[LaunchRecord], None]] = None,
    ) -> LaunchRecord:
        """Start (or resume) ``app`` and bring it to the foreground.

        Returns a :class:`LaunchRecord` that is filled in when the
        launch completes (simulated time advances in between).
        """
        system = self.system
        style = "hot" if app.alive else "cold"
        record = LaunchRecord(
            package=app.package, style=style, start_ms=system.sim.now
        )
        self.launch_records.append(record)
        app.launch_count += 1

        # Thaw-on-launch and other policy preparation (Ice thaws frozen
        # processes before the app is displayed, §4.4).
        record.thaw_ms = system.policy.before_launch(app)

        self._set_foreground(app)

        tracer = system.tracer
        launch_id = 0
        if tracer is not None:
            # Async span: launches can overlap frames and each other, so
            # they get their own id-matched b/e pair on the AM track.
            launch_id = tracer.new_flow_id()
            tracer.async_begin(
                f"launch:{app.package}", launch_id,
                SYSTEM_PID, ACTIVITY_MANAGER_TID,
                args={"style": style, "thaw_ms": record.thaw_ms},
                cat="launch",
            )
            if record.thaw_ms > 0:
                tracer.complete(
                    "thaw_on_launch", SYSTEM_PID, ACTIVITY_MANAGER_TID,
                    start_ms=record.start_ms, dur_ms=record.thaw_ms,
                    args={"package": app.package}, cat="launch",
                )

        def finish() -> None:
            record.end_ms = system.sim.now
            record.completed = True
            if tracer is not None:
                tracer.async_end(
                    f"launch:{app.package}", launch_id,
                    SYSTEM_PID, ACTIVITY_MANAGER_TID,
                    args={"latency_ms": record.latency_ms},
                    cat="launch",
                )
                tracer.histogram(f"launch_{style}_ms").add(record.latency_ms)
            if drive_frames and self.foreground is app:
                sampler = self._main_sampler(app)
                system.frame_engine.start(app, sampler)
            if on_ready is not None:
                on_ready(record)

        def begin() -> None:
            if style == "cold":
                self._spawn_processes(app)
                self._submit_cold_work(app, finish)
            else:
                self._submit_hot_work(app, finish)

        if record.thaw_ms > 0:
            system.sim.schedule(record.thaw_ms, begin)
        else:
            begin()
        return record

    # ------------------------------------------------------------------
    def _set_foreground(self, app: Application) -> None:
        system = self.system
        previous = self.foreground
        if previous is app:
            return
        if previous is not None and previous.alive:
            system.frame_engine.stop()
            previous.state = AppState.CACHED
            previous.last_foreground_ms = system.sim.now
            self._cache_order.insert(0, previous)
        if app in self._cache_order:
            self._cache_order.remove(app)
        self._update_recency()
        app.state = AppState.FOREGROUND
        self.foreground = app
        system.mm.foreground_uid = app.uid
        system.policy.on_foreground_change(app, previous)

    def _update_recency(self) -> None:
        for rank, app in enumerate(self._cache_order):
            app.recency_rank = rank

    # ------------------------------------------------------------------
    # Process spawning
    # ------------------------------------------------------------------
    def _spawn_processes(self, app: Application) -> None:
        system = self.system
        spec = system.spec
        profile = app.profile
        segments = profile.segment_pages(spec)
        count = max(1, profile.process_count)
        aux_count = count - 1

        for index in range(count):
            main = index == 0
            if main:
                java = segments["java_heap"]
                native = int(segments["native_heap"] * self.MAIN_PROCESS_SHARE)
                files = int(segments["file_map"] * self.MAIN_PROCESS_SHARE)
                if aux_count == 0:
                    native = segments["native_heap"]
                    files = segments["file_map"]
                name = profile.package
            else:
                java = 0
                native = (
                    segments["native_heap"]
                    - int(segments["native_heap"] * self.MAIN_PROCESS_SHARE)
                ) // aux_count
                files = (
                    segments["file_map"]
                    - int(segments["file_map"] * self.MAIN_PROCESS_SHARE)
                ) // aux_count
                name = f"{profile.package}:sub{index}"
            process = Process(name=name, app=app, main=main)
            process.build_footprint(
                java_pages=java,
                native_pages=native,
                file_pages=files,
                hot_frac=profile.hot_frac,
                file_dirty_frac=profile.file_dirty_frac,
            )
            app.processes.append(process)

            main_task = Task(f"{name}.main", process=process, nice=0)
            system.sched.add_task(main_task)
            process.tasks.append(main_task)
            gc_task = None
            if java > 0:
                gc_task = Task(f"{name}.HeapTaskDaemon", process=process, nice=4)
                system.sched.add_task(gc_task)
                process.tasks.append(gc_task)

            behavior = BackgroundBehavior(system, process, main_task, gc_task)
            behavior.start()
            self.behaviors[process.pid] = behavior

            tracer = system.tracer
            if tracer is not None:
                tracer.register_process(process.pid, name)
                # tid 0 carries kernel-side events (refaults) attributed
                # to this process.
                tracer.register_thread(process.pid, 0, "mm-events")
                for task_obj in process.tasks:
                    tracer.register_thread(
                        process.pid, task_obj.tid, task_obj.name
                    )
                system.fault_handler.pid_names[process.pid] = profile.package
        system.policy.on_app_started(app)

    def _main_sampler(self, app: Application) -> PageSampler:
        main = app.main_process
        if main is None:
            raise ValueError(f"{app.package} has no main process")
        return self.behaviors[main.pid].sampler

    # ------------------------------------------------------------------
    # Launch work
    # ------------------------------------------------------------------
    def _submit_cold_work(self, app: Application, finish: Callable[[], None]) -> None:
        system = self.system
        profile = app.profile
        main = app.main_process
        task = main.tasks[0]
        cpu_total = profile.cold_launch_cpu_ms / system.spec.cpu_speed

        # Code/resource pages streamed from flash during start-up.
        code_pages = int(
            len(main.page_table.ids_of("file_map")) * profile.cold_launch_read_frac
        )

        def read_code() -> float:
            if code_pages <= 0:
                return 0.0
            bio = system.flash.read(system.sim.now, code_pages, owner_pid=main.pid)
            system.mm.vmstat.filein += code_pages
            return bio.complete_time - system.sim.now

        chunks = self._resident_chunks(app)

        def alloc(chunk_index: int) -> float:
            stall = 0.0
            for process, ids in chunks[chunk_index]:
                stall += system.allocate_ids(process, ids)
            return stall

        tracer = system.tracer

        def phase_done(phase: str):
            if tracer is None:
                return None
            return lambda: tracer.instant(
                f"launch_phase:{phase}", pid=SYSTEM_PID,
                tid=ACTIVITY_MANAGER_TID, cat="launch",
                args={"package": app.package},
            )

        task.submit(WorkItem(cpu_ms=cpu_total * 0.3, touch=read_code,
                             on_complete=phase_done("cold-io"), label="cold-io"))
        task.submit(
            WorkItem(cpu_ms=cpu_total * 0.4, touch=lambda: alloc(0),
                     on_complete=phase_done("cold-alloc1"), label="cold-alloc1")
        )
        task.submit(
            WorkItem(
                cpu_ms=cpu_total * 0.3,
                touch=lambda: alloc(1),
                on_complete=finish,
                label="cold-alloc2",
            )
        )

    def _resident_chunks(self, app: Application):
        """Split each process's initial resident set into two id chunks."""
        from repro.kernel.slab import PAGE_SLAB, PRESENT

        flags = PAGE_SLAB.flags
        chunk_a, chunk_b = [], []
        for process in app.processes:
            ids = [
                i
                for i in process.page_table.all_page_ids()
                if not flags[i] & PRESENT
            ]
            frac = app.profile.cold_resident_frac
            if frac is None:
                frac = self.COLD_RESIDENT_FRAC
            resident = ids[: int(len(ids) * frac)]
            half = len(resident) // 2
            chunk_a.append((process, resident[:half]))
            chunk_b.append((process, resident[half:]))
        return [chunk_a, chunk_b]

    def _submit_hot_work(self, app: Application, finish: Callable[[], None]) -> None:
        system = self.system
        profile = app.profile
        main = app.main_process
        task = main.tasks[0]
        sampler = self._main_sampler(app)
        # A resume redraws the UI from the *hot nucleus*; the rest of
        # the working set is demand-paged lazily during subsequent use
        # (the frame engine's touches), not on the launch critical path.
        touch_count = min(
            int(main.page_table.total_pages * profile.hot_launch_touch_frac),
            max(64, int(len(sampler.hot_ids) * 0.8)),
        )
        pages = sampler.sample_ids(touch_count, hot_bias=0.95)

        from repro.apps.behavior import submit_touch

        submit_touch(
            system,
            task,
            main,
            pages,
            profile.hot_launch_cpu_ms / system.spec.cpu_speed,
            "hot-resume",
            on_complete=finish,
        )

    # ------------------------------------------------------------------
    # Teardown hooks (called by MobileSystem.kill_app)
    # ------------------------------------------------------------------
    def on_app_killed(self, app: Application) -> None:
        if app in self._cache_order:
            self._cache_order.remove(app)
            self._update_recency()
        for process in app.processes:
            self.behaviors.pop(process.pid, None)
        if self.foreground is app:
            self.foreground = None
            self.system.mm.foreground_uid = None
