"""Application behaviour profiles.

A profile captures everything the simulator needs to reproduce the
paper's observations about an application class:

* **Footprint** — java heap / native heap / file-backed sizes (real MB;
  the device spec scales them into simulated pages).  The heap split
  drives Figure 4's categorization (≈51% anon refaults, of which ≈57%
  native and ≈43% java).
* **Background behaviour** — §3.2: runtime GC on the java heap, service
  wakeups (location/sync/push) touching native+file pages, main-thread
  activity for the ~58% of apps observed running in the background, and
  the pathological "buggy release" always-awake pattern.
* **Foreground behaviour** — frame cost and per-frame page traffic for
  the scenario drivers (S-A..S-D), plus launch costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

MIB = 1024 * 1024


class AppCategory(enum.Enum):
    SOCIAL = "Social"
    MULTIMEDIA = "Multi-Media"
    GAME = "Game"
    ECOMMERCE = "E-Commerce"
    UTILITY = "Utility"


@dataclass(frozen=True)
class AppProfile:
    """Static description of one application's behaviour."""

    package: str
    category: AppCategory

    # --- Footprint (real-world MB; scaled by DeviceSpec) --------------
    java_heap_mb: int = 120
    native_heap_mb: int = 140
    file_mb: int = 160
    # Fraction of each segment that forms the hot working-set nucleus.
    hot_frac: float = 0.25
    # Fraction of file pages dirtied during use (write-back on reclaim).
    file_dirty_frac: float = 0.15

    # --- Background behaviour (§3.2) -----------------------------------
    # Whether the app's own threads run while cached in the BG (~58% do).
    bg_active: bool = True
    # Mean seconds between BG activity bursts (exponential).
    bg_burst_period_s: float = 3.0
    # CPU cost per burst (ms, lognormal around this mean).
    bg_burst_cpu_ms: float = 6.0
    # Pages touched per burst, split across segments.
    bg_touch_pages: int = 90
    # ART idle GC: period (s) and fraction of java heap walked per cycle.
    gc_idle_period_s: float = 45.0
    gc_touch_frac: float = 0.45
    # Service wakeups (location listener, sync adapter, push): period in
    # seconds, or None when the app registers no BG services.
    service_period_s: Optional[float] = 8.0
    service_touch_pages: int = 40
    service_cpu_ms: float = 3.0
    # The Facebook-style buggy always-awake pattern (§3.2).
    buggy_stay_awake: bool = False
    # User-perceptible in BG (music playback / downloads): whitelisted.
    perceptible_in_bg: bool = False

    # --- Foreground behaviour -------------------------------------------
    # CPU per frame (ms) and its jitter; pages touched per frame; pages
    # transiently allocated per frame (allocation churn under pressure).
    frame_cpu_ms: float = 7.0
    frame_cpu_jitter: float = 1.5
    frame_touch_pages: int = 24
    frame_alloc_pages: int = 2
    # Content frame-rate cap (camera/video/network bound), <= 60.
    content_fps: float = 60.0
    # Periodic FG allocation bursts (e.g. PUBG round start needs 100MB+).
    fg_alloc_burst_pages: int = 0
    fg_alloc_burst_period_s: float = 60.0

    # --- Launch ----------------------------------------------------------
    cold_launch_cpu_ms: float = 900.0
    # File pages streamed from flash during cold launch (code/resources),
    # expressed as a fraction of the file segment.
    cold_launch_read_frac: float = 0.55
    hot_launch_cpu_ms: float = 120.0
    # Fraction of the working set touched when resuming to FG.
    hot_launch_touch_frac: float = 0.35
    # Number of processes the application runs (§4.2.2: "each application
    # generates several processes").
    process_count: int = 3
    # Fraction of the footprint made resident by a cold launch; the rest
    # is demand-paged during use (None = ActivityManager default).
    cold_resident_frac: "Optional[float]" = None

    @property
    def total_mb(self) -> int:
        return self.java_heap_mb + self.native_heap_mb + self.file_mb

    def footprint_pages(self, spec) -> int:
        """Total simulated pages on a given device."""
        return spec.scale_pages(self.total_mb * MIB)

    def segment_pages(self, spec) -> dict:
        """Per-segment simulated page counts on a given device."""
        return {
            "java_heap": spec.scale_pages(self.java_heap_mb * MIB),
            "native_heap": spec.scale_pages(self.native_heap_mb * MIB),
            "file_map": spec.scale_pages(self.file_mb * MIB),
        }
