"""Application workload substrate.

Real applications (Table 3's 20 popular apps) are replaced by synthetic
profiles that generate the same classes of memory/CPU behaviour the
paper measures: foreground frame rendering, background GC cycles,
background service wakeups (location, sync, push), "not system
friendly" always-on apps (§3.2), and the `memtester`/`cputester`
calibration tools of §2.2.3.
"""

from repro.apps.profiles import AppCategory, AppProfile
from repro.apps.catalog import (
    APP_CATALOG,
    catalog_apps,
    extended_catalog,
    get_profile,
)
from repro.apps.synthetic import cputester_profile, memtester_profile

__all__ = [
    "AppCategory",
    "AppProfile",
    "APP_CATALOG",
    "catalog_apps",
    "extended_catalog",
    "get_profile",
    "memtester_profile",
    "cputester_profile",
]
