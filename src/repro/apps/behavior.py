"""Background behaviour generators (§3.2 root causes).

Each cached application keeps generating memory activity through three
channels the paper identifies:

* **Main-thread bursts** — ~58% of BG apps were observed running on
  CPUs; bursts touch a hot-biased sample of the app's pages, and the
  cold tail of those touches is what hits evicted pages and refaults.
* **Runtime GC** — ART's idle GC walks a large fraction of the Java
  heap, pulling reclaimed heap pages back (the paper's best-known
  refault source, but responsible for only part of the total).
* **Service wakeups** — location listeners, sync adapters, push
  handlers touching native + file pages on short periods.

The §3.2 "buggy stay-awake" pathology (Facebook's battery-drain
release) adds a continuous low-grade activity loop.

All activity is gated on the app being in the background and unfrozen;
a frozen process schedules nothing (its tasks would not run anyway, and
a hibernated process cannot arm timers).
"""

from __future__ import annotations

from typing import List, Optional

from repro.android.app import AppState, Process
from repro.kernel.page import Page
from repro.kernel.slab import HOT, PAGE_SLAB
from repro.sched.task import Task, WorkItem

# Share of burst touches aimed at the hot working-set nucleus; the cold
# remainder is what generates refaults under memory pressure.
HOT_TOUCH_BIAS = 0.70
# Per-page CPU cost of a GC walk (mark/sweep work), ms.
GC_CPU_PER_PAGE_MS = 0.0015
GC_BASE_CPU_MS = 4.0
# Large page-touch batches are split into chunks of this many pages, one
# work item each: a task faulting in a big working set takes *simulated
# time* to do so, which keeps the memory deficit visible to concurrently
# running tasks (the substance of refault-induced thrashing).
TOUCH_CHUNK_PAGES = 96


def submit_touch(system, task, process, pages, cpu_ms: float,
                 label: str, on_complete=None) -> None:
    """Submit a page-touch burst as chunked work items on ``task``.

    ``pages`` may be slab ids (the hot path) or ``Page`` views (older
    callers and tests); views are converted once up front so the chunk
    closures run through :meth:`MobileSystem.touch_ids`.
    """
    if not pages:
        if cpu_ms > 0 or on_complete is not None:
            task.submit(WorkItem(cpu_ms=cpu_ms, on_complete=on_complete, label=label))
        return
    if not isinstance(pages[0], int):
        pages = [page.page_id for page in pages]
    chunks = [
        pages[i : i + TOUCH_CHUNK_PAGES]
        for i in range(0, len(pages), TOUCH_CHUNK_PAGES)
    ]
    cpu_share = cpu_ms / len(chunks)
    for index, chunk in enumerate(chunks):
        last = index == len(chunks) - 1
        task.submit(
            WorkItem(
                cpu_ms=cpu_share,
                touch=lambda c=chunk: system.touch_ids(process, c),
                on_complete=on_complete if last else None,
                label=label,
            )
        )


class PageSampler:
    """Hot-biased page sampling over a process's page table."""

    # Segment mix of ordinary BG bursts: apps re-touch their code and
    # resource files heavily (which is why ~half of the paper's
    # refaulted pages are file-backed, Figure 4), the native heap next,
    # and the java heap least — idle GC covers the java heap separately.
    BURST_MIX = (("file", 0.55), ("native", 0.33), ("java", 0.12))

    # Launch-only garbage: this index slice of every segment is touched
    # during start-up (it is part of the cold-launch resident set) but
    # never again — initialization data, one-shot caches.  When evicted
    # it never refaults, which is what keeps the system-wide refault
    # ratio at the paper's ~39% instead of ~100%.
    GARBAGE_SLICE = (0.38, 0.55)

    @classmethod
    def _live(cls, items: list) -> list:
        lo = int(len(items) * cls.GARBAGE_SLICE[0])
        hi = int(len(items) * cls.GARBAGE_SLICE[1])
        return items[:lo] + items[hi:]

    def __init__(self, process: Process, rng):
        self.rng = rng
        # Primary state is slab ids; the object-returning accessors
        # below materialise views for callers (and tests) that want
        # ``Page`` semantics.
        table = process.page_table
        flags = PAGE_SLAB.flags
        self.java_ids: List[int] = self._live(table.ids_of("java_heap"))
        self.native_ids: List[int] = self._live(table.ids_of("native_heap"))
        self.file_ids: List[int] = self._live(table.ids_of("file_map"))
        self.all_ids: List[int] = self.java_ids + self.native_ids + self.file_ids
        self.hot_ids: List[int] = [i for i in self.all_ids if flags[i] & HOT]
        self._segments = {
            "java": self.java_ids,
            "native": self.native_ids,
            "file": self.file_ids,
        }
        self._hot_segments = {
            name: [i for i in ids if flags[i] & HOT]
            for name, ids in self._segments.items()
        }

    # --- object API (views; not used on hot paths) ---------------------
    @staticmethod
    def _views(ids: List[int]) -> List[Page]:
        view = PAGE_SLAB.view
        return [view(i) for i in ids]

    @property
    def java(self) -> List[Page]:
        return self._views(self.java_ids)

    @property
    def native(self) -> List[Page]:
        return self._views(self.native_ids)

    @property
    def file(self) -> List[Page]:
        return self._views(self.file_ids)

    @property
    def all_pages(self) -> List[Page]:
        return self._views(self.all_ids)

    @property
    def hot_pages(self) -> List[Page]:
        return self._views(self.hot_ids)

    def sample(self, count: int, hot_bias: float = HOT_TOUCH_BIAS) -> List[Page]:
        return self._views(self.sample_ids(count, hot_bias))

    def sample_burst(self, count: int, hot_bias: float = HOT_TOUCH_BIAS) -> List[Page]:
        return self._views(self.sample_burst_ids(count, hot_bias))

    def sample_gc(self, frac: float) -> List[Page]:
        return self._views(self.sample_gc_ids(frac))

    # --- id API (the hot path) -----------------------------------------
    def sample_ids(self, count: int, hot_bias: float = HOT_TOUCH_BIAS) -> List[int]:
        """Sample ``count`` page ids, ``hot_bias`` of them hot."""
        if not self.all_ids:
            return []
        picks: List[int] = []
        rnd = self.rng.random
        randbelow = self.rng.randbelow
        append = picks.append
        hot_ids = self.hot_ids
        all_ids = self.all_ids
        n_hot = len(hot_ids)
        n_all = len(all_ids)
        for _ in range(count):
            if n_hot and rnd() < hot_bias:
                append(hot_ids[randbelow(n_hot)])
            else:
                append(all_ids[randbelow(n_all)])
        return picks

    def sample_burst_ids(self, count: int, hot_bias: float = HOT_TOUCH_BIAS) -> List[int]:
        """Sample a BG burst with the file/native/java segment mix."""
        picks: List[int] = []
        rnd = self.rng.random
        randbelow = self.rng.randbelow
        append = picks.append
        for name, weight in self.BURST_MIX:
            ids = self._segments[name]
            if not ids:
                continue
            hot = self._hot_segments[name]
            n_hot = len(hot)
            n_ids = len(ids)
            for _ in range(int(count * weight)):
                if n_hot and rnd() < hot_bias:
                    append(hot[randbelow(n_hot)])
                else:
                    append(ids[randbelow(n_ids)])
        return picks

    def sample_segment(self, items: list, count: int) -> list:
        """A contiguous slice; generic over id lists and view lists."""
        if not items:
            return []
        if count >= len(items):
            return list(items)
        start = self.rng.randint(0, len(items) - count)
        return items[start : start + count]

    def sample_gc_ids(self, frac: float) -> List[int]:
        """A GC cycle walks a contiguous fraction of the Java heap."""
        count = int(len(self.java_ids) * frac)
        return self.sample_segment(self.java_ids, count)


class BackgroundBehavior:
    """Drives one process's background activity loops."""

    def __init__(self, system, process: Process, task: Task,
                 gc_task: Optional[Task] = None):
        self.system = system
        self.process = process
        self.task = task
        self.gc_task = gc_task
        self.profile = process.app.profile
        # Namespaced by process *name* (stable across runs), never by
        # PID (a global counter that varies run to run).
        self.rng = system.rng.stream(f"behavior:{process.name}")
        self.sampler = PageSampler(process, self.rng)
        self.started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the activity loops (idempotent)."""
        if self.started:
            return
        self.started = True
        profile = self.profile
        if profile.bg_active or profile.buggy_stay_awake:
            self._schedule_burst(first=True)
        if (
            self.gc_task is not None
            and self.sampler.java_ids
            and profile.gc_touch_frac > 0
            and profile.bg_active
        ):
            # Idle GC only fires for apps whose runtime stays active in
            # the BG; fully-idle (cached, quiescent) apps defer it, which
            # is why the paper observes only ~4 apps frozen on average.
            self._schedule_gc(first=True)
        if profile.service_period_s is not None and self.process.main:
            self._schedule_service(first=True)
        if profile.buggy_stay_awake and self.process.main:
            self._schedule_buggy(first=True)

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------
    def _can_act(self) -> bool:
        """BG activity requires: process alive, app cached in BG, not frozen."""
        if not self.process.alive:
            return False
        app_state = self.process.app.state
        if app_state not in (AppState.CACHED, AppState.PERCEPTIBLE):
            return False
        return not self.system.freezer.is_frozen(self.process.pid)

    @property
    def _dead(self) -> bool:
        return not self.process.alive

    # ------------------------------------------------------------------
    # Main-thread bursts
    # ------------------------------------------------------------------
    def _schedule_burst(self, first: bool = False) -> None:
        delay_ms = self.rng.expovariate(1.0 / self.profile.bg_burst_period_s) * 1000.0
        if first:
            delay_ms *= self.rng.random()  # desynchronise app start-up
        self.system.sim.schedule(max(1.0, delay_ms), self._burst)

    def _burst(self) -> None:
        if self._dead:
            return
        if self._can_act() and not self.task.queue:
            profile = self.profile
            pages = self.sampler.sample_burst_ids(profile.bg_touch_pages)
            cpu = max(
                0.5,
                self.rng.lognormvariate(0.0, 0.5) * profile.bg_burst_cpu_ms,
            ) / self.system.spec.cpu_speed
            submit_touch(self.system, self.task, self.process, pages, cpu, "bg-burst")
        self._schedule_burst()

    # ------------------------------------------------------------------
    # Runtime GC (HeapTaskDaemon)
    # ------------------------------------------------------------------
    def _schedule_gc(self, first: bool = False) -> None:
        period = self.profile.gc_idle_period_s
        if period >= 1e8:
            return  # GC disabled (no managed runtime)
        delay_ms = self.rng.uniform(0.6, 1.4) * period * 1000.0
        if first:
            delay_ms *= self.rng.random()
        self.system.sim.schedule(max(1.0, delay_ms), self._gc_cycle)

    def _gc_cycle(self) -> None:
        if self._dead:
            return
        if (
            self._can_act()
            and not self.system.idle_gc_disabled
            and not self.gc_task.queue
        ):
            pages = self.sampler.sample_gc_ids(self.profile.gc_touch_frac)
            cpu = (GC_BASE_CPU_MS + len(pages) * GC_CPU_PER_PAGE_MS)
            cpu /= self.system.spec.cpu_speed
            submit_touch(self.system, self.gc_task, self.process, pages, cpu, "idle-gc")
        self._schedule_gc()

    # ------------------------------------------------------------------
    # Background services (location / sync / push)
    # ------------------------------------------------------------------
    def _schedule_service(self, first: bool = False) -> None:
        period = self.profile.service_period_s
        delay_ms = self.rng.expovariate(1.0 / period) * 1000.0
        if first:
            delay_ms *= self.rng.random()
        self.system.sim.schedule(max(1.0, delay_ms), self._service_wakeup)

    def _service_wakeup(self) -> None:
        if self._dead:
            return
        # A starved main thread does not take on new service work: jobs
        # skip when the previous batch is still pending (event-loop
        # back-pressure).  This is how priority demotion (UCSG) actually
        # reduces BG memory traffic.
        if self._can_act() and not self.task.queue:
            profile = self.profile
            # Services touch native + file pages (no java heap walk).
            count = profile.service_touch_pages
            native = self.sampler.sample_segment(self.sampler.native_ids, count // 2)
            files = self.sampler.sample_segment(self.sampler.file_ids, count - count // 2)
            pages = native + files
            cpu = profile.service_cpu_ms / self.system.spec.cpu_speed
            submit_touch(self.system, self.task, self.process, pages, cpu, "service")
        self._schedule_service()

    # ------------------------------------------------------------------
    # The stay-awake pathology
    # ------------------------------------------------------------------
    def _schedule_buggy(self, first: bool = False) -> None:
        delay_ms = self.rng.uniform(700.0, 1300.0)
        self.system.sim.schedule(delay_ms, self._buggy_spin)

    def _buggy_spin(self) -> None:
        if self._dead:
            return
        if self._can_act():
            pages = self.sampler.sample_ids(30, hot_bias=0.5)
            submit_touch(
                self.system, self.task, self.process, pages,
                2.0 / self.system.spec.cpu_speed, "stay-awake",
            )
        self._schedule_buggy()
