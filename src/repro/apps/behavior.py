"""Background behaviour generators (§3.2 root causes).

Each cached application keeps generating memory activity through three
channels the paper identifies:

* **Main-thread bursts** — ~58% of BG apps were observed running on
  CPUs; bursts touch a hot-biased sample of the app's pages, and the
  cold tail of those touches is what hits evicted pages and refaults.
* **Runtime GC** — ART's idle GC walks a large fraction of the Java
  heap, pulling reclaimed heap pages back (the paper's best-known
  refault source, but responsible for only part of the total).
* **Service wakeups** — location listeners, sync adapters, push
  handlers touching native + file pages on short periods.

The §3.2 "buggy stay-awake" pathology (Facebook's battery-drain
release) adds a continuous low-grade activity loop.

All activity is gated on the app being in the background and unfrozen;
a frozen process schedules nothing (its tasks would not run anyway, and
a hibernated process cannot arm timers).
"""

from __future__ import annotations

from typing import List, Optional

from repro.android.app import AppState, Process
from repro.kernel.page import Page
from repro.sched.task import Task, WorkItem

# Share of burst touches aimed at the hot working-set nucleus; the cold
# remainder is what generates refaults under memory pressure.
HOT_TOUCH_BIAS = 0.70
# Per-page CPU cost of a GC walk (mark/sweep work), ms.
GC_CPU_PER_PAGE_MS = 0.0015
GC_BASE_CPU_MS = 4.0
# Large page-touch batches are split into chunks of this many pages, one
# work item each: a task faulting in a big working set takes *simulated
# time* to do so, which keeps the memory deficit visible to concurrently
# running tasks (the substance of refault-induced thrashing).
TOUCH_CHUNK_PAGES = 96


def submit_touch(system, task, process, pages: List[Page], cpu_ms: float,
                 label: str, on_complete=None) -> None:
    """Submit a page-touch burst as chunked work items on ``task``."""
    if not pages:
        if cpu_ms > 0 or on_complete is not None:
            task.submit(WorkItem(cpu_ms=cpu_ms, on_complete=on_complete, label=label))
        return
    chunks = [
        pages[i : i + TOUCH_CHUNK_PAGES]
        for i in range(0, len(pages), TOUCH_CHUNK_PAGES)
    ]
    cpu_share = cpu_ms / len(chunks)
    for index, chunk in enumerate(chunks):
        last = index == len(chunks) - 1
        task.submit(
            WorkItem(
                cpu_ms=cpu_share,
                touch=lambda c=chunk: system.touch_pages(process, c),
                on_complete=on_complete if last else None,
                label=label,
            )
        )


class PageSampler:
    """Hot-biased page sampling over a process's page table."""

    # Segment mix of ordinary BG bursts: apps re-touch their code and
    # resource files heavily (which is why ~half of the paper's
    # refaulted pages are file-backed, Figure 4), the native heap next,
    # and the java heap least — idle GC covers the java heap separately.
    BURST_MIX = (("file", 0.55), ("native", 0.33), ("java", 0.12))

    # Launch-only garbage: this index slice of every segment is touched
    # during start-up (it is part of the cold-launch resident set) but
    # never again — initialization data, one-shot caches.  When evicted
    # it never refaults, which is what keeps the system-wide refault
    # ratio at the paper's ~39% instead of ~100%.
    GARBAGE_SLICE = (0.38, 0.55)

    @classmethod
    def _live(cls, pages: List[Page]) -> List[Page]:
        lo = int(len(pages) * cls.GARBAGE_SLICE[0])
        hi = int(len(pages) * cls.GARBAGE_SLICE[1])
        return pages[:lo] + pages[hi:]

    def __init__(self, process: Process, rng):
        self.rng = rng
        self.java: List[Page] = self._live(process.page_table.pages_of("java_heap"))
        self.native: List[Page] = self._live(process.page_table.pages_of("native_heap"))
        self.file: List[Page] = self._live(process.page_table.pages_of("file_map"))
        self.all_pages: List[Page] = self.java + self.native + self.file
        self.hot_pages: List[Page] = [p for p in self.all_pages if p.hot]
        self._segments = {
            "java": self.java,
            "native": self.native,
            "file": self.file,
        }
        self._hot_segments = {
            name: [p for p in pages if p.hot]
            for name, pages in self._segments.items()
        }

    def sample(self, count: int, hot_bias: float = HOT_TOUCH_BIAS) -> List[Page]:
        """Sample ``count`` pages, ``hot_bias`` of them from the hot set."""
        if not self.all_pages:
            return []
        picks: List[Page] = []
        rnd = self.rng.random
        randbelow = self.rng.randbelow
        append = picks.append
        hot_pages = self.hot_pages
        all_pages = self.all_pages
        n_hot = len(hot_pages)
        n_all = len(all_pages)
        for _ in range(count):
            if n_hot and rnd() < hot_bias:
                append(hot_pages[randbelow(n_hot)])
            else:
                append(all_pages[randbelow(n_all)])
        return picks

    def sample_burst(self, count: int, hot_bias: float = HOT_TOUCH_BIAS) -> List[Page]:
        """Sample a BG burst with the file/native/java segment mix."""
        picks: List[Page] = []
        rnd = self.rng.random
        randbelow = self.rng.randbelow
        append = picks.append
        for name, weight in self.BURST_MIX:
            pages = self._segments[name]
            if not pages:
                continue
            hot = self._hot_segments[name]
            n_hot = len(hot)
            n_pages = len(pages)
            for _ in range(int(count * weight)):
                if n_hot and rnd() < hot_bias:
                    append(hot[randbelow(n_hot)])
                else:
                    append(pages[randbelow(n_pages)])
        return picks

    def sample_segment(self, pages: List[Page], count: int) -> List[Page]:
        if not pages:
            return []
        if count >= len(pages):
            return list(pages)
        start = self.rng.randint(0, len(pages) - count)
        return pages[start : start + count]

    def sample_gc(self, frac: float) -> List[Page]:
        """A GC cycle walks a contiguous fraction of the Java heap."""
        count = int(len(self.java) * frac)
        return self.sample_segment(self.java, count)


class BackgroundBehavior:
    """Drives one process's background activity loops."""

    def __init__(self, system, process: Process, task: Task,
                 gc_task: Optional[Task] = None):
        self.system = system
        self.process = process
        self.task = task
        self.gc_task = gc_task
        self.profile = process.app.profile
        # Namespaced by process *name* (stable across runs), never by
        # PID (a global counter that varies run to run).
        self.rng = system.rng.stream(f"behavior:{process.name}")
        self.sampler = PageSampler(process, self.rng)
        self.started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the activity loops (idempotent)."""
        if self.started:
            return
        self.started = True
        profile = self.profile
        if profile.bg_active or profile.buggy_stay_awake:
            self._schedule_burst(first=True)
        if (
            self.gc_task is not None
            and self.sampler.java
            and profile.gc_touch_frac > 0
            and profile.bg_active
        ):
            # Idle GC only fires for apps whose runtime stays active in
            # the BG; fully-idle (cached, quiescent) apps defer it, which
            # is why the paper observes only ~4 apps frozen on average.
            self._schedule_gc(first=True)
        if profile.service_period_s is not None and self.process.main:
            self._schedule_service(first=True)
        if profile.buggy_stay_awake and self.process.main:
            self._schedule_buggy(first=True)

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------
    def _can_act(self) -> bool:
        """BG activity requires: process alive, app cached in BG, not frozen."""
        if not self.process.alive:
            return False
        app_state = self.process.app.state
        if app_state not in (AppState.CACHED, AppState.PERCEPTIBLE):
            return False
        return not self.system.freezer.is_frozen(self.process.pid)

    @property
    def _dead(self) -> bool:
        return not self.process.alive

    # ------------------------------------------------------------------
    # Main-thread bursts
    # ------------------------------------------------------------------
    def _schedule_burst(self, first: bool = False) -> None:
        delay_ms = self.rng.expovariate(1.0 / self.profile.bg_burst_period_s) * 1000.0
        if first:
            delay_ms *= self.rng.random()  # desynchronise app start-up
        self.system.sim.schedule(max(1.0, delay_ms), self._burst)

    def _burst(self) -> None:
        if self._dead:
            return
        if self._can_act() and not self.task.queue:
            profile = self.profile
            pages = self.sampler.sample_burst(profile.bg_touch_pages)
            cpu = max(
                0.5,
                self.rng.lognormvariate(0.0, 0.5) * profile.bg_burst_cpu_ms,
            ) / self.system.spec.cpu_speed
            submit_touch(self.system, self.task, self.process, pages, cpu, "bg-burst")
        self._schedule_burst()

    # ------------------------------------------------------------------
    # Runtime GC (HeapTaskDaemon)
    # ------------------------------------------------------------------
    def _schedule_gc(self, first: bool = False) -> None:
        period = self.profile.gc_idle_period_s
        if period >= 1e8:
            return  # GC disabled (no managed runtime)
        delay_ms = self.rng.uniform(0.6, 1.4) * period * 1000.0
        if first:
            delay_ms *= self.rng.random()
        self.system.sim.schedule(max(1.0, delay_ms), self._gc_cycle)

    def _gc_cycle(self) -> None:
        if self._dead:
            return
        if (
            self._can_act()
            and not self.system.idle_gc_disabled
            and not self.gc_task.queue
        ):
            pages = self.sampler.sample_gc(self.profile.gc_touch_frac)
            cpu = (GC_BASE_CPU_MS + len(pages) * GC_CPU_PER_PAGE_MS)
            cpu /= self.system.spec.cpu_speed
            submit_touch(self.system, self.gc_task, self.process, pages, cpu, "idle-gc")
        self._schedule_gc()

    # ------------------------------------------------------------------
    # Background services (location / sync / push)
    # ------------------------------------------------------------------
    def _schedule_service(self, first: bool = False) -> None:
        period = self.profile.service_period_s
        delay_ms = self.rng.expovariate(1.0 / period) * 1000.0
        if first:
            delay_ms *= self.rng.random()
        self.system.sim.schedule(max(1.0, delay_ms), self._service_wakeup)

    def _service_wakeup(self) -> None:
        if self._dead:
            return
        # A starved main thread does not take on new service work: jobs
        # skip when the previous batch is still pending (event-loop
        # back-pressure).  This is how priority demotion (UCSG) actually
        # reduces BG memory traffic.
        if self._can_act() and not self.task.queue:
            profile = self.profile
            # Services touch native + file pages (no java heap walk).
            count = profile.service_touch_pages
            native = self.sampler.sample_segment(self.sampler.native, count // 2)
            files = self.sampler.sample_segment(self.sampler.file, count - count // 2)
            pages = native + files
            cpu = profile.service_cpu_ms / self.system.spec.cpu_speed
            submit_touch(self.system, self.task, self.process, pages, cpu, "service")
        self._schedule_service()

    # ------------------------------------------------------------------
    # The stay-awake pathology
    # ------------------------------------------------------------------
    def _schedule_buggy(self, first: bool = False) -> None:
        delay_ms = self.rng.uniform(700.0, 1300.0)
        self.system.sim.schedule(delay_ms, self._buggy_spin)

    def _buggy_spin(self) -> None:
        if self._dead:
            return
        if self._can_act():
            pages = self.sampler.sample(30, hot_bias=0.5)
            submit_touch(
                self.system, self.task, self.process, pages,
                2.0 / self.system.spec.cpu_speed, "stay-awake",
            )
        self._schedule_buggy()
