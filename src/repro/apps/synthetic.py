"""Synthetic calibration workloads: memtester and cputester (§2.2.3).

* ``memtester`` occupies memory comparable to the BG-apps case but
  rarely demands reclaimed pages back: it touches its allocation once
  (sequentially) and then only revisits a tiny hot subset.  This is the
  paper's separation experiment showing that memory *occupancy* alone
  causes a transient FPS dip, while *refaults* cause sustained damage.
* ``cputester`` occupies ~20% CPU (matching the measured BG-app CPU
  consumption) with a negligible memory footprint, showing CPU
  contention is not the root cause (FPS only drops ~6%).
"""

from __future__ import annotations

from repro.apps.profiles import AppCategory, AppProfile


def memtester_profile(total_mb: int = 3400) -> AppProfile:
    """A memory hog that does not refault (open-source memtester [58]).

    ``total_mb`` defaults to roughly the combined footprint of eight
    cached applications so the occupancy matches the BG-apps case.
    """
    return AppProfile(
        package="memtester",
        category=AppCategory.UTILITY,
        java_heap_mb=0 if total_mb <= 0 else 1,
        native_heap_mb=max(1, total_mb - 2),
        file_mb=1,
        hot_frac=0.02,  # only a tiny nucleus is ever re-touched
        file_dirty_frac=0.0,
        bg_active=True,
        bg_burst_period_s=2.0,
        bg_burst_cpu_ms=2.0,
        bg_touch_pages=8,  # revisits only its hot nucleus: no refaults
        gc_idle_period_s=1e9,  # no managed runtime, no GC
        gc_touch_frac=0.0,
        service_period_s=None,
        process_count=1,
        cold_launch_cpu_ms=50.0,
        cold_resident_frac=0.97,  # memtester touches its whole buffer immediately
    )


def cputester_profile(utilization_frac: float = 0.20, cores: int = 8) -> AppProfile:
    """A CPU spinner with a tiny footprint (the paper's self-built tool).

    The burst cadence is tuned so that the spinner consumes about
    ``utilization_frac`` of total CPU capacity: with one task issuing a
    burst of ``cpu_ms`` every ``period``, utilization is
    ``cpu_ms / period / cores``.
    """
    if not 0.0 < utilization_frac <= 1.0:
        raise ValueError("utilization_frac must be in (0, 1]")
    period_s = 0.1
    # Spread the load over several spinner processes so no single task
    # needs more than one core's worth of time per period.
    spinner_processes = max(2, int(utilization_frac * cores + 0.999))
    burst_cpu_ms = utilization_frac * cores * period_s * 1000.0 / spinner_processes
    return AppProfile(
        package="cputester",
        category=AppCategory.UTILITY,
        java_heap_mb=1,
        native_heap_mb=12,
        file_mb=4,
        hot_frac=0.5,
        file_dirty_frac=0.0,
        bg_active=True,
        bg_burst_period_s=period_s,
        bg_burst_cpu_ms=burst_cpu_ms,
        bg_touch_pages=4,
        gc_idle_period_s=1e9,
        gc_touch_frac=0.0,
        service_period_s=None,
        process_count=spinner_processes,
        cold_launch_cpu_ms=30.0,
    )
