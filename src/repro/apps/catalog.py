"""The application catalog (paper Table 3).

Twenty popular applications across five categories, with per-app
behaviour profiles.  Footprints and background behaviours are synthetic
but category-faithful: social apps carry large java heaps and frequent
sync/push wakeups; games carry large native heaps but are mostly quiet
when cached; multimedia apps mix large native buffers with file-backed
caches; and a few apps exhibit the pathologies §3.2 documents (location
listeners, the Facebook-style stay-awake bug).

Sizing rationale: on the paper's devices six (Pixel3) to eight (P20)
cached applications fully exhaust memory ("more than 90% of the memory
space is unavailable", §2.2.3), so the catalog's average footprint is
chosen to overflow the scaled device capacity by ~20-30% at those
populations — the regime where the reclaim/refault loop of §2.2.3
operates.

``extended_catalog`` doubles the population to 40 apps (category
variants) for the Figure 4 per-process-reclaim study.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.apps.profiles import AppCategory, AppProfile

_SOCIAL = dict(
    category=AppCategory.SOCIAL,
    hot_frac=0.20,
    bg_active=True,
    bg_burst_period_s=1.4,
    bg_burst_cpu_ms=7.0,
    bg_touch_pages=640,
    gc_idle_period_s=26.0,
    gc_touch_frac=0.6,
    service_period_s=4.0,
    service_touch_pages=200,
    frame_cpu_ms=7.0,
)

_MULTIMEDIA = dict(
    category=AppCategory.MULTIMEDIA,
    hot_frac=0.18,
    bg_active=True,
    bg_burst_period_s=2.2,
    bg_burst_cpu_ms=9.0,
    bg_touch_pages=720,
    gc_idle_period_s=35.0,
    gc_touch_frac=0.5,
    service_period_s=7.0,
    service_touch_pages=170,
)

_GAME = dict(
    category=AppCategory.GAME,
    hot_frac=0.25,
    bg_active=False,  # games are mostly quiet when cached
    bg_burst_period_s=9.0,
    bg_burst_cpu_ms=5.0,
    bg_touch_pages=280,
    gc_idle_period_s=60.0,
    gc_touch_frac=0.35,
    service_period_s=None,
)

_ECOMMERCE = dict(
    category=AppCategory.ECOMMERCE,
    hot_frac=0.20,
    bg_active=True,
    bg_burst_period_s=2.5,
    bg_burst_cpu_ms=6.0,
    bg_touch_pages=500,
    gc_idle_period_s=32.0,
    gc_touch_frac=0.55,
    service_period_s=8.0,
    service_touch_pages=150,
)

_UTILITY = dict(
    category=AppCategory.UTILITY,
    hot_frac=0.22,
    bg_active=True,
    bg_burst_period_s=2.1,
    bg_burst_cpu_ms=6.0,
    bg_touch_pages=540,
    gc_idle_period_s=38.0,
    gc_touch_frac=0.5,
    service_period_s=6.5,
    service_touch_pages=170,
)


def _app(package: str, base: dict, **overrides) -> AppProfile:
    params = dict(base)
    params.update(overrides)
    return AppProfile(package=package, **params)


def _build_catalog() -> Dict[str, AppProfile]:
    apps = [
        # --- Social -----------------------------------------------------
        _app(
            "Facebook", _SOCIAL,
            java_heap_mb=210, native_heap_mb=200, file_mb=210,
            buggy_stay_awake=True,  # the §3.2 buggy stay-awake release
            service_period_s=4.0,  # location + feed sync
            frame_cpu_ms=7.5, frame_touch_pages=34, frame_alloc_pages=7,
            content_fps=56.0,
            fg_alloc_burst_pages=200, fg_alloc_burst_period_s=6.0,
        ),
        _app(
            "Skype", _SOCIAL,
            java_heap_mb=150, native_heap_mb=170, file_mb=160,
            bg_burst_period_s=2.5,
        ),
        _app(
            "Twitter", _SOCIAL,
            java_heap_mb=190, native_heap_mb=160, file_mb=180,
            service_period_s=5.0,
        ),
        _app(
            "WeChat", _SOCIAL,
            java_heap_mb=250, native_heap_mb=210, file_mb=200,
            bg_burst_period_s=1.6,  # chat apps poll aggressively
        ),
        _app(
            "WhatsApp", _SOCIAL,
            java_heap_mb=160, native_heap_mb=190, file_mb=150,
            # S-A video call: content arrives at the remote camera rate.
            frame_cpu_ms=7.5, frame_cpu_jitter=1.8,
            frame_touch_pages=30, frame_alloc_pages=6,
            content_fps=46.0,
            # Video-call buffer renegotiation (resolution/codec changes)
            # periodically allocates fresh buffers.
            fg_alloc_burst_pages=280, fg_alloc_burst_period_s=8.0,
        ),
        # --- Multi-Media --------------------------------------------------
        _app(
            "Youtube", _MULTIMEDIA,
            java_heap_mb=170, native_heap_mb=280, file_mb=220,
        ),
        _app(
            "Netflix", _MULTIMEDIA,
            java_heap_mb=150, native_heap_mb=290, file_mb=210,
            bg_active=False,
        ),
        _app(
            "TikTok", _MULTIMEDIA,
            java_heap_mb=210, native_heap_mb=330, file_mb=260,
            # S-B short-video switching: a new video's buffers are
            # allocated at each swipe.
            frame_cpu_ms=8.0, frame_cpu_jitter=2.0,
            frame_touch_pages=36, frame_alloc_pages=7,
            content_fps=58.0,
            fg_alloc_burst_pages=360, fg_alloc_burst_period_s=7.0,
        ),
        # --- Game ---------------------------------------------------------
        _app(
            "AngryBird", _GAME,
            java_heap_mb=140, native_heap_mb=330, file_mb=200,
        ),
        _app(
            "ArenaOfValor", _GAME,
            java_heap_mb=170, native_heap_mb=520, file_mb=290,
        ),
        _app(
            "PUBGMobile", _GAME,
            java_heap_mb=190, native_heap_mb=650, file_mb=320,
            # S-D: memory-intensive real-time game; a new round battle
            # demands 100 MB+ of fresh allocations (§6.2.1).
            # Mid-range devices cap PUBG at 40 fps.
            frame_cpu_ms=10.5, frame_cpu_jitter=2.6,
            frame_touch_pages=42, frame_alloc_pages=5,
            content_fps=40.0,
            fg_alloc_burst_pages=1600, fg_alloc_burst_period_s=75.0,
            hot_frac=0.3,
        ),
        # --- E-Commerce -----------------------------------------------------
        _app(
            "Amazon", _ECOMMERCE,
            java_heap_mb=180, native_heap_mb=150, file_mb=200,
        ),
        _app(
            "PayPal", _ECOMMERCE,
            java_heap_mb=110, native_heap_mb=110, file_mb=140,
            bg_active=False,
        ),
        _app(
            "AliPay", _ECOMMERCE,
            java_heap_mb=200, native_heap_mb=160, file_mb=180,
        ),
        _app(
            "eBay", _ECOMMERCE,
            java_heap_mb=150, native_heap_mb=130, file_mb=160,
        ),
        _app(
            "Yelp", _ECOMMERCE,
            java_heap_mb=140, native_heap_mb=110, file_mb=150,
            service_period_s=7.0,  # location listener
        ),
        # --- Utility ---------------------------------------------------------
        _app(
            "Chrome", _UTILITY,
            java_heap_mb=190, native_heap_mb=280, file_mb=240,
            bg_burst_period_s=5.0,
        ),
        _app(
            "Camera", _UTILITY,
            java_heap_mb=100, native_heap_mb=230, file_mb=140,
            bg_active=False, service_period_s=None,
        ),
        _app(
            "Uber", _UTILITY,
            java_heap_mb=150, native_heap_mb=140, file_mb=160,
            service_period_s=3.5,  # aggressive location tracking
            service_touch_pages=100,
        ),
        _app(
            "GoogleMap", _UTILITY,
            java_heap_mb=170, native_heap_mb=240, file_mb=220,
            service_period_s=4.0,
            service_touch_pages=110,
        ),
    ]
    return {app.package: app for app in apps}


APP_CATALOG: Dict[str, AppProfile] = _build_catalog()

# The four scenario drivers (§2.2.1).
SCENARIO_APPS = {
    "S-A": "WhatsApp",
    "S-B": "TikTok",
    "S-C": "Facebook",
    "S-D": "PUBGMobile",
}


def get_profile(package: str) -> AppProfile:
    try:
        return APP_CATALOG[package]
    except KeyError:
        known = ", ".join(sorted(APP_CATALOG))
        raise KeyError(f"unknown app {package!r}; catalog has: {known}") from None


def catalog_apps() -> List[AppProfile]:
    """The 20 pre-installed applications (§5.1)."""
    return list(APP_CATALOG.values())


def extended_catalog() -> List[AppProfile]:
    """40 applications for the §3.2 / Figure 4 study.

    The second twenty are "Lite"/regional variants of the base catalog:
    same behaviour class, 0.8x footprint, slightly different BG cadence.
    """
    apps = catalog_apps()
    variants = []
    for app in apps:
        variants.append(
            replace(
                app,
                package=f"{app.package}-Lite",
                java_heap_mb=max(40, int(app.java_heap_mb * 0.8)),
                native_heap_mb=max(40, int(app.native_heap_mb * 0.8)),
                file_mb=max(40, int(app.file_mb * 0.8)),
                bg_burst_period_s=app.bg_burst_period_s * 1.4,
                buggy_stay_awake=False,
            )
        )
    return apps + variants
