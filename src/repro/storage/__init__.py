"""Block-layer and storage-device substrate.

Reclaimed anonymous pages travel to :class:`~repro.storage.zram.ZramDevice`
(a compressed RAM disk, as in the paper's §2.1); dirty file-backed pages
are written back to :class:`~repro.storage.flash.FlashDevice` (UFS/eMMC);
clean file pages are dropped and re-read from flash on refault.  Both
devices sit behind a FIFO :class:`~repro.storage.block.BlockQueue`, which
models I/O congestion: a burst of background refaults lengthens the queue
and thereby delays the foreground application's own faults.
"""

from repro.storage.block import BioRequest, BlockQueue, IoDirection, IoStats
from repro.storage.flash import FlashDevice
from repro.storage.zram import ZramDevice, ZramFullError

__all__ = [
    "BioRequest",
    "BlockQueue",
    "IoDirection",
    "IoStats",
    "FlashDevice",
    "ZramDevice",
    "ZramFullError",
]
