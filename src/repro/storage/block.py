"""Block layer: bio requests and a FIFO device queue.

The kernel transfers reclaimed pages as ``bio`` instances (in-flight
block-I/O requests, §2.1).  We model each device as a single-server FIFO
queue characterised by a per-page service latency: a request issued at
time ``t`` completes at ``max(t, busy_until) + pages * latency``.  This
captures the congestion effect central to the paper — background refault
storms lengthen the queue and delay foreground I/O — without simulating
the full request lifecycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class IoDirection(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(slots=True)
class BioRequest:
    """An in-flight block I/O request (one or more contiguous pages)."""

    direction: IoDirection
    pages: int
    issue_time: float
    complete_time: float = 0.0
    owner_pid: Optional[int] = None

    @property
    def latency(self) -> float:
        return self.complete_time - self.issue_time


@dataclass(slots=True)
class IoStats:
    """Cumulative I/O accounting for one device."""

    read_requests: int = 0
    write_requests: int = 0
    read_pages: int = 0
    write_pages: int = 0
    busy_ms: float = 0.0
    total_wait_ms: float = 0.0

    @property
    def total_requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def total_pages(self) -> int:
        return self.read_pages + self.write_pages

    def record(self, request: BioRequest, service_ms: float, wait_ms: float) -> None:
        if request.direction is IoDirection.READ:
            self.read_requests += 1
            self.read_pages += request.pages
        else:
            self.write_requests += 1
            self.write_pages += request.pages
        self.busy_ms += service_ms
        self.total_wait_ms += wait_ms


class BlockQueue:
    """Two-lane device queue: synchronous reads vs async write-back.

    Mobile I/O schedulers prioritise synchronous reads (page faults,
    launches) over write-back: a read queues FIFO behind other reads and
    suffers at most :data:`WRITE_INTERFERENCE_CAP_MS` of delay from the
    write lane (an in-flight flash program blocks reads briefly, but a
    deep write-back backlog does not starve them).  Writes queue FIFO
    among themselves and are asynchronous from the caller's view.
    """

    # Maximum delay the write lane can impose on one read.
    WRITE_INTERFERENCE_CAP_MS = 12.0

    def __init__(self, name: str, read_ms_per_page: float, write_ms_per_page: float):
        if read_ms_per_page <= 0 or write_ms_per_page <= 0:
            raise ValueError("per-page latencies must be positive")
        self.name = name
        self.read_ms_per_page = read_ms_per_page
        self.write_ms_per_page = write_ms_per_page
        self.read_busy_until: float = 0.0
        self.write_busy_until: float = 0.0
        self.stats = IoStats()

    def service_time(self, direction: IoDirection, pages: int) -> float:
        per_page = (
            self.read_ms_per_page
            if direction is IoDirection.READ
            else self.write_ms_per_page
        )
        return per_page * pages

    def submit(
        self,
        now: float,
        direction: IoDirection,
        pages: int,
        owner_pid: Optional[int] = None,
    ) -> BioRequest:
        """Enqueue a request at simulated time ``now``; returns the bio
        with its ``complete_time`` filled in.

        ``service_time`` and ``IoStats.record`` are inlined: every
        refault read and write-back batch passes through here, and the
        two extra frames per bio were measurable at the fault-loop
        level.  Arithmetic order matches the unfused version.
        """
        if pages <= 0:
            raise ValueError(f"bio must carry at least one page, got {pages}")
        stats = self.stats
        if direction is IoDirection.READ:
            service = self.read_ms_per_page * pages
            write_interference = self.write_busy_until - now
            if write_interference > 0.0:
                if write_interference > self.WRITE_INTERFERENCE_CAP_MS:
                    write_interference = self.WRITE_INTERFERENCE_CAP_MS
                start = now + write_interference
            else:
                start = now
            read_busy = self.read_busy_until
            if read_busy > start:
                start = read_busy
            complete = start + service
            self.read_busy_until = complete
            stats.read_requests += 1
            stats.read_pages += pages
        else:
            service = self.write_ms_per_page * pages
            write_busy = self.write_busy_until
            start = write_busy if write_busy > now else now
            complete = start + service
            self.write_busy_until = complete
            stats.write_requests += 1
            stats.write_pages += pages
        stats.busy_ms += service
        stats.total_wait_ms += start - now
        return BioRequest(direction=direction, pages=pages, issue_time=now,
                          complete_time=complete, owner_pid=owner_pid)

    def queue_delay(self, now: float) -> float:
        """How long a read issued now would wait before service."""
        write_interference = min(
            max(0.0, self.write_busy_until - now),
            self.WRITE_INTERFERENCE_CAP_MS,
        )
        return max(write_interference, self.read_busy_until - now, 0.0)

    def reset_stats(self) -> None:
        self.stats = IoStats()
