"""Flash storage device (UFS / eMMC) behind a block queue.

File-backed pages live here: clean pages are re-read on refault, dirty
pages are written back during reclaim.  Cold application launches also
stream code/resource pages from flash.  The device wraps a
:class:`~repro.storage.block.BlockQueue`, so read and write traffic
share one FIFO and congest each other — the mechanism behind the
paper's §2.2.3 observation that BG refaults raise I/O pressure on the
foreground app.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.specs import StorageSpec
from repro.storage.block import BioRequest, BlockQueue, IoDirection


class FlashDevice:
    """UFS or eMMC secondary storage."""

    def __init__(self, spec: StorageSpec, name: Optional[str] = None):
        self.spec = spec
        self.name = name or spec.kind
        self.queue = BlockQueue(
            name=self.name,
            read_ms_per_page=spec.read_ms,
            write_ms_per_page=spec.write_ms,
        )

    @property
    def stats(self):
        return self.queue.stats

    def read(self, now: float, pages: int, owner_pid: Optional[int] = None) -> BioRequest:
        """Synchronous page-in: caller blocks until ``complete_time``."""
        return self.queue.submit(now, IoDirection.READ, pages, owner_pid)

    def write(self, now: float, pages: int, owner_pid: Optional[int] = None) -> BioRequest:
        """Write-back: asynchronous from the caller's point of view, but
        still occupies the device and delays subsequent reads."""
        return self.queue.submit(now, IoDirection.WRITE, pages, owner_pid)

    def queue_delay(self, now: float) -> float:
        return self.queue.queue_delay(now)

    def reset_stats(self) -> None:
        self.queue.reset_stats()
