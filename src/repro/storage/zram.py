"""ZRAM: compressed in-memory swap device (§2.1).

Reclaimed anonymous pages are compressed and stored on a virtual RAM
disk.  Two properties matter for the reproduction:

* **Capacity.** The ZRAM *disksize* bounds how many anonymous pages can
  be swapped out (the paper's ``S^g`` = 512 MB on Pixel3, ``S^h`` =
  1024 MB on P20).
* **Pool charge.** Compressed data still lives in DRAM: storing a page
  only frees ``1 - 1/ratio`` of a page.  The memory manager queries
  :meth:`pool_pages` and charges it against total memory, so aggressive
  swapping yields diminishing returns, exactly as on a real device.

Compression and decompression are CPU work performed synchronously by
the reclaiming / faulting context; their cost is returned to the caller
for accounting.
"""

from __future__ import annotations

from typing import Callable, Optional, Set


class ZramFullError(RuntimeError):
    """Raised when storing into a ZRAM device whose disksize is exhausted."""


class ZramDevice:
    """Compressed RAM-disk swap target for anonymous pages."""

    def __init__(
        self,
        capacity_pages: int,
        compression_ratio: float = 2.8,
        compress_ms: float = 0.025,
        decompress_ms: float = 0.015,
    ):
        if capacity_pages <= 0:
            raise ValueError("zram capacity must be positive")
        if compression_ratio <= 1.0:
            raise ValueError("compression ratio must exceed 1.0")
        self.capacity_pages = capacity_pages
        self.compression_ratio = compression_ratio
        self.compress_ms = compress_ms
        self.decompress_ms = decompress_ms
        self._slots: Set[int] = set()
        self.stores: int = 0
        self.loads: int = 0
        self.failed_stores: int = 0
        # Observer hook: called with the stored-page count after every
        # change to the slot set.  The memory manager uses it to keep its
        # free-page accounting incremental instead of re-deriving the
        # pool charge on every watermark check.
        self.on_change: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    @property
    def stored_pages(self) -> int:
        return len(self._slots)

    @property
    def free_slots(self) -> int:
        return self.capacity_pages - len(self._slots)

    def pool_pages(self) -> float:
        """DRAM pages consumed by the compressed pool."""
        return len(self._slots) / self.compression_ratio

    def has_room(self, pages: int = 1) -> bool:
        return self.free_slots >= pages

    def contains(self, slot_id: int) -> bool:
        return slot_id in self._slots

    # ------------------------------------------------------------------
    def store(self, slot_id: int) -> float:
        """Compress one page into slot ``slot_id``.

        Returns the CPU cost in ms.  Raises :class:`ZramFullError` when
        the disksize is exhausted (callers fall back to keeping the page
        or triggering the LMK, as the kernel does).
        """
        if slot_id in self._slots:
            raise ValueError(f"zram slot {slot_id} already occupied")
        if not self.has_room():
            self.failed_stores += 1
            raise ZramFullError(
                f"zram full: {self.stored_pages}/{self.capacity_pages} slots used"
            )
        self._slots.add(slot_id)
        self.stores += 1
        if self.on_change is not None:
            self.on_change(len(self._slots))
        return self.compress_ms

    def load(self, slot_id: int) -> float:
        """Decompress the page in ``slot_id`` back to DRAM; frees the slot.

        Returns the CPU cost in ms.
        """
        try:
            self._slots.remove(slot_id)
        except KeyError:
            raise KeyError(f"zram slot {slot_id} is empty") from None
        self.loads += 1
        if self.on_change is not None:
            self.on_change(len(self._slots))
        return self.decompress_ms

    def discard(self, slot_id: int) -> None:
        """Drop a stored page without reading it (process death)."""
        if slot_id in self._slots:
            self._slots.discard(slot_id)
            if self.on_change is not None:
                self.on_change(len(self._slots))

    def reset_stats(self) -> None:
        self.stores = 0
        self.loads = 0
        self.failed_stores = 0
