"""A virtual ``/proc`` for the simulated device.

Real pressure debugging starts with ``cat /proc/pressure/memory`` and
``cat /proc/meminfo``; this module gives the simulator the same
inspectable surface.  A :class:`ProcFs` renders live files from the
authoritative kernel objects (nothing is cached — every read reflects
the current simulated state):

* ``meminfo`` — totals, free/available, LRU list sizes, swap (ZRAM),
  and the watermarks driving kswapd;
* ``vmstat`` — every :class:`~repro.kernel.vmstat.VmStat` counter;
* ``pressure/memory``, ``pressure/io``, ``pressure/cpu`` — the PSI
  ``some``/``full`` lines from :mod:`repro.obs.psi`;
* ``memcg/<package>/memory.stat`` and ``.../pressure`` — per-app
  residency and per-app PSI (memcg-style breakdowns);
* ``cgroup/freezer`` — which processes the freezer currently holds.

Each file renders both as Linux-flavoured text (:meth:`ProcFs.read`)
and as a JSON-friendly value (:meth:`ProcFs.snapshot`), which is what
the ``python -m repro dump`` subcommand emits.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs import psi as psi_mod

KIB_PER_SIM_PAGE_FACTOR = 4  # one real 4 KiB page = 4 KiB


class ProcFs:
    """Read-only virtual filesystem over one :class:`MobileSystem`."""

    def __init__(self, system):
        self.system = system

    # ------------------------------------------------------------------
    # Path surface
    # ------------------------------------------------------------------
    def paths(self) -> List[str]:
        """All readable paths (per-app entries follow live apps)."""
        fixed = [
            "meminfo",
            "vmstat",
            "pressure/memory",
            "pressure/io",
            "pressure/cpu",
            "cgroup/freezer",
        ]
        for package in sorted(self.system.apps):
            if self.system.apps[package].alive:
                fixed.append(f"memcg/{package}/memory.stat")
                fixed.append(f"memcg/{package}/pressure")
        return fixed

    def read(self, path: str) -> str:
        """Render one file as text; raises ``KeyError`` for unknown paths."""
        if path == "meminfo":
            return self._meminfo_text()
        if path == "vmstat":
            return self._vmstat_text()
        if path.startswith("pressure/"):
            resource = path.split("/", 1)[1]
            if resource in psi_mod.RESOURCES:
                return self.system.psi.pressure_file(resource)
        if path == "cgroup/freezer":
            return self._freezer_text()
        if path.startswith("memcg/"):
            parts = path.split("/")
            if len(parts) == 3:
                _, package, leaf = parts
                app = self.system.apps.get(package)
                if app is not None and leaf == "memory.stat":
                    return self._memcg_stat_text(app)
                if app is not None and leaf == "pressure":
                    return self._memcg_pressure_text(app)
        raise KeyError(f"no such proc file: {path!r} (see paths())")

    def dump_text(self, paths: List[str] = None) -> str:
        """Concatenated ``==> path <==`` sections (the ``tail``-style view)."""
        sections = []
        for path in paths if paths is not None else self.paths():
            sections.append(f"==> {path} <==\n{self.read(path)}")
        return "\n".join(sections)

    # ------------------------------------------------------------------
    # Structured snapshot (what ``dump --format json`` emits)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        system = self.system
        memcg: Dict[str, Any] = {}
        for package in sorted(system.apps):
            app = system.apps[package]
            if not app.alive:
                continue
            memcg[package] = {
                "memory.stat": self._memcg_stat_data(app),
                "pressure": self._memcg_pressure_data(app),
            }
        return {
            "meminfo": self._meminfo_data(),
            "vmstat": system.vmstat.snapshot(),
            "pressure": system.psi.as_dict(),
            "memcg": memcg,
            "cgroup": {"freezer": self._freezer_data()},
        }

    # ------------------------------------------------------------------
    # meminfo
    # ------------------------------------------------------------------
    def _kb(self, sim_pages: float) -> int:
        """Simulated pages → real KiB (one sim page = memory_scale × 4 KiB)."""
        scale = self.system.spec.memory_scale
        return int(sim_pages * scale * KIB_PER_SIM_PAGE_FACTOR)

    def _meminfo_data(self) -> Dict[str, int]:
        system = self.system
        mm = system.mm
        lru = mm.lru
        zram = system.zram
        spec = system.spec
        return {
            "MemTotal_kB": self._kb(mm.managed_pages),
            "MemFree_kB": self._kb(mm.free_pages),
            "MemAvailable_kB": self._kb(mm.available_pages),
            "Active(anon)_kB": self._kb(lru.active_anon),
            "Inactive(anon)_kB": self._kb(lru.inactive_anon),
            "Active(file)_kB": self._kb(lru.active_file),
            "Inactive(file)_kB": self._kb(lru.inactive_file),
            "SwapTotal_kB": self._kb(zram.capacity_pages),
            "SwapFree_kB": self._kb(zram.free_slots),
            "ZramPool_kB": self._kb(zram.pool_pages()),
            "WatermarkHigh_kB": self._kb(spec.high_watermark_pages),
            "WatermarkLow_kB": self._kb(spec.low_watermark_pages),
            "WatermarkMin_kB": self._kb(spec.min_watermark_pages),
        }

    def _meminfo_text(self) -> str:
        lines = []
        for key, kb in self._meminfo_data().items():
            label = key[: -len("_kB")] + ":"
            lines.append(f"{label:<18}{kb:>10} kB")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # vmstat
    # ------------------------------------------------------------------
    def _vmstat_text(self) -> str:
        lines = []
        for name, value in self.system.vmstat.snapshot().items():
            rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
            lines.append(f"{name} {rendered}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # memcg (per-app)
    # ------------------------------------------------------------------
    def _memcg_stat_data(self, app) -> Dict[str, Any]:
        system = self.system
        resident = app.resident_pages()
        total = app.total_pages()
        swapped = 0
        for page in app.all_pages():
            if not page.present and page.is_anon and system.zram.contains(page.page_id):
                swapped += 1
        frozen = sum(
            1 for pid in app.pids if system.freezer.is_frozen(pid)
        )
        return {
            "state": app.state.value,
            "uid": app.uid,
            "oom_score_adj": app.adj,
            "processes": len(app.processes),
            "frozen_processes": frozen,
            "resident_pages": resident,
            "resident_kB": self._kb(resident),
            "swapped_pages": swapped,
            "swapped_kB": self._kb(swapped),
            "total_pages": total,
        }

    def _memcg_stat_text(self, app) -> str:
        lines = [f"{k} {v}" for k, v in self._memcg_stat_data(app).items()]
        return "\n".join(lines) + "\n"

    def _memcg_pressure_data(self, app) -> Dict[str, Any]:
        psi = self.system.psi
        now = psi.clock()
        group = psi.groups.get(app.uid)
        if group is None:
            group = psi_mod.PsiGroup(psi.update_ms)  # all-zero rendering
        return {
            resource: group.pressure_dict(resource, now)
            for resource in psi_mod.RESOURCES
        }

    def _memcg_pressure_text(self, app) -> str:
        psi = self.system.psi
        now = psi.clock()
        group = psi.groups.get(app.uid)
        if group is None:
            group = psi_mod.PsiGroup(psi.update_ms)
        sections = []
        for resource in psi_mod.RESOURCES:
            sections.append(f"{resource}:")
            sections.append(group.pressure_file(resource, now).rstrip("\n"))
        return "\n".join(sections) + "\n"

    # ------------------------------------------------------------------
    # freezer cgroup
    # ------------------------------------------------------------------
    def _freezer_data(self) -> Dict[str, Any]:
        system = self.system
        apps = {}
        for package in sorted(system.apps):
            app = system.apps[package]
            if not app.alive:
                continue
            frozen = [pid for pid in app.pids if system.freezer.is_frozen(pid)]
            if frozen:
                apps[package] = {"frozen_pids": frozen, "processes": len(app.pids)}
        return {
            "frozen_processes": len(system.freezer.frozen_pids),
            "freeze_count": system.freezer.freeze_count,
            "thaw_count": system.freezer.thaw_count,
            "apps": apps,
        }

    def _freezer_text(self) -> str:
        data = self._freezer_data()
        lines = [
            f"frozen_processes {data['frozen_processes']}",
            f"freeze_count {data['freeze_count']}",
            f"thaw_count {data['thaw_count']}",
        ]
        for package, entry in data["apps"].items():
            pids = " ".join(str(pid) for pid in entry["frozen_pids"])
            lines.append(
                f"app {package} frozen {len(entry['frozen_pids'])}/"
                f"{entry['processes']} pids {pids}"
            )
        return "\n".join(lines) + "\n"
