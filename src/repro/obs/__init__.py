"""Observability: pressure-stall information and procfs-style introspection.

``repro.obs`` is the simulator's "one queryable source of truth":

* :mod:`repro.obs.psi` — Linux-faithful Pressure Stall Information for
  the memory, io, and cpu resources, fed by the kernel/sched/storage
  stall sites and exposed as ``avg10``/``avg60``/``avg300`` windows plus
  total stall clocks, with per-app (memcg-style) breakdowns and
  threshold triggers policies can subscribe to.
* :mod:`repro.obs.procfs` — a virtual ``/proc`` registry rendering live
  ``meminfo``, ``vmstat``, ``pressure/{memory,io,cpu}``, per-app memcg
  stat files and the freezer cgroup state from the authoritative kernel
  objects, as text or JSON.
* :mod:`repro.obs.metrics` — a process-wide metrics registry (monotonic
  counters, gauges, log-bucketed latency histograms) with Prometheus
  text exposition, used by the serve control plane's ``GET /metrics``
  endpoint, plus RSS/tracemalloc memory-accounting helpers.
"""

from repro.obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    get_registry,
    latency_summary,
    memory_snapshot,
    read_rss_bytes,
    validate_exposition,
)
from repro.obs.psi import (
    PSI_UPDATE_MS,
    PsiEvent,
    PsiGroup,
    PsiLine,
    PsiMonitor,
    PsiTrigger,
    StallClock,
)
from repro.obs.procfs import ProcFs

__all__ = [
    "EXPOSITION_CONTENT_TYPE",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "PSI_UPDATE_MS",
    "ProcFs",
    "PsiEvent",
    "PsiGroup",
    "PsiLine",
    "PsiMonitor",
    "PsiTrigger",
    "StallClock",
    "get_registry",
    "latency_summary",
    "memory_snapshot",
    "read_rss_bytes",
    "validate_exposition",
]
