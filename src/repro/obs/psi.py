"""Pressure Stall Information (PSI) on the simulated clock.

Android's real memory-management stack reads its pressure signal from
Linux PSI (``/proc/pressure/memory``): lmkd polls the ``some``/``full``
stall clocks and their ``avg10``/``avg60``/``avg300`` exponentially
weighted averages to decide when to kill.  This module rebuilds that
facility for the simulator so policies and operators get the same
standardized signal instead of raw vmstat counters.

Semantics
---------
Per resource (``memory``, ``io``, ``cpu``) two stall clocks run:

* ``some`` — wall-clock time during which **at least one** task was
  stalled on the resource.  Overlapping stalls from different tasks are
  merged (coverage, not a sum), so ``some`` can never exceed wall-clock
  time — exactly the Linux invariant.
* ``full`` — wall-clock time during which productive work was entirely
  blocked.  Linux defines this as "all non-idle tasks stalled
  simultaneously"; the simulator uses the *foreground-blocked*
  approximation: a stall is ``full`` when the task the user is
  interacting with (the foreground app's allocation/fault path) is the
  one stalled, since that is precisely the wasted time the paper's user
  experience metrics measure.  ``cpu`` has no system-level ``full``
  time, as in Linux (the line is rendered but stays zero).

Stall *sites* feed the monitor: direct-reclaim entry and allocator
contention (:mod:`repro.kernel.mm` via its callers), refault-driven
swap-ins and flash read waits (:mod:`repro.kernel.page_fault`), kswapd
reclaim quanta (:mod:`repro.kernel.reclaim`), and runnable-but-not-
running time (:mod:`repro.sched.cfs`).

Averages follow the kernel's ``update_averages``: every update period
(2 s wall time in Linux; configurable simulated ms here) the per-period
stall ratio is folded into three EWMA windows with
``alpha = 1 - exp(-period / window)``.

Per-app (memcg-style) groups keyed by UID receive the same accounting
for stalls attributable to one application, and threshold triggers fire
a callback when the windowed stall exceeds a budget — the mechanism
lmkd's PSI triggers use — so policies can subscribe to pressure events.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

# Resources (Linux /proc/pressure file names).
MEMORY = "memory"
IO = "io"
CPU = "cpu"
RESOURCES = (MEMORY, IO, CPU)

# Stall kinds.
SOME = "some"
FULL = "full"

# Averaging windows (simulated ms) and the update period.  Linux updates
# every 2 s; the simulator defaults to 1 s so short scenario runs still
# chart a usable avg10.
PSI_WINDOWS_MS = (10_000.0, 60_000.0, 300_000.0)
PSI_UPDATE_MS = 1_000.0

MS_TO_US = 1000.0


class StallClock:
    """Merged-interval stall clock (coverage, not a sum).

    Stall sites report intervals ``[start, end)`` whose *starts* are
    non-decreasing (they are always "now" on a monotone simulated
    clock); ends may extend into the future (an I/O completion time).
    Overlapping intervals are merged so the total counts wall-clock
    coverage, and :meth:`total` clips the still-open tail at the query
    time so a stall scheduled to end in the future accrues gradually.
    """

    __slots__ = ("_closed", "_open_start", "_open_end")

    def __init__(self) -> None:
        self._closed = 0.0  # total of fully-closed merged intervals
        self._open_start = 0.0
        self._open_end = 0.0  # open interval is empty while start >= end

    def add(self, start: float, end: float) -> None:
        """Record one stall interval; overlap with prior stalls merges."""
        if end <= start:
            return
        # Defensive clamp: a start before the open interval's start would
        # double-count already-covered time.
        if start < self._open_start:
            start = self._open_start
        if start <= self._open_end:
            self._open_end = max(self._open_end, end)
        else:
            self._closed += self._open_end - self._open_start
            self._open_start = start
            self._open_end = end

    def total(self, now: float) -> float:
        """Stall ms accrued up to ``now`` (open tail clipped at ``now``)."""
        total = self._closed
        if self._open_end > self._open_start and now > self._open_start:
            total += min(self._open_end, now) - self._open_start
        return total


class PsiWindowSet:
    """The avg10/avg60/avg300 EWMAs of one stall line.

    Each update folds the period's stall *ratio* (stall time / period,
    in [0, 1]) into every window with ``alpha = 1 - exp(-period/window)``
    — the kernel's ``calc_avgs``.
    """

    __slots__ = ("avgs", "_alphas")

    def __init__(self, update_ms: float, windows_ms=PSI_WINDOWS_MS):
        self.avgs: List[float] = [0.0 for _ in windows_ms]
        self._alphas = tuple(
            1.0 - math.exp(-update_ms / window) for window in windows_ms
        )

    def update(self, ratio: float) -> None:
        for i, alpha in enumerate(self._alphas):
            self.avgs[i] += alpha * (ratio - self.avgs[i])

    @property
    def avg10(self) -> float:
        return self.avgs[0]

    @property
    def avg60(self) -> float:
        return self.avgs[1]

    @property
    def avg300(self) -> float:
        return self.avgs[2]


class PsiLine:
    """One ``some`` or ``full`` line: a stall clock plus its averages."""

    __slots__ = ("clock", "windows", "_last_total")

    def __init__(self, update_ms: float):
        self.clock = StallClock()
        self.windows = PsiWindowSet(update_ms)
        self._last_total = 0.0

    def update(self, now: float, period_ms: float) -> float:
        """Fold the last period into the averages; returns the ratio."""
        total = self.clock.total(now)
        delta = max(0.0, total - self._last_total)
        self._last_total = total
        ratio = min(1.0, delta / period_ms) if period_ms > 0 else 0.0
        self.windows.update(ratio)
        return ratio

    def total_us(self, now: float) -> int:
        return int(round(self.clock.total(now) * MS_TO_US))

    def format(self, now: float) -> str:
        w = self.windows
        return (
            f"avg10={w.avg10 * 100.0:.2f} avg60={w.avg60 * 100.0:.2f} "
            f"avg300={w.avg300 * 100.0:.2f} total={self.total_us(now)}"
        )

    def as_dict(self, now: float) -> Dict[str, float]:
        w = self.windows
        return {
            "avg10": round(w.avg10 * 100.0, 4),
            "avg60": round(w.avg60 * 100.0, 4),
            "avg300": round(w.avg300 * 100.0, 4),
            "total_us": self.total_us(now),
        }


class PsiGroup:
    """One pressure domain: the whole system or one app (memcg-style)."""

    def __init__(self, update_ms: float = PSI_UPDATE_MS):
        self.lines: Dict[Tuple[str, str], PsiLine] = {
            (resource, kind): PsiLine(update_ms)
            for resource in RESOURCES
            for kind in (SOME, FULL)
        }
        # Per-resource (some, full) stall-clock pairs: record() runs on
        # every stall site and this skips the tuple-key dict lookups.
        self._clock_pairs = {
            resource: (
                self.lines[(resource, SOME)].clock,
                self.lines[(resource, FULL)].clock,
            )
            for resource in RESOURCES
        }

    def record(
        self, resource: str, start: float, dur_ms: float, full: bool = False
    ) -> None:
        if dur_ms <= 0.0:
            return
        end = start + dur_ms
        some_clock, full_clock = self._clock_pairs[resource]
        some_clock.add(start, end)
        # System-level cpu has no full time (Linux renders the line as
        # zeros); group-level cpu full is accepted, as in cgroup2.
        if full:
            full_clock.add(start, end)

    def update(self, now: float, period_ms: float) -> None:
        for line in self.lines.values():
            line.update(now, period_ms)

    # ------------------------------------------------------------------
    def line(self, resource: str, kind: str = SOME) -> PsiLine:
        return self.lines[(resource, kind)]

    def avg10(self, resource: str, kind: str = SOME) -> float:
        """Latest 10 s EWMA as a fraction in [0, 1]."""
        return self.lines[(resource, kind)].windows.avg10

    def pressure_file(self, resource: str, now: float) -> str:
        """The two-line ``/proc/pressure/<resource>`` rendering."""
        return (
            f"some {self.lines[(resource, SOME)].format(now)}\n"
            f"full {self.lines[(resource, FULL)].format(now)}\n"
        )

    def pressure_dict(self, resource: str, now: float) -> Dict[str, Dict[str, float]]:
        return {
            SOME: self.lines[(resource, SOME)].as_dict(now),
            FULL: self.lines[(resource, FULL)].as_dict(now),
        }


@dataclass
class PsiEvent:
    """Delivered to trigger subscribers when a stall budget is exceeded."""

    resource: str
    kind: str
    stall_ms: float  # stall accrued within the trigger window
    window_ms: float
    threshold_ms: float
    now_ms: float


class PsiTrigger:
    """One lmkd-style trigger: "≥ threshold stall within window".

    Checked at every monitor update; fires at most once per window
    (the kernel's trigger rate limit).
    """

    def __init__(
        self,
        resource: str,
        kind: str,
        threshold_ms: float,
        window_ms: float,
        callback: Callable[[PsiEvent], None],
    ):
        if resource not in RESOURCES:
            raise ValueError(f"unknown PSI resource {resource!r}")
        if kind not in (SOME, FULL):
            raise ValueError(f"unknown PSI kind {kind!r}")
        if threshold_ms <= 0 or window_ms <= 0:
            raise ValueError("trigger threshold and window must be positive")
        if threshold_ms > window_ms:
            raise ValueError("trigger threshold cannot exceed its window")
        self.resource = resource
        self.kind = kind
        self.threshold_ms = threshold_ms
        self.window_ms = window_ms
        self.callback = callback
        self.fire_count = 0
        self._history: Deque[Tuple[float, float]] = deque()
        self._baseline_total = 0.0
        self._last_fire = -math.inf

    def check(self, group: PsiGroup, now: float) -> None:
        total = group.lines[(self.resource, self.kind)].clock.total(now)
        self._history.append((now, total))
        while self._history and self._history[0][0] <= now - self.window_ms:
            self._baseline_total = self._history.popleft()[1]
        windowed = total - self._baseline_total
        if windowed >= self.threshold_ms and now - self._last_fire >= self.window_ms:
            self._last_fire = now
            self.fire_count += 1
            self.callback(
                PsiEvent(
                    resource=self.resource,
                    kind=self.kind,
                    stall_ms=windowed,
                    window_ms=self.window_ms,
                    threshold_ms=self.threshold_ms,
                    now_ms=now,
                )
            )


class PsiMonitor:
    """System-wide + per-app PSI accounting on the simulated clock.

    The monitor is always on — recording a stall is a couple of float
    compares — and is advanced by a periodic :meth:`tick` the system
    layer schedules every ``update_ms`` simulated milliseconds.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        update_ms: float = PSI_UPDATE_MS,
    ):
        if update_ms <= 0:
            raise ValueError(f"PSI update period must be positive, got {update_ms}")
        self.clock = clock
        self.update_ms = update_ms
        self.system = PsiGroup(update_ms)
        self.groups: Dict[int, PsiGroup] = {}  # uid → per-app group
        self.triggers: List[PsiTrigger] = []
        self.updates = 0
        # Optional tracing hook (repro.trace.Tracer); None when disabled.
        self.tracer = None

    # ------------------------------------------------------------------
    # Recording (called from the stall sites)
    # ------------------------------------------------------------------
    def record(
        self,
        resource: str,
        dur_ms: float,
        start: Optional[float] = None,
        uid: Optional[int] = None,
        full: bool = False,
    ) -> None:
        """Record one stall of ``dur_ms`` on ``resource``.

        ``start`` defaults to the current simulated time; ``uid``
        additionally charges the stall to that app's group; ``full``
        marks it as blocking all productive (user-visible) work.
        """
        if dur_ms <= 0.0:
            return
        if start is None:
            start = self.clock()
        end = start + dur_ms
        # Inlined PsiGroup.record *and* StallClock.add: this is the
        # hottest call in the PSI layer (every stall site funnels
        # through it, several clocks per stall), so the merged-interval
        # update runs here as straight-line attribute ops.  The merge
        # semantics mirror StallClock.add exactly.
        if end <= start:
            return
        some_clock, full_clock = self.system._clock_pairs[resource]
        clocks = [some_clock]
        if full:
            clocks.append(full_clock)
        if uid is not None:
            group = self.groups.get(uid)
            if group is None:
                group = self.groups[uid] = PsiGroup(self.update_ms)
            some_clock, full_clock = group._clock_pairs[resource]
            clocks.append(some_clock)
            if full:
                clocks.append(full_clock)
        for clock in clocks:
            s = start
            if s < clock._open_start:
                s = clock._open_start
            if s <= clock._open_end:
                if end > clock._open_end:
                    clock._open_end = end
            else:
                clock._closed += clock._open_end - clock._open_start
                clock._open_start = s
                clock._open_end = end

    def group(self, uid: int) -> PsiGroup:
        """The per-app group for ``uid`` (created on first stall)."""
        existing = self.groups.get(uid)
        if existing is None:
            existing = self.groups[uid] = PsiGroup(self.update_ms)
        return existing

    # ------------------------------------------------------------------
    # Periodic update
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Fold the last period into every group's averages."""
        now = self.clock()
        self.system.update(now, self.update_ms)
        for group in self.groups.values():
            group.update(now, self.update_ms)
        for trigger in self.triggers:
            trigger.check(self.system, now)
        self.updates += 1

    # ------------------------------------------------------------------
    # Triggers
    # ------------------------------------------------------------------
    def add_trigger(
        self,
        resource: str,
        kind: str,
        threshold_ms: float,
        window_ms: float,
        callback: Callable[[PsiEvent], None],
    ) -> PsiTrigger:
        """Subscribe ``callback`` to "≥ threshold stall within window"."""

        def fire(event: PsiEvent) -> None:
            tracer = self.tracer
            if tracer is not None:
                tracer.instant(
                    f"psi_trigger:{event.resource}",
                    args={
                        "kind": event.kind,
                        "stall_ms": round(event.stall_ms, 3),
                        "window_ms": event.window_ms,
                    },
                    cat="psi",
                )
            callback(event)

        trigger = PsiTrigger(resource, kind, threshold_ms, window_ms, fire)
        self.triggers.append(trigger)
        return trigger

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def pressure_file(self, resource: str) -> str:
        return self.system.pressure_file(resource, self.clock())

    def as_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{resource: {some: {...}, full: {...}}}`` for the system."""
        now = self.clock()
        return {
            resource: self.system.pressure_dict(resource, now)
            for resource in RESOURCES
        }
