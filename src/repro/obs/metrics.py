"""Process-wide metrics registry with Prometheus text exposition.

The serve control plane (and anything else that wants scrapeable
telemetry) registers three metric kinds here:

* :class:`Counter` — monotonically increasing totals (requests served,
  cache evictions).  Negative increments are rejected: a counter that
  can go down is a gauge wearing the wrong name, and Prometheus rate()
  silently mis-computes over it.
* :class:`Gauge` — point-in-time values, either set explicitly
  (RSS sampled on an interval) or computed at scrape time from a
  callback (queue depth, worker busy count), so the scrape always sees
  the live value without anyone remembering to push updates.
* :class:`HistogramFamily` — latency distributions backed by the
  simulator's own log-bucketed :class:`repro.trace.histogram.Histogram`,
  exposed in the cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
  form Prometheus expects.  The log buckets give constant relative
  resolution from sub-millisecond queue waits to multi-second runs with
  a handful of dict entries per series.

Every metric kind supports label dimensions (``labels("normal")``
returns the per-class child), and :meth:`MetricsRegistry.render`
produces one valid text-exposition document over all families.
:func:`validate_exposition` is a promtool-lite syntax checker used by
tests and CI to keep the endpoint honest.
"""

from __future__ import annotations

import re
import threading
import tracemalloc
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.trace.histogram import Histogram

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _fmt_value(value: float) -> str:
    """Prometheus sample value: integers stay integral, floats compact."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labelnames: Tuple[str, ...], labelvalues: Tuple[str, ...],
                extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{value}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Family:
    """Base: one named metric with zero or more label dimensions."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...] = ()):
        self.name = _check_name(name)
        self.help = help_text
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):  # pragma: no cover - subclasses override
        raise NotImplementedError

    def labels(self, *values: object):
        """The child series for these label values (created on demand)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label value(s) "
                f"({', '.join(self.labelnames)}), got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _default(self):
        """The single unlabeled child (only when labelnames is empty)."""
        return self.labels()

    def remove(self, *values: object) -> bool:
        """Drop one label series (e.g. a fleet node that was evicted).

        Counters are per-series monotonic, so deleting a series is the
        only honest way to stop exposing an entity that no longer
        exists; returns False when the series was never created.
        """
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label value(s) "
                f"({', '.join(self.labelnames)}), got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        with self._lock:
            return self._children.pop(key, None) is not None

    def items(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    # ------------------------------------------------------------------
    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}" if self.help
            else f"# HELP {self.name} (no help)",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labelvalues, child in self.items():
            lines.extend(self._render_child(labelvalues, child))
        return lines

    def _render_child(self, labelvalues, child):  # pragma: no cover
        raise NotImplementedError


class Counter:
    """Monotonic counter child. ``inc`` only goes up."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        self.value += amount


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def _render_child(self, labelvalues, child) -> List[str]:
        labels = _fmt_labels(self.labelnames, labelvalues)
        return [f"{self.name}{labels} {_fmt_value(child.value)}"]


class Gauge:
    """Point-in-time gauge child; explicit value or scrape-time callback."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at every scrape instead of storing a value."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default().set_function(fn)

    @property
    def value(self) -> float:
        return self._default().value

    def _render_child(self, labelvalues, child) -> List[str]:
        labels = _fmt_labels(self.labelnames, labelvalues)
        return [f"{self.name}{labels} {_fmt_value(child.value)}"]


class HistogramChild:
    """One labeled latency series over a log-bucketed histogram."""

    __slots__ = ("hist",)

    def __init__(self, min_value: float, growth: float) -> None:
        self.hist = Histogram(min_value=min_value, growth=growth)

    def observe(self, value: float) -> None:
        self.hist.add(value)

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def sum(self) -> float:
        return self.hist.total

    def percentile(self, pct: float) -> float:
        return self.hist.percentile(pct)

    def summary(self) -> Dict[str, float]:
        """Compact doc for JSON stats: count/mean/p50/p95/p99/max."""
        hist = self.hist
        if hist.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": hist.count,
            "mean": round(hist.mean, 6),
            "p50": round(hist.percentile(50), 6),
            "p95": round(hist.percentile(95), 6),
            "p99": round(hist.percentile(99), 6),
            "max": round(hist.max, 6),
        }


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...] = (),
                 min_value: float = 0.001, growth: float = 2.0):
        super().__init__(name, help_text, labelnames)
        self.min_value = min_value
        self.growth = growth

    def _make_child(self) -> HistogramChild:
        return HistogramChild(self.min_value, self.growth)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def _render_child(self, labelvalues, child) -> List[str]:
        hist = child.hist
        lines: List[str] = []
        cumulative = 0
        for lo, hi, count in hist.buckets():
            cumulative += count
            labels = _fmt_labels(
                self.labelnames, labelvalues, (("le", f"{hi:g}"),)
            )
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        inf_labels = _fmt_labels(
            self.labelnames, labelvalues, (("le", "+Inf"),)
        )
        lines.append(f"{self.name}_bucket{inf_labels} {hist.count}")
        plain = _fmt_labels(self.labelnames, labelvalues)
        lines.append(f"{self.name}_sum{plain} {_fmt_value(hist.total)}")
        lines.append(f"{self.name}_count{plain} {hist.count}")
        return lines


def latency_summary(family: HistogramFamily) -> Dict[str, dict]:
    """Per-label-value percentile docs for ``/v1/stats`` JSON.

    Keys are the joined label values (for the common single-label
    ``priority_class`` families that is just "high"/"normal"/"low").
    """
    return {
        ",".join(labelvalues) or "all": child.summary()
        for labelvalues, child in family.items()
    }


class MetricsRegistry:
    """A named collection of metric families rendered as one document.

    Registration is idempotent: asking for an existing name returns the
    existing family if the kind and label set match, and raises if they
    don't — two subsystems silently sharing a name with different
    meanings is exactly the bug a registry exists to prevent.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _register(self, cls, name: str, help_text: str,
                  labelnames: Iterable[str], **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            family = cls(name, help_text, labelnames, **kwargs)
            self._families[name] = family
        # Unlabeled families materialize their single child now so a
        # scrape shows the series at 0 from the very first render —
        # "counter absent" and "counter is zero" read very differently
        # on a dashboard.
        if not labelnames:
            family.labels()
        return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> CounterFamily:
        return self._register(CounterFamily, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = (),
              fn: Optional[Callable[[], float]] = None) -> GaugeFamily:
        family = self._register(GaugeFamily, name, help_text, labelnames)
        if fn is not None:
            family.set_function(fn)
        return family

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  min_value: float = 0.001,
                  growth: float = 2.0) -> HistogramFamily:
        return self._register(
            HistogramFamily, name, help_text, labelnames,
            min_value=min_value, growth=growth,
        )

    # ------------------------------------------------------------------
    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def render(self) -> str:
        """The full Prometheus text-exposition document."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""


# The process-wide default for callers outside the serve plane (each
# SimulationServer builds its own registry so two servers in one test
# process never collide on family names).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


# ----------------------------------------------------------------------
# Memory accounting helpers
# ----------------------------------------------------------------------
def read_rss_bytes() -> int:
    """Resident set size of this process in bytes.

    Prefers ``/proc/self/status`` (current RSS, Linux); falls back to
    ``resource.getrusage`` (peak RSS) elsewhere, and 0 if neither works.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return usage * 1024 if usage < 1 << 34 else usage
    except Exception:
        return 0


def memory_snapshot() -> dict:
    """One sample of process memory: RSS + tracemalloc (if tracing)."""
    doc = {
        "rss_bytes": read_rss_bytes(),
        "tracemalloc": {"enabled": tracemalloc.is_tracing(),
                        "current_bytes": 0, "peak_bytes": 0},
    }
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        doc["tracemalloc"]["current_bytes"] = current
        doc["tracemalloc"]["peak_bytes"] = peak
    return doc


# ----------------------------------------------------------------------
# Exposition validation (promtool-lite, for tests and CI)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?:\s+[-+]?[0-9]+)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$'
)


def validate_exposition(text: str) -> Dict[str, str]:
    """Check Prometheus text-exposition syntax; returns {name: type}.

    Raises :class:`ValueError` on the first malformed line, on samples
    for histogram families missing their ``_bucket``/``_sum``/``_count``
    series, and on histograms without a ``+Inf`` bucket.
    """
    types: Dict[str, str] = {}
    seen_samples: Dict[str, List[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels = match.group("labels")
        if labels:
            inner = labels[1:-1]
            if inner:
                for pair in _split_label_pairs(inner):
                    if not _LABEL_PAIR_RE.match(pair):
                        raise ValueError(
                            f"line {lineno}: malformed label pair {pair!r}"
                        )
        seen_samples.setdefault(match.group("name"), []).append(line)
    for name, kind in types.items():
        if kind == "histogram":
            # Metadata with zero samples is legal (a labeled family with
            # no children yet); but once any series exists, the full
            # _bucket/_sum/_count triple must.
            has_any = any(
                name + suffix in seen_samples
                for suffix in ("_bucket", "_sum", "_count")
            )
            if not has_any:
                continue
            for suffix in ("_bucket", "_sum", "_count"):
                if name + suffix not in seen_samples:
                    raise ValueError(
                        f"histogram {name} missing {name}{suffix} samples"
                    )
            if not any(
                'le="+Inf"' in line for line in seen_samples[name + "_bucket"]
            ):
                raise ValueError(f"histogram {name} missing +Inf bucket")
    return types


def parse_samples(text: str) -> Dict[str, float]:
    """Parse a text exposition into ``{sample_line_key: value}``.

    The key is the sample name with its label set verbatim (e.g.
    ``repro_serve_queue_enqueued_total{priority_class="interactive"}``);
    unlabeled samples key on the bare name.  Comment and metadata lines
    are skipped; malformed sample lines raise :class:`ValueError` (use
    :func:`validate_exposition` for the full lint).  This is the
    consumer half of the promtool-lite pair — soak and consistency
    checks scrape ``/metrics`` and compare these values against
    ``/v1/stats`` totals.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        key = match.group("name") + (match.group("labels") or "")
        samples[key] = float(match.group("value"))
    return samples


def family_total(samples: Dict[str, float], name: str) -> float:
    """Sum every series of one family (all label combinations).

    ``family_total(s, "x_total")`` adds ``x_total`` and every
    ``x_total{...}`` series, but not ``x_total_created`` — the match is
    exact-name-then-brace, not a prefix.
    """
    total = 0.0
    for key, value in samples.items():
        if key == name or key.startswith(name + "{"):
            total += value
    return total


def _split_label_pairs(inner: str) -> List[str]:
    """Split 'a="x",b="y,z"' on commas outside quoted values."""
    pairs: List[str] = []
    depth_quote = False
    escaped = False
    current: List[str] = []
    for char in inner:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            depth_quote = not depth_quote
            current.append(char)
            continue
        if char == "," and not depth_quote:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
