"""Log-bucketed latency histogram.

Latency distributions in this simulator span four orders of magnitude
(a 2 µs fault-entry overhead up to multi-hundred-ms reclaim stalls), so
buckets grow geometrically: bucket ``i`` covers
``[min_value * growth**i, min_value * growth**(i+1))``, giving constant
*relative* resolution the way HDR-style histograms do.  Memory is a
small dict however many samples arrive, which is what lets the tracer
keep one histogram per latency source for an entire run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


class Histogram:
    """Fixed-growth log histogram over positive values.

    Values at or below ``min_value`` land in bucket 0; there is no upper
    bound (buckets are created on demand).  Percentiles are estimated by
    walking the cumulative counts and interpolating linearly inside the
    winning bucket, so accuracy is bounded by the growth factor.
    """

    def __init__(self, min_value: float = 0.001, growth: float = 2.0):
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1.0, got {growth}")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: Dict[int, int] = {}
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return 1 + int(math.log(value / self.min_value) / self._log_growth)

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """[lo, hi) covered by bucket ``index`` (bucket 0 starts at 0)."""
        if index <= 0:
            return (0.0, self.min_value)
        return (
            self.min_value * self.growth ** (index - 1),
            self.min_value * self.growth ** index,
        )

    def add(self, value: float) -> None:
        """Record one sample (negative values clamp to bucket 0)."""
        index = self._index(value) if value > 0 else 0
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[float, float, int]]:
        """Non-empty buckets as (lo, hi, count), ascending."""
        return [
            (*self.bucket_bounds(index), count)
            for index, count in sorted(self._counts.items())
        ]

    def percentile(self, pct: float) -> float:
        """Estimated value at percentile ``pct`` in [0, 100]."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile {pct} outside [0, 100]")
        if self.count == 0:
            return 0.0
        if pct == 0.0:
            return self.min
        target = pct / 100.0 * self.count
        seen = 0
        for index, count in sorted(self._counts.items()):
            seen += count
            if seen >= target:
                lo, hi = self.bucket_bounds(index)
                # Interpolate within the bucket; clamp to observed range
                # so single-bucket histograms report sane extremes.
                frac = 1.0 - (seen - target) / count
                estimate = lo + (hi - lo) * frac
                return min(max(estimate, self.min), self.max)
        return self.max

    def summary(self) -> Dict[str, float]:
        """The same shape :func:`repro.metrics.stats.summarize` returns."""
        if self.count == 0:
            return {
                "mean": 0.0, "std": 0.0, "min": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
            }
        return {
            "mean": self.mean,
            "std": 0.0,  # not tracked bucket-wise; use raw series if needed
            "min": self.min,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram n={self.count} mean={self.mean:.3f}>"
