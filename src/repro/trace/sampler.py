"""Periodic time-series sampler.

Snapshots the quantities every figure in the paper is drawn from —
free memory, LRU list sizes, vmstat deltas, swap traffic, FPS, CPU
utilization, frozen-process count — into *aligned* series: one shared
timestamp vector plus one equal-length value vector per metric, so a
row across all series is one instant in simulated time.

Sample timestamps snap to multiples of the configured interval (the
first tick fires at the next multiple of ``interval_ms`` after
``start``), which makes runs with the same interval directly
superimposable regardless of when sampling was switched on.

When a :class:`~repro.trace.tracer.Tracer` is attached, every sample
also lands as Perfetto counter tracks, so the exported trace carries
the FPS and free-memory timelines next to the event tracks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.trace.tracer import KERNEL_PID, Tracer

DEFAULT_INTERVAL_MS = 100.0

# Gauge series are read directly; delta series are per-interval
# increments of cumulative vmstat counters.
GAUGE_SERIES = (
    "free_pages",
    "resident_pages",
    "available_pages",
    "zram_stored_pages",
    "active_anon",
    "inactive_anon",
    "active_file",
    "inactive_file",
    "frozen_processes",
)
DELTA_SERIES = (
    "pgsteal_kswapd",
    "pgsteal_direct",
    "refault_total",
    "refault_fg",
    "refault_bg",
    "pswpin",
    "pswpout",
    "direct_reclaim_stall_ms",
    "alloc_stall_ms",
)
COMPUTED_SERIES = ("pgsteal", "fps", "cpu_utilization")
# PSI avg10 values (percent), read from the always-on PsiMonitor.
PSI_SERIES = (
    "psi_mem_some_avg10",
    "psi_mem_full_avg10",
    "psi_io_some_avg10",
    "psi_io_full_avg10",
    "psi_cpu_some_avg10",
)

ALL_SERIES = GAUGE_SERIES + DELTA_SERIES + COMPUTED_SERIES + PSI_SERIES


class Sampler:
    """Aligned time-series snapshots of one :class:`MobileSystem`."""

    def __init__(
        self,
        system,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        tracer: Optional[Tracer] = None,
    ):
        if interval_ms <= 0:
            raise ValueError(f"sample interval must be positive, got {interval_ms}")
        self.system = system
        self.interval_ms = interval_ms
        self.tracer = tracer if tracer is not None else system.tracer
        self.times: List[float] = []
        self.series: Dict[str, List[float]] = {name: [] for name in ALL_SERIES}
        self._handle = None
        self._last_vm = None  # typed VmStat copy
        self._last_frames = 0
        self._last_busy_ms = 0.0
        self._last_sample_at = 0.0
        # Optional observer called with (now_ms, row_dict) after every
        # sample lands — the `repro watch` subcommand prints from here.
        self.on_sample = None

    # ------------------------------------------------------------------
    def start(self) -> "Sampler":
        """Arm the periodic tick (idempotent)."""
        if self._handle is not None:
            return self
        sim = self.system.sim
        offset = sim.now % self.interval_ms
        first_delay = self.interval_ms - offset if offset else self.interval_ms
        self._last_vm = self.system.vmstat.copy()
        self._last_frames = self._frames_completed()
        self._last_busy_ms = self.system.sched.stats.busy_ms_total
        self._last_sample_at = sim.now
        self._handle = sim.every(self.interval_ms, self._tick, first_delay=first_delay)
        return self

    def stop(self) -> None:
        """Disarm the tick, flushing the final partial interval.

        Without the flush, activity between the last aligned tick and
        the end of the run (up to a full interval) would silently vanish
        from every series.
        """
        if self._handle is not None:
            self._handle.stop()
            self._handle = None
            now = self.system.sim.now
            if now > self._last_sample_at:
                self._sample(now)

    def _frames_completed(self) -> int:
        stats = self.system.frame_engine.stats
        return stats.completed if stats is not None else 0

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._sample(self.system.sim.now)

    def _sample(self, now: float) -> None:
        system = self.system
        elapsed = now - self._last_sample_at
        if elapsed <= 0:
            return
        self._last_sample_at = now
        vm = system.vmstat
        delta = vm.delta(self._last_vm)
        self._last_vm = vm.copy()

        frames = self._frames_completed()
        frame_delta = max(0, frames - self._last_frames)
        self._last_frames = frames
        fps = frame_delta * 1000.0 / elapsed

        busy = system.sched.stats.busy_ms_total
        busy_delta = max(0.0, busy - self._last_busy_ms)
        self._last_busy_ms = busy
        utilization = busy_delta / (system.sched.cores * elapsed)

        psi = system.psi.system
        lru = system.mm.lru
        row = {
            "free_pages": system.mm.free_pages,
            "resident_pages": system.mm.resident_pages,
            "available_pages": system.mm.available_pages,
            "zram_stored_pages": system.zram.stored_pages,
            "active_anon": lru.active_anon,
            "inactive_anon": lru.inactive_anon,
            "active_file": lru.active_file,
            "inactive_file": lru.inactive_file,
            "frozen_processes": len(system.freezer.frozen_pids),
            "pgsteal": delta.pgsteal,
            "fps": fps,
            "cpu_utilization": utilization,
            "psi_mem_some_avg10": psi.avg10("memory") * 100.0,
            "psi_mem_full_avg10": psi.avg10("memory", "full") * 100.0,
            "psi_io_some_avg10": psi.avg10("io") * 100.0,
            "psi_io_full_avg10": psi.avg10("io", "full") * 100.0,
            "psi_cpu_some_avg10": psi.avg10("cpu") * 100.0,
        }
        for name in DELTA_SERIES:
            row[name] = getattr(delta, name)

        self.times.append(now)
        for name, value in row.items():
            self.series[name].append(value)

        tracer = self.tracer
        if tracer is not None:
            tracer.counter("free_mem", {"free_pages": row["free_pages"],
                                        "available_pages": row["available_pages"]},
                           pid=KERNEL_PID, ts=now)
            tracer.counter("fps", row["fps"], pid=KERNEL_PID, ts=now)
            tracer.counter("cpu_utilization", row["cpu_utilization"],
                           pid=KERNEL_PID, ts=now)
            tracer.counter("reclaim_rate", {"pgsteal": row["pgsteal"],
                                            "refaults": row["refault_total"]},
                           pid=KERNEL_PID, ts=now)
            tracer.counter("lru", {"active_anon": row["active_anon"],
                                   "inactive_anon": row["inactive_anon"],
                                   "active_file": row["active_file"],
                                   "inactive_file": row["inactive_file"]},
                           pid=KERNEL_PID, ts=now)
            tracer.counter("frozen_processes", row["frozen_processes"],
                           pid=KERNEL_PID, ts=now)
            tracer.counter("psi_memory", {"some": row["psi_mem_some_avg10"],
                                          "full": row["psi_mem_full_avg10"]},
                           pid=KERNEL_PID, ts=now)
            tracer.counter("psi_io", {"some": row["psi_io_some_avg10"],
                                      "full": row["psi_io_full_avg10"]},
                           pid=KERNEL_PID, ts=now)
            tracer.counter("psi_cpu", row["psi_cpu_some_avg10"],
                           pid=KERNEL_PID, ts=now)

        if self.on_sample is not None:
            self.on_sample(now, row)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        return len(self.times)

    def as_dict(self) -> Dict[str, List[float]]:
        """``{"time_ms": [...], series...}`` — all vectors equal length."""
        out: Dict[str, List[float]] = {"time_ms": list(self.times)}
        for name in ALL_SERIES:
            out[name] = list(self.series[name])
        return out

    def rows(self) -> List[List[float]]:
        """Row-major view matching :meth:`header` (for CSV export)."""
        return [
            [self.times[i]] + [self.series[name][i] for name in ALL_SERIES]
            for i in range(len(self.times))
        ]

    @staticmethod
    def header() -> List[str]:
        return ["time_ms"] + list(ALL_SERIES)
