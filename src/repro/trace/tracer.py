"""Typed tracepoints over a bounded ring buffer.

The design mirrors ftrace/Perfetto's split between *emission* and
*export*: components hold an optional :class:`Tracer` reference and emit
typed events (counter, instant, duration span, complete slice, flow)
against (pid, tid) tracks; exporters (:mod:`repro.trace.export`) turn
the ring buffer into Chrome/Perfetto ``trace_event`` JSON after the run.

Zero overhead when disabled: a component's ``tracer`` attribute is
simply ``None``, so every tracepoint in a hot path costs one attribute
load plus one truthiness check::

    t = self.tracer
    if t is not None:
        t.instant("refault", pid=pid, args={"fg": foreground})

Timestamps come from the simulated clock (milliseconds) that
:meth:`Tracer.bind_clock` wires in; events carry millisecond floats and
are converted to the trace-event format's microseconds at export time.

Track-id conventions (chosen below the app pid space, which starts at
1000):

* pid 0 — "kernel": kswapd quanta, direct-reclaim slices, freezer
  transitions, and all sampler counter tracks;
* pid 1 — "cpus": one thread per simulated core with the task slices
  the scheduler dispatched there;
* pid 2 — "system_server": ActivityManager launch spans, lmkd kills,
  and the scenario runner's phase spans.

Simulated application processes use their real pid, with one trace
thread per :class:`~repro.sched.task.Task` plus tid 0 for kernel-side
events (faults) attributed to the process.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.trace.histogram import Histogram

# Synthetic track pids (real process pids start at 1000).
KERNEL_PID = 0
CPU_PID = 1
SYSTEM_PID = 2

# Well-known kernel-track tids.
KSWAPD_TID = 1
DIRECT_RECLAIM_TID = 2
FREEZER_TID = 3

# Well-known system_server-track tids.
ACTIVITY_MANAGER_TID = 1
LMKD_TID = 2
SCENARIO_TID = 3

# Event phases (Chrome trace_event ``ph`` values).
PH_BEGIN = "B"
PH_END = "E"
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"
PH_FLOW_START = "s"
PH_FLOW_END = "f"
PH_ASYNC_BEGIN = "b"
PH_ASYNC_END = "e"

DEFAULT_CAPACITY = 512 * 1024

# Approximate per-event overhead charged by the byte-budgeted ring:
# the TraceEvent object header, slot pointers, and the two floats.
_EVENT_BASE_COST = 64


def _event_cost(name: str, cat: str, args: Optional[Dict[str, Any]]) -> int:
    """Canonical-ish byte cost of one event for ring budgeting.

    Mirrors the serve plane's canonical-size discipline: strings count
    their length, args count their compact-JSON rendering (falling back
    to ``repr`` for non-JSON values), plus a fixed object overhead.
    Cheap enough for the emit hot path — one json.dumps of a typically
    tiny dict.
    """
    cost = _EVENT_BASE_COST + len(name) + len(cat)
    if args:
        try:
            cost += len(json.dumps(args, separators=(",", ":")))
        except (TypeError, ValueError):
            cost += len(repr(args))
    return cost


class TraceEvent:
    """One emitted tracepoint (timestamps in simulated ms)."""

    __slots__ = (
        "ts", "ph", "name", "cat", "pid", "tid", "dur", "args", "flow_id",
        "cost",
    )

    def __init__(
        self,
        ts: float,
        ph: str,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        dur: float = 0.0,
        args: Optional[Dict[str, Any]] = None,
        flow_id: Optional[int] = None,
    ):
        self.ts = ts
        self.ph = ph
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.dur = dur
        self.args = args
        self.flow_id = flow_id
        self.cost = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceEvent {self.ph} {self.name!r} t={self.ts:.3f} {self.pid}/{self.tid}>"


class Tracer:
    """Bounded-ring event collector with typed tracepoints.

    The ring (``deque(maxlen=capacity)``) drops the *oldest* events once
    full — a long run keeps its most recent window, like a kernel trace
    buffer in overwrite mode.  ``events_emitted`` keeps counting, so
    ``dropped_events`` reports how much history was lost.

    ``capacity_bytes`` adds a second, byte-denominated bound: each event
    is charged an approximate cost (:func:`_event_cost`) at emission and
    the oldest events are dropped while the ring's total exceeds the
    budget.  Count and byte bounds compose — whichever bites first wins
    — so a ring of few huge-args events and a ring of millions of tiny
    ones are both held to a predictable footprint.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = DEFAULT_CAPACITY,
        engine_events: bool = False,
        capacity_bytes: Optional[int] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"trace buffer capacity must be positive, got {capacity}")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(
                f"trace buffer capacity_bytes must be positive or None, "
                f"got {capacity_bytes}"
            )
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.capacity = capacity
        self.capacity_bytes = capacity_bytes
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.buffer_bytes: int = 0
        self.events_emitted: int = 0
        # Sim-engine callback instants are high-volume detail; off unless
        # explicitly requested (the engine hook itself stays a single
        # truthiness check either way).
        self.engine_events = engine_events
        self._processes: Dict[int, str] = {}
        self._threads: Dict[Tuple[int, int], str] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._flow_ids = itertools.count(1)
        self._register_static_tracks()

    def _register_static_tracks(self) -> None:
        self.register_process(KERNEL_PID, "kernel")
        self.register_thread(KERNEL_PID, KSWAPD_TID, "kswapd0")
        self.register_thread(KERNEL_PID, DIRECT_RECLAIM_TID, "direct_reclaim")
        self.register_thread(KERNEL_PID, FREEZER_TID, "freezer")
        self.register_process(CPU_PID, "cpus")
        self.register_process(SYSTEM_PID, "system_server")
        self.register_thread(SYSTEM_PID, ACTIVITY_MANAGER_TID, "ActivityManager")
        self.register_thread(SYSTEM_PID, LMKD_TID, "lmkd")
        self.register_thread(SYSTEM_PID, SCENARIO_TID, "scenario")

    # ------------------------------------------------------------------
    # Track metadata
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at the simulated clock (ms)."""
        self.clock = clock

    def register_process(self, pid: int, name: str) -> None:
        self._processes[pid] = name

    def register_thread(self, pid: int, tid: int, name: str) -> None:
        self._threads[(pid, tid)] = name

    @property
    def process_names(self) -> Dict[int, str]:
        return dict(self._processes)

    @property
    def thread_names(self) -> Dict[Tuple[int, int], str]:
        return dict(self._threads)

    @property
    def dropped_events(self) -> int:
        """Events lost to ring overwrite."""
        return self.events_emitted - len(self.events)

    # ------------------------------------------------------------------
    # Tracepoints
    # ------------------------------------------------------------------
    def _emit(
        self,
        ph: str,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        ts: Optional[float] = None,
        dur: float = 0.0,
        args: Optional[Dict[str, Any]] = None,
        flow_id: Optional[int] = None,
    ) -> TraceEvent:
        event = TraceEvent(
            ts=self.clock() if ts is None else ts,
            ph=ph,
            name=name,
            cat=cat,
            pid=pid,
            tid=tid,
            dur=dur,
            args=args,
            flow_id=flow_id,
        )
        if self.capacity_bytes is not None:
            event.cost = _event_cost(name, cat, args)
            # deque(maxlen) drops events[0] silently on a full append;
            # reclaim its cost first or the byte ledger drifts upward.
            if len(self.events) == self.capacity:
                self.buffer_bytes -= self.events[0].cost
            self.events.append(event)
            self.buffer_bytes += event.cost
            # Overwrite-mode byte budget: shed oldest, keep the newest
            # event even if it alone exceeds the budget.
            while self.buffer_bytes > self.capacity_bytes and len(self.events) > 1:
                self.buffer_bytes -= self.events.popleft().cost
        else:
            self.events.append(event)
        self.events_emitted += 1
        return event

    def counter(
        self,
        name: str,
        values,
        pid: int = KERNEL_PID,
        ts: Optional[float] = None,
        cat: str = "counter",
    ) -> TraceEvent:
        """Counter sample: ``values`` is a number or a {series: value} dict."""
        if not isinstance(values, dict):
            values = {name: values}
        return self._emit(PH_COUNTER, name, cat, pid, 0, ts=ts, args=values)

    def instant(
        self,
        name: str,
        pid: int = KERNEL_PID,
        tid: int = 0,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "event",
        ts: Optional[float] = None,
    ) -> TraceEvent:
        return self._emit(PH_INSTANT, name, cat, pid, tid, ts=ts, args=args)

    def begin(
        self,
        name: str,
        pid: int,
        tid: int,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "span",
    ) -> TraceEvent:
        """Open a duration span on the (pid, tid) track."""
        return self._emit(PH_BEGIN, name, cat, pid, tid, args=args)

    def end(self, name: str, pid: int, tid: int) -> TraceEvent:
        """Close the innermost open span (trace-event E phase)."""
        return self._emit(PH_END, name, "span", pid, tid)

    @contextmanager
    def span(
        self,
        name: str,
        pid: int,
        tid: int,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "span",
    ):
        """Context manager emitting a balanced B/E pair around the body."""
        self.begin(name, pid, tid, args=args, cat=cat)
        try:
            yield
        finally:
            self.end(name, pid, tid)

    def complete(
        self,
        name: str,
        pid: int,
        tid: int,
        start_ms: float,
        dur_ms: float,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "span",
    ) -> TraceEvent:
        """Retrospective slice (X phase): a span whose duration is known
        only once the work is done — reclaim batches, frames, launches."""
        return self._emit(
            PH_COMPLETE, name, cat, pid, tid, ts=start_ms, dur=dur_ms, args=args
        )

    # ------------------------------------------------------------------
    # Flows and async spans (cross-track arrows / overlapping operations)
    # ------------------------------------------------------------------
    def new_flow_id(self) -> int:
        return next(self._flow_ids)

    def flow_start(
        self, name: str, flow_id: int, pid: int, tid: int, cat: str = "flow"
    ) -> TraceEvent:
        return self._emit(PH_FLOW_START, name, cat, pid, tid, flow_id=flow_id)

    def flow_end(
        self, name: str, flow_id: int, pid: int, tid: int, cat: str = "flow"
    ) -> TraceEvent:
        return self._emit(PH_FLOW_END, name, cat, pid, tid, flow_id=flow_id)

    def async_begin(
        self,
        name: str,
        async_id: int,
        pid: int,
        tid: int,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "async",
    ) -> TraceEvent:
        return self._emit(
            PH_ASYNC_BEGIN, name, cat, pid, tid, args=args, flow_id=async_id
        )

    def async_end(
        self,
        name: str,
        async_id: int,
        pid: int,
        tid: int,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "async",
    ) -> TraceEvent:
        return self._emit(
            PH_ASYNC_END, name, cat, pid, tid, args=args, flow_id=async_id
        )

    # ------------------------------------------------------------------
    # Engine hook (high-volume; double-gated by ``engine_events``)
    # ------------------------------------------------------------------
    def engine_event(self, ts: float, fn: Any) -> None:
        """Record one simulator callback execution (when detail is on)."""
        if not self.engine_events:
            return
        name = getattr(fn, "__name__", None) or type(fn).__name__
        self._emit(PH_INSTANT, name, "engine", KERNEL_PID, 0, ts=ts)

    # ------------------------------------------------------------------
    # Latency histograms
    # ------------------------------------------------------------------
    def histogram(self, name: str) -> Histogram:
        """Named log-bucketed latency histogram (created on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        return hist

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def __len__(self) -> int:
        return len(self.events)
