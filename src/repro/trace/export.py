"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and flat
time-series dumps.

The Chrome format is the JSON array flavour documented in the
trace-event spec and accepted by ``ui.perfetto.dev`` and
``chrome://tracing``: ``{"traceEvents": [...], "displayTimeUnit":
"ms"}`` where each event carries ``ph``/``ts``/``pid``/``tid`` and
timestamps are **microseconds**.  Process/thread metadata (``M``
events) map the simulator's track ids to human names, so the Perfetto
UI shows "kernel / kswapd0" and "com.tencent.tmgp.pubgmhd /
RenderThread" instead of bare integers.

Time-series exports take a :class:`~repro.trace.sampler.Sampler` and
write either CSV (one row per sample, header first) or JSON (one
equal-length array per series) for offline plotting and run diffing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.trace.sampler import Sampler
from repro.trace.tracer import (
    PH_ASYNC_BEGIN,
    PH_ASYNC_END,
    PH_COMPLETE,
    PH_FLOW_END,
    PH_FLOW_START,
    PH_INSTANT,
    TraceEvent,
    Tracer,
)

MS_TO_US = 1000.0


def _metadata_events(tracer: Tracer) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for pid, name in sorted(tracer.process_names.items()):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for (pid, tid), name in sorted(tracer.thread_names.items()):
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": name},
        })
    return events


def _event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": event.name,
        "ph": event.ph,
        "ts": event.ts * MS_TO_US,
        "pid": event.pid,
        "tid": event.tid,
        "cat": event.cat or "default",
    }
    if event.ph == PH_COMPLETE:
        out["dur"] = event.dur * MS_TO_US
    if event.ph == PH_INSTANT:
        out["s"] = "t"  # thread-scoped instant
    if event.ph in (PH_FLOW_START, PH_FLOW_END, PH_ASYNC_BEGIN, PH_ASYNC_END):
        out["id"] = event.flow_id
    if event.args:
        out["args"] = event.args
    return out


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """All events (metadata first) as trace-event dicts, ts in µs."""
    events = _metadata_events(tracer)
    events.extend(_event_to_dict(event) for event in tracer.events)
    return events


def chrome_trace_document(
    tracer: Tracer, extra_metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The full JSON-object document Perfetto/chrome://tracing loads."""
    other: Dict[str, Any] = {
        "events_emitted": tracer.events_emitted,
        "events_dropped": tracer.dropped_events,
        "buffer_capacity": tracer.capacity,
    }
    if tracer.histograms:
        other["histograms"] = {
            name: hist.summary() for name, hist in tracer.histograms.items()
        }
    if extra_metadata:
        other.update(extra_metadata)
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str, tracer: Tracer, extra_metadata: Optional[Dict[str, Any]] = None
) -> int:
    """Write the Perfetto-loadable JSON file; returns the event count."""
    document = chrome_trace_document(tracer, extra_metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# Flat time-series dumps
# ----------------------------------------------------------------------
def write_timeseries_csv(path: str, sampler: Sampler) -> int:
    """One row per sample; returns the row count."""
    rows = sampler.rows()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(",".join(sampler.header()) + "\n")
        for row in rows:
            handle.write(",".join(_format_cell(value) for value in row) + "\n")
    return len(rows)


def _format_cell(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def write_timeseries_json(path: str, sampler: Sampler) -> int:
    """Column-major JSON (one array per series); returns the sample count."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sampler.as_dict(), handle)
    return sampler.sample_count


def write_timeseries(path: str, sampler: Sampler) -> int:
    """Dispatch on extension: ``.csv`` → CSV, anything else → JSON."""
    if path.endswith(".csv"):
        return write_timeseries_csv(path, sampler)
    return write_timeseries_json(path, sampler)
