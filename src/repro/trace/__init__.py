"""Simulator-wide tracing and telemetry.

The subsystem has four parts:

* :class:`~repro.trace.tracer.Tracer` — typed tracepoints (counter,
  instant, duration span, complete slice, flow/async) over a bounded
  ring buffer, zero-overhead when a component's tracer is ``None``;
* :class:`~repro.trace.histogram.Histogram` — log-bucketed latency
  distributions (frame times, reclaim/stall latencies);
* :class:`~repro.trace.sampler.Sampler` — periodic, interval-aligned
  time series of memory/FPS/CPU state;
* :mod:`repro.trace.export` — Chrome/Perfetto ``trace_event`` JSON and
  CSV/JSON time-series writers.

See README.md ("Tracing & telemetry") for the end-to-end workflow.
"""

from repro.trace.export import (
    chrome_trace_document,
    chrome_trace_events,
    write_chrome_trace,
    write_timeseries,
    write_timeseries_csv,
    write_timeseries_json,
)
from repro.trace.histogram import Histogram
from repro.trace.sampler import Sampler
from repro.trace.tracer import (
    CPU_PID,
    KERNEL_PID,
    SYSTEM_PID,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "Histogram",
    "Sampler",
    "KERNEL_PID",
    "CPU_PID",
    "SYSTEM_PID",
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_timeseries",
    "write_timeseries_csv",
    "write_timeseries_json",
]
