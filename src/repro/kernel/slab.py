"""Struct-of-arrays slab backing all kernel page state.

CPython objects are expensive on the fault/reclaim hot path: every
``Page`` used to be a 14-slot object (~200 bytes) whose attribute reads
each cost a dict-free but still interpreted ``LOAD_ATTR``.  At 100k+
simulated events per second the allocator, the LRU lists, and the fault
loop together touch millions of page fields per wall-second, so the
object overhead dominated the profile (see BENCH_2026-08-05.json and
ROADMAP item 3).

This module rebuilds that state the way the kernel itself lays out
``struct page``: one global **slab** of parallel columns indexed by the
integer page id.

* ``kind``/``heap``/``flags``/``lru`` are ``bytearray`` columns — one
  byte per page, C-speed indexing, no boxing.
* ``lru_prev``/``lru_next`` are int columns forming the intrusive
  doubly-linked LRU lists (:mod:`repro.kernel.lru` owns the head/tail
  cursors; id 0 is the null link, which is why real ids start at 1).
* ``shadow``/``evictions``/``refaults`` are int columns for workingset
  bookkeeping (shadow clock 0 means "no shadow entry").
* ``owner`` holds the owning process reference (duck-typed, as before).

``Page`` (:mod:`repro.kernel.page`) is now a *view*: a one-slot object
holding only ``page_id`` whose properties read and write these columns.
Views are cached per id (``views``) so object identity — which tests
and policy code rely on (``lru.coldest(...) is page``) — is preserved.
Hot paths skip views entirely and operate on raw ids.

The slab is process-global, mirroring the pre-existing global page-id
counter: ``reset_page_ids()`` (called at the top of every scenario run)
clears the columns **in place**, so aliases held by long-lived
structures stay valid.  Multiple coexisting systems are safe for the
same reason multiple systems were safe with the global id counter:
their id ranges are disjoint, so their link columns never interfere.

Transient pages (frame-churn allocations that used to be garbage
collected) are recycled through an explicit free list — columns would
otherwise grow without bound over a long run.  Freed ids must be fully
retired first (not resident, not on an LRU list, no zram slot).
"""

from __future__ import annotations

from typing import List, Optional

# --- flag bits (``flags`` column) -------------------------------------
PRESENT = 0x01  # _PAGE_PRESENT
DIRTY = 0x02
REFERENCED = 0x04  # PTE young bit
HOT = 0x08  # working-set nucleus marker

# --- kind codes (``kind`` column) -------------------------------------
KIND_ANON = 0
KIND_FILE = 1

# --- heap codes (``heap`` column) -------------------------------------
HEAP_NONE = 0
HEAP_JAVA = 1
HEAP_NATIVE = 2

# --- lru codes (``lru`` column); 0 = not on any list ------------------
LRU_NONE = 0
LRU_ACTIVE_ANON = 1
LRU_INACTIVE_ANON = 2
LRU_ACTIVE_FILE = 3
LRU_INACTIVE_FILE = 4


class PageSlab:
    """Columnar storage for every page in the process.

    All columns are indexed by page id.  Index 0 is a permanent
    sentinel (the null link of the intrusive lists); live ids start at
    ``reset(start)``'s ``start`` (default 1).
    """

    __slots__ = (
        "kind",
        "heap",
        "flags",
        "lru",
        "lru_prev",
        "lru_next",
        "shadow",
        "evictions",
        "refaults",
        "owner",
        "views",
        "free_list",
        "_next_id",
    )

    def __init__(self) -> None:
        self.kind = bytearray()
        self.heap = bytearray()
        self.flags = bytearray()
        self.lru = bytearray()
        self.lru_prev: List[int] = []
        self.lru_next: List[int] = []
        self.shadow: List[int] = []
        self.evictions: List[int] = []
        self.refaults: List[int] = []
        self.owner: List[object] = []
        # id -> Page view cache (identity-preserving thin objects).
        self.views: dict = {}
        # Recycled ids (fully-retired transient pages), LIFO.
        self.free_list: List[int] = []
        self._next_id = 0
        self.reset(1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self, start: int = 1) -> None:
        """Clear all columns in place and restart ids at ``start``.

        In-place (``del col[:]`` / ``.clear()``) so column aliases held
        by :class:`~repro.kernel.lru.LruLists` and friends survive — a
        fresh scenario run simply sees empty columns.
        """
        if start < 1:
            raise ValueError(f"page ids start at 1 (got start={start})")
        del self.kind[:]
        del self.heap[:]
        del self.flags[:]
        del self.lru[:]
        del self.lru_prev[:]
        del self.lru_next[:]
        del self.shadow[:]
        del self.evictions[:]
        del self.refaults[:]
        del self.owner[:]
        self.views.clear()
        del self.free_list[:]
        # Sentinel slots for 0..start-1 (id 0 is the null link).
        pad = b"\x00" * start
        self.kind += pad
        self.heap += pad
        self.flags += pad
        self.lru += pad
        zeros = [0] * start
        self.lru_prev += zeros
        self.lru_next += zeros
        self.shadow += zeros
        self.evictions += zeros
        self.refaults += zeros
        self.owner += [None] * start
        self._next_id = start

    def __len__(self) -> int:
        """Number of live ids (allocated minus recycled)."""
        return self._next_id - 1 - len(self.free_list)

    @property
    def next_id(self) -> int:
        """The id the next (non-recycled) allocation would get."""
        return self._next_id

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(
        self,
        kind_code: int,
        heap_code: int,
        flag_bits: int = 0,
        owner: object = None,
    ) -> int:
        """Allocate one page slot; returns its id."""
        free = self.free_list
        if free:
            i = free.pop()
            self.kind[i] = kind_code
            self.heap[i] = heap_code
            self.flags[i] = flag_bits
            self.owner[i] = owner
            return i
        i = self._next_id
        self._next_id = i + 1
        self.kind.append(kind_code)
        self.heap.append(heap_code)
        self.flags.append(flag_bits)
        self.lru.append(0)
        self.lru_prev.append(0)
        self.lru_next.append(0)
        self.shadow.append(0)
        self.evictions.append(0)
        self.refaults.append(0)
        self.owner.append(owner)
        return i

    def alloc_block(
        self,
        count: int,
        kind_code: int,
        heap_code: int,
        owner: object = None,
        flag_bits: int = 0,
    ) -> range:
        """Allocate ``count`` contiguous slots in one shot.

        This is the bulk path for process-footprint construction: every
        column grows by one C-level extend instead of ``count`` Python
        loop iterations.  The free list is deliberately not consulted —
        block ids must be contiguous.  Returns the ``range`` of new ids.
        """
        if count <= 0:
            return range(0, 0)
        first = self._next_id
        self._next_id = first + count
        self.kind += bytes([kind_code]) * count
        self.heap += bytes([heap_code]) * count
        self.flags += bytes([flag_bits]) * count
        pad = b"\x00" * count
        self.lru += pad
        zeros = [0] * count
        self.lru_prev += zeros
        self.lru_next += zeros
        self.shadow += zeros
        self.evictions += zeros
        self.refaults += zeros
        self.owner += [owner] * count
        return range(first, first + count)

    def free(self, i: int) -> None:
        """Recycle a fully-retired id (transient-page teardown).

        The caller must have already made the page non-resident, taken
        it off any LRU list, and dropped its zram slot / shadow entry.
        """
        self.flags[i] = 0
        self.shadow[i] = 0
        self.evictions[i] = 0
        self.refaults[i] = 0
        self.owner[i] = None
        self.views.pop(i, None)
        self.free_list.append(i)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view(self, i: int):
        """The cached :class:`~repro.kernel.page.Page` view for ``i``."""
        page = self.views.get(i)
        if page is None:
            page = _VIEW_TYPE.__new__(_VIEW_TYPE)
            page.page_id = i
            self.views[i] = page
        return page


# The Page class registers itself here on import (avoids a circular
# import: page.py imports the slab, not the other way around).
_VIEW_TYPE: Optional[type] = None


def register_view_type(cls: type) -> None:
    global _VIEW_TYPE
    _VIEW_TYPE = cls


#: The process-global slab.  Reset by ``repro.kernel.page.reset_page_ids``
#: at the top of every scenario run.
PAGE_SLAB = PageSlab()
