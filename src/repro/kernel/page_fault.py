"""The page-fault path (§2.1, §4.2.1).

A fault on a non-present page either:

* finds a shadow entry → **refault**: the page was reclaimed earlier and
  is now demanded back.  Anonymous pages are decompressed from ZRAM
  (CPU cost); file pages are re-read from flash (synchronous block I/O,
  subject to queue congestion).  The refault event is published on the
  workingset bus, where RPF listens.
* finds no shadow entry → first touch (demand paging / new allocation).

Either way the page must be made resident, which can itself trigger
direct reclaim — the amplification loop behind refault-induced memory
thrashing.

``handle_id`` is the **fused** fault→reclaim→refault loop body: it
resolves a fault on a raw slab id without constructing a
:class:`FaultOutcome`, a :class:`RefaultEvent` (unless observers are
subscribed), or an ``AllocationOutcome`` (unless direct reclaim
actually runs) — the allocation, contention-charge, watermark-check,
and young-bit updates are inlined as flag-column bit ops.  The order of
every vmstat increment, PSI record, float addition, and LRU operation
matches the object-level ``handle`` exactly, which is what keeps paper
metrics bit-identical.  ``handle`` remains as the object-API wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.kernel.mm import (
    ALLOC_CONTENTION_CAP_MS,
    ALLOC_CONTENTION_HIGH_MS,
    ALLOC_CONTENTION_LOW_MS,
    AllocationOutcome,
    MemoryManager,
    OutOfMemoryError,
)
from repro.kernel.page import HeapKind, Page
from repro.kernel.slab import (
    DIRTY,
    HEAP_JAVA,
    KIND_FILE,
    PAGE_SLAB,
    PRESENT,
    REFERENCED,
)
from repro.kernel.workingset import RefaultEvent


@dataclass(slots=True)
class FaultOutcome:
    """What one fault cost the faulting task.

    CPU-side costs (``service_ms``: trap overhead, ZRAM decompression,
    direct-reclaim stalls) accumulate across faults, while flash reads
    are represented by the absolute completion time of the bio
    (``io_complete_at``): a task faulting through a batch of pages
    blocks until the *last* read completes, it does not pay each
    read's queue wait separately.
    """

    service_ms: float = 0.0  # CPU-side cost
    io_complete_at: Optional[float] = None  # absolute bio completion time
    major: bool = False
    refault: Optional[RefaultEvent] = None
    direct_reclaims: int = 0

    def blocking_ms(self, now: float) -> float:
        """Total time the faulting task is off-CPU for this fault alone."""
        io_wait = max(0.0, (self.io_complete_at or now) - now)
        return self.service_ms + io_wait


class PageFaultHandler:
    """Resolves faults against the memory manager and storage devices."""

    # Fixed fault-entry overhead (trap, PTE walk), in ms.
    FAULT_OVERHEAD_MS = 0.002

    def __init__(self, mm: MemoryManager):
        self.mm = mm
        # Optional tracing hook (repro.trace.Tracer); None when disabled.
        self.tracer = None
        # Optional PSI hook (repro.obs.psi.PsiMonitor): the fault path is
        # the richest stall site — it knows the uid and FG/BG context —
        # so refault swap-ins, flash read waits, and direct-reclaim
        # stalls are all charged to pressure from here.
        self.psi = None
        # pid → package, maintained by the system layer so refault
        # instants can attribute the faulting app by name.
        self.pid_names: dict = {}

    def handle(
        self,
        page: Page,
        pid: int,
        uid: int,
        foreground: bool,
        write: bool = False,
    ) -> FaultOutcome:
        """Fault ``page`` in on behalf of process ``pid``/``uid``.

        Raises :class:`OutOfMemoryError` if memory cannot be found even
        with direct reclaim (the Android layer then runs the LMK).

        Object-API wrapper over :meth:`handle_id`; the refault event (if
        any) is reconstructed for the outcome so callers see the same
        shape as before the slab refactor.
        """
        service_ms, io_complete_at, distance, direct_reclaims = self.handle_id(
            page.page_id, pid, uid, foreground, write
        )
        outcome = FaultOutcome(
            service_ms=service_ms,
            io_complete_at=io_complete_at,
            direct_reclaims=direct_reclaims,
            # Major faults touch a backing store: refaults (zram or
            # flash) and first-touch file reads (flash).
            major=distance >= 0 or io_complete_at is not None,
        )
        if distance >= 0:
            outcome.refault = RefaultEvent(
                time_ms=self.mm.clock(),
                page=page,
                pid=pid,
                uid=uid,
                foreground=foreground,
                refault_distance=distance,
            )
        return outcome

    def handle_id(
        self,
        i: int,
        pid: int,
        uid: int,
        foreground: bool,
        write: bool = False,
    ) -> Tuple[float, Optional[float], int, int]:
        """Fused fault resolution on a raw slab id.

        Returns ``(service_ms, io_complete_at, refault_distance,
        direct_reclaims)`` — ``refault_distance`` is ``-1`` for a
        first-touch fault.  Raises :class:`OutOfMemoryError` exactly
        like :meth:`handle`.
        """
        mm = self.mm
        slab = PAGE_SLAB
        flags = slab.flags
        f = flags[i]
        is_file = slab.kind[i] == KIND_FILE
        if f & PRESENT:
            # Spurious fault (racing thread already resolved it).
            if write and is_file:
                flags[i] = f | REFERENCED | DIRTY
            else:
                flags[i] = f | REFERENCED
            return self.FAULT_OVERHEAD_MS, None, -1, 0

        sim = mm.sim
        now = sim.now if sim is not None else mm.clock()
        service_ms = self.FAULT_OVERHEAD_MS
        vmstat = mm.vmstat
        vmstat.pgfault += 1
        psi = self.psi
        io_complete_at: Optional[float] = None

        # Inlined workingset.check_refault_id / _resolve_refault: two
        # Python frames per fault on the hottest path in the simulator.
        workingset = mm.workingset
        shadow = slab.shadow
        shadow_clock = shadow[i]
        if shadow_clock:
            shadow[i] = 0
            if workingset.shadow_entries:
                workingset.shadow_entries -= 1
            slab.refaults[i] += 1
            distance = workingset.eviction_clock - shadow_clock
            if workingset._observers:
                event = RefaultEvent(
                    time_ms=now,
                    page=slab.view(i),
                    pid=pid,
                    uid=uid,
                    foreground=foreground,
                    refault_distance=distance,
                )
                for observer in list(workingset._observers):
                    observer(event)
        else:
            distance = -1
        if distance >= 0:
            # --- refault accounting (was _account_refault) ------------
            vmstat.refault_total += 1
            if foreground:
                vmstat.refault_fg += 1
            else:
                vmstat.refault_bg += 1
            if not is_file:
                vmstat.refault_anon += 1
                if slab.heap[i] == HEAP_JAVA:
                    vmstat.refault_java_heap += 1
                else:
                    vmstat.refault_native_heap += 1
            else:
                vmstat.refault_file += 1
            tracer = self.tracer
            if tracer is not None:
                tracer.instant(
                    "refault", pid=pid, tid=0, cat="mm", ts=now,
                    args={
                        "app": self.pid_names.get(pid, str(pid)),
                        "fg": foreground,
                        "kind": "file" if is_file else "anon",
                    },
                )
            if not is_file:
                vmstat.pswpin += 1
                swapin_ms = mm.zram.load(i)
                service_ms += swapin_ms
                # Swap-in decompression is thrashing work: Linux wraps
                # it in psi_memstall_enter/leave.
                if psi is not None:
                    psi.record("memory", swapin_ms, start=now, uid=uid,
                               full=foreground)
            else:
                bio = mm.flash.read(now, 1, owner_pid=pid)
                io_complete_at = bio.complete_time
                vmstat.filein += 1
                if psi is not None:
                    wait = io_complete_at - now
                    # A refault read stalls the task on io, and — being
                    # working-set thrashing — counts as memory pressure
                    # too (the kernel's workingset-refault memstall).
                    psi.record("io", wait, start=now, uid=uid, full=foreground)
                    psi.record("memory", wait, start=now, uid=uid,
                               full=foreground)
            vmstat.pgmajfault += 1
        elif is_file:
            # Fresh file page (first touch) also needs a flash read.
            bio = mm.flash.read(now, 1, owner_pid=pid)
            io_complete_at = bio.complete_time
            vmstat.filein += 1
            if psi is not None:
                psi.record("io", io_complete_at - now, start=now,
                           uid=uid, full=foreground)
            vmstat.pgmajfault += 1

        # --- fused make_resident(active=refaulted) --------------------
        # Refaulted pages re-enter on the active list (the kernel's
        # workingset_refault promotion); first-touch pages go inactive.
        stall_ms = 0.0
        direct_reclaims = 0
        if mm._free_pages <= mm._wm_min:
            alloc = AllocationOutcome()
            mm._ensure_headroom(alloc)  # may raise OutOfMemoryError
            stall_ms = alloc.stall_ms
            direct_reclaims = alloc.direct_reclaims
        flags[i] = (flags[i] | PRESENT) & ~REFERENCED & 0xFF
        mm._resident_pages += 1
        free = mm._free_pages - 1
        mm._free_pages = free
        vmstat.pgalloc += 1
        mm.lru.add_id(i, distance >= 0)
        # Inlined _charge_contention(pages=1).
        if free < mm._wm_high:
            if free < mm._wm_low:
                contention = min(ALLOC_CONTENTION_CAP_MS, ALLOC_CONTENTION_LOW_MS)
            else:
                contention = min(ALLOC_CONTENTION_CAP_MS, ALLOC_CONTENTION_HIGH_MS)
            stall_ms += contention
            vmstat.alloc_stall_ms += contention
        # Inlined _check_watermarks.
        if free < mm._wm_low and mm.kswapd_waker is not None:
            mm.kswapd_waker()
        service_ms += stall_ms
        if stall_ms > 0 and psi is not None:
            # Direct-reclaim + allocator-contention time charged to the
            # faulting task (§2.2.3(2)'s priority-inversion stall).
            psi.record("memory", stall_ms, start=now, uid=uid,
                       full=foreground)
        # Inlined mark_accessed(write).
        if write and is_file:
            flags[i] |= REFERENCED | DIRTY
        else:
            flags[i] |= REFERENCED
        return service_ms, io_complete_at, distance, direct_reclaims

    def _account_refault(self, page: Page, refault: RefaultEvent) -> None:
        # Retained for API compatibility (experiments may call it); the
        # fused path inlines this accounting.
        stats = self.mm.vmstat
        stats.refault_total += 1
        if refault.foreground:
            stats.refault_fg += 1
        else:
            stats.refault_bg += 1
        if page.is_anon:
            stats.refault_anon += 1
            if page.heap is HeapKind.JAVA:
                stats.refault_java_heap += 1
            else:
                stats.refault_native_heap += 1
        else:
            stats.refault_file += 1
